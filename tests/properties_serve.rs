//! Property-based tests for the serving layer: a [`SkillService`] driven
//! single-threaded must be *bit-for-bit* the state of a single-owner
//! [`StreamingSession`] fed the identical traffic — same committed
//! levels, same filtered estimates, same published emission table, same
//! snapshot JSON — for every shard count, refit policy, and auto-tuner
//! setting; and the shard count itself must be unobservable. A
//! multi-threaded drive over disjoint users under a fixed table must
//! land in the same state as any serialized order of the same actions.

use proptest::prelude::*;
use upskill_core::emission::EmissionTable;
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::parallel::ParallelConfig;
use upskill_core::recommend::RecommendConfig;
use upskill_core::streaming::{RefitPolicy, RefitTuner, StreamingSession};
use upskill_core::train::{train_with_parallelism, TrainConfig, TrainResult};
use upskill_core::types::{Action, ActionSequence, Dataset};
use upskill_serve::{PolicyConfig, PolicyMode, PredictMode, ServeConfig, ServeError, SkillService};

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

const CARDINALITY: u32 = 4;

/// Schema variants: categorical always present, the other kinds toggled
/// by `mask` bits (mask 7 = the full mixed schema).
fn masked_schema(mask: u8) -> FeatureSchema {
    let mut kinds = vec![FeatureKind::Categorical {
        cardinality: CARDINALITY,
    }];
    if mask & 1 != 0 {
        kinds.push(FeatureKind::Count);
    }
    if mask & 2 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
    }
    if mask & 4 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
    }
    FeatureSchema::new(kinds).unwrap()
}

fn item_values(schema: &FeatureSchema, draw: &ItemDraw) -> Vec<FeatureValue> {
    let &(cat, count, real_a, real_b) = draw;
    schema
        .kinds()
        .iter()
        .map(|kind| match kind {
            FeatureKind::Categorical { .. } => FeatureValue::Categorical(cat % CARDINALITY),
            FeatureKind::Count => FeatureValue::Count(count),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => FeatureValue::Real(real_a),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => FeatureValue::Real(real_b),
        })
        .collect()
}

fn build_dataset(schema: FeatureSchema, item_draws: &[ItemDraw], users: &[Vec<usize>]) -> Dataset {
    let items: Vec<Vec<FeatureValue>> =
        item_draws.iter().map(|d| item_values(&schema, d)).collect();
    let sequences: Vec<ActionSequence> = users
        .iter()
        .enumerate()
        .map(|(u, picks)| {
            let actions: Vec<Action> = picks
                .iter()
                .enumerate()
                .map(|(t, &raw)| Action::new(t as i64, u as u32, (raw % item_draws.len()) as u32))
                .collect();
            ActionSequence::new(u as u32, actions).unwrap()
        })
        .collect();
    Dataset::new(schema, items, sequences).unwrap()
}

/// Splits each user's sequence in half: the prefixes form the training
/// dataset, the remainders one globally time-ordered streamed batch.
/// Some suffix actions are rewritten to brand-new user ids so the
/// admission path is exercised too.
fn split(full: &Dataset) -> (Dataset, Vec<Action>) {
    let items: Vec<_> = (0..full.n_items())
        .map(|i| full.item_features(i as u32).to_vec())
        .collect();
    let mut prefixes = Vec::with_capacity(full.n_users());
    let mut suffix = Vec::new();
    for seq in full.sequences() {
        let cut = seq.actions().len().div_ceil(2);
        prefixes.push(ActionSequence::new(seq.user, seq.actions()[..cut].to_vec()).unwrap());
        suffix.extend_from_slice(&seq.actions()[cut..]);
    }
    // Stable by-time sort keeps each user's internal order.
    suffix.sort_by_key(|a| a.time);
    // Every third streamed action becomes a new tenant (ids far above
    // the base population), so the service must admit users mid-stream
    // exactly like the session does.
    for (i, a) in suffix.iter_mut().enumerate() {
        if i % 3 == 2 {
            a.user = 1_000 + (i % 5) as u32;
        }
    }
    let prefix_ds = Dataset::new(full.schema().clone(), items, prefixes).unwrap();
    (prefix_ds, suffix)
}

fn trained(prefix_ds: &Dataset, n_levels: usize) -> (TrainConfig, TrainResult) {
    let cfg = TrainConfig::new(n_levels)
        .with_min_init_actions(1)
        .with_max_iterations(8);
    let result = train_with_parallelism(prefix_ds, &cfg, &ParallelConfig::sequential()).unwrap();
    (cfg, result)
}

/// Every emission cell of the service's published table must carry the
/// same bits as a table built fresh from the session's current model.
fn assert_table_bitwise_equal(
    service: &SkillService,
    session: &StreamingSession,
) -> proptest::TestCaseResult {
    let reference = EmissionTable::build(session.model(), session.dataset());
    let (_, epoch) = service.current_epoch();
    let table = epoch.table();
    prop_assert_eq!(table.n_levels(), reference.n_levels());
    prop_assert_eq!(table.n_items(), reference.n_items());
    for item in 0..reference.n_items() {
        for s in 1..=reference.n_levels() {
            let (x, y) = (
                table.log_likelihood(item as u32, s as u8),
                reference.log_likelihood(item as u32, s as u8),
            );
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "item {} level {}: service {} vs session {}",
                item,
                s,
                x,
                y
            );
        }
    }
    Ok(())
}

/// Decodes a drawn `(kind, interval)` pair into a refit policy — the
/// vendored proptest stand-in has no `prop_oneof`/`prop_map`.
fn decode_policy(kind: usize, interval: usize) -> RefitPolicy {
    match kind % 3 {
        0 => RefitPolicy::EveryBatch,
        1 => RefitPolicy::EveryNActions(interval),
        _ => RefitPolicy::Manual,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // THE serving contract: identical traffic, identical state. Drive
    // the same interleaved ingest/refit stream through a service (any
    // shard count, any policy, tuner on or off) and a single-owner
    // session; every committed level, both O(1) estimates, the
    // published emission table, and the full snapshot JSON must match
    // bit for bit.
    #[test]
    fn serve_replay_is_bitwise_identical_to_session(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..8),
        users in proptest::collection::vec(
            proptest::collection::vec(0usize..1000, 2..12), 1..5),
        n_levels in 2usize..4,
        n_shards in 1usize..8,
        policy_kind in 0usize..3,
        interval in 1usize..6,
        with_tuner in 0u8..2,
    ) {
        let policy = decode_policy(policy_kind, interval);
        let with_tuner = with_tuner == 1;
        let full = build_dataset(masked_schema(mask), &item_draws, &users);
        let (prefix_ds, suffix) = split(&full);
        let (cfg, result) = trained(&prefix_ds, n_levels);
        let tuner = with_tuner
            .then(|| RefitTuner::new(1, 1, 32).unwrap());

        let service = SkillService::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig { n_shards, policy, tuner, ..ServeConfig::default() },
        ).unwrap();
        let mut session = StreamingSession::resume(
            prefix_ds, &result, cfg, ParallelConfig::sequential(), policy,
        ).unwrap();
        session.set_tuner(tuner);

        for (i, &action) in suffix.iter().enumerate() {
            let expected = session.ingest(action).unwrap();
            let got = service.ingest(action).unwrap();
            prop_assert_eq!(got.level, expected);
            // Interleave explicit refits so Manual policies exercise
            // the epoch swap too.
            if i % 7 == 6 {
                let a = session.refit().unwrap();
                let b = service.refit().unwrap();
                prop_assert_eq!(a, b);
            }
        }

        for seq in session.dataset().sequences() {
            let u = seq.user;
            let committed = service.predict(u, PredictMode::Committed).unwrap();
            prop_assert_eq!(Some(committed.level), session.committed_level(u));
            let filtered = service.predict(u, PredictMode::Filtered).unwrap();
            prop_assert_eq!(Some(filtered.level), session.filtered_level(u));
        }
        prop_assert_eq!(service.policy(), session.policy());
        assert_table_bitwise_equal(&service, &session)?;
        prop_assert_eq!(
            service.snapshot("parity").unwrap().to_json().unwrap(),
            session.snapshot("parity").to_json().unwrap()
        );
    }

    // The shard count is an implementation detail: the same traffic
    // through 1 shard and through many must produce byte-identical
    // snapshots.
    #[test]
    fn shard_count_is_unobservable(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..6),
        users in proptest::collection::vec(
            proptest::collection::vec(0usize..1000, 2..10), 1..5),
        n_levels in 2usize..4,
        n_shards in 2usize..9,
        policy_kind in 0usize..3,
        interval in 1usize..6,
    ) {
        let policy = decode_policy(policy_kind, interval);
        let full = build_dataset(masked_schema(mask), &item_draws, &users);
        let (prefix_ds, suffix) = split(&full);
        let (cfg, result) = trained(&prefix_ds, n_levels);
        let make = |shards: usize| SkillService::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig { n_shards: shards, policy, ..ServeConfig::default() },
        ).unwrap();
        let single = make(1);
        let many = make(n_shards);
        for &action in &suffix {
            let a = single.ingest(action).unwrap();
            let b = many.ingest(action).unwrap();
            prop_assert_eq!(a.level, b.level);
        }
        prop_assert_eq!(
            single.snapshot("shards").unwrap().to_json().unwrap(),
            many.snapshot("shards").unwrap().to_json().unwrap()
        );
    }

    // Malformed traffic must be rejected with typed errors and leave the
    // service byte-identical to one that never saw it: inject unknown
    // items and backwards timestamps between valid actions and compare
    // against a session fed only the valid stream.
    #[test]
    fn rejected_requests_leave_no_trace(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..6),
        users in proptest::collection::vec(
            proptest::collection::vec(0usize..1000, 2..10), 1..4),
        n_levels in 2usize..4,
        policy_kind in 0usize..3,
        interval in 1usize..6,
    ) {
        let policy = decode_policy(policy_kind, interval);
        let full = build_dataset(masked_schema(mask), &item_draws, &users);
        let (prefix_ds, suffix) = split(&full);
        let (cfg, result) = trained(&prefix_ds, n_levels);
        let n_items = prefix_ds.n_items() as u32;
        let service = SkillService::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig { n_shards: 3, policy, ..ServeConfig::default() },
        ).unwrap();
        let mut session = StreamingSession::resume(
            prefix_ds, &result, cfg, ParallelConfig::sequential(), policy,
        ).unwrap();

        for &action in &suffix {
            // Unknown item: rejected before any state is touched.
            let bad_item = Action::new(action.time, action.user, n_items + 7);
            prop_assert!(matches!(
                service.ingest(bad_item),
                Err(ServeError::Core(
                    upskill_core::error::CoreError::FeatureIndexOutOfBounds { .. }
                ))
            ));
            session.ingest(action).unwrap();
            service.ingest(action).unwrap();
            // Backwards time for a user who now surely has history.
            let stale = Action::new(action.time - 1_000, action.user, action.item);
            prop_assert!(matches!(
                service.ingest(stale),
                Err(ServeError::Core(
                    upskill_core::error::CoreError::UnsortedSequence { .. }
                ))
            ));
            // Unknown users can't be read.
            prop_assert!(matches!(
                service.predict(9_999_999, PredictMode::Committed),
                Err(ServeError::UnknownUser { user: 9_999_999 })
            ));
        }
        prop_assert_eq!(
            service.snapshot("clean").unwrap().to_json().unwrap(),
            session.snapshot("clean").to_json().unwrap()
        );
    }
}

/// Adaptive-policy traffic is envelope-checked before any state is
/// touched: every malformed `RecommendPolicy`/`RecordOutcome` shape
/// maps to its typed [`ServeError`] — policy disabled, unknown user,
/// mode mismatch, `k = 0`, empty difficulty band, unknown item — and a
/// service that rejected all of them snapshots byte-identically to one
/// that never saw the traffic.
#[test]
fn policy_requests_are_rejected_with_typed_errors() {
    let draws: Vec<ItemDraw> = (0..5)
        .map(|i| (i as u32, 2 + i as u64, 0.4 + i as f64, 1.2 + i as f64))
        .collect();
    let users: Vec<Vec<usize>> = (0..4)
        .map(|u| (0..12).map(|t| u * 17 + t * 5).collect())
        .collect();
    let full = build_dataset(masked_schema(7), &draws, &users);
    let (prefix_ds, _) = split(&full);
    let (cfg, result) = trained(&prefix_ds, 3);
    let n_items = prefix_ds.n_items() as u32;

    let make = |recommend: RecommendConfig, adaptive: Option<PolicyConfig>| {
        SkillService::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig {
                n_shards: 3,
                policy: RefitPolicy::Manual,
                recommend,
                adaptive,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    };
    // A generous band: every item is a candidate at every level.
    let wide = RecommendConfig {
        lower_slack: 10.0,
        upper_slack: 10.0,
        ..RecommendConfig::default()
    };

    // Policy endpoints on a static-only service: PolicyDisabled from
    // both entry points, before any user/item validation.
    let plain = make(wide, None);
    assert_eq!(
        plain.recommend_policy(0, Some(2), PolicyMode::Hybrid),
        Err(ServeError::PolicyDisabled)
    );
    assert_eq!(
        plain.record_outcome(0, 0, false),
        Err(ServeError::PolicyDisabled)
    );

    let adaptive = make(wide, Some(PolicyConfig::hybrid()));
    let clean = adaptive.snapshot("clean").unwrap().to_json().unwrap();

    // Unknown users cannot be re-ranked or scored.
    assert_eq!(
        adaptive.recommend_policy(777_777, Some(2), PolicyMode::Hybrid),
        Err(ServeError::UnknownUser { user: 777_777 })
    );
    assert_eq!(
        adaptive.record_outcome(777_777, 0, true),
        Err(ServeError::UnknownUser { user: 777_777 })
    );
    // The request's mode must match the configured one.
    for requested in [PolicyMode::Teach, PolicyMode::Motivate] {
        assert_eq!(
            adaptive.recommend_policy(0, Some(2), requested),
            Err(ServeError::PolicyModeMismatch {
                requested,
                configured: PolicyMode::Hybrid,
            })
        );
    }
    // A zero-length result list is a parameter error, not an empty Ok.
    assert!(matches!(
        adaptive.recommend_policy(0, Some(0), PolicyMode::Hybrid),
        Err(ServeError::BadRequest { what: "k", .. })
    ));
    // Outcomes name a real catalog item.
    assert!(matches!(
        adaptive.record_outcome(0, n_items + 3, false),
        Err(ServeError::Core(
            upskill_core::error::CoreError::FeatureIndexOutOfBounds { .. }
        ))
    ));
    // None of the rejections left a trace.
    assert_eq!(
        adaptive.snapshot("clean").unwrap().to_json().unwrap(),
        clean
    );
    // The well-formed request on the same service succeeds.
    let recs = adaptive
        .recommend_policy(0, Some(2), PolicyMode::Hybrid)
        .unwrap();
    assert!(!recs.is_empty() && recs.len() <= 2);

    // A razor-thin band with no candidates: the adaptive path refuses
    // with the level in hand (the static path returns an empty list —
    // distinguishing "nothing ranked" from "nothing rankable").
    let narrow = make(
        RecommendConfig {
            target_offset: 0.0,
            lower_slack: 0.0,
            upper_slack: 1e-9,
            ..RecommendConfig::default()
        },
        Some(PolicyConfig::hybrid()),
    );
    assert!(matches!(
        narrow.recommend_policy(0, Some(2), PolicyMode::Hybrid),
        Err(ServeError::EmptyBand { .. })
    ));
    assert_eq!(narrow.recommend(0, Some(2)).unwrap(), vec![]);
}

/// Concurrent ingestion over disjoint users under a fixed table (Manual
/// policy) must land in exactly the serialized state: per-user paths
/// depend only on the table epoch, and the statistics deltas commute.
#[test]
fn concurrent_disjoint_ingest_matches_serialized_replay() {
    use std::sync::Arc;

    let draws: Vec<ItemDraw> = (0..6)
        .map(|i| (i as u32, 3 + i as u64, 0.5 + i as f64, 1.5 + i as f64))
        .collect();
    let users: Vec<Vec<usize>> = (0..8)
        .map(|u| (0..10).map(|t| u * 31 + t * 7).collect())
        .collect();
    let full = build_dataset(masked_schema(7), &draws, &users);
    let (prefix_ds, suffix) = split(&full);
    // Keep this test on the base population: admission order of new
    // users is timing-dependent under concurrency, which is exactly
    // what disjoint-user traffic avoids.
    let suffix: Vec<Action> = suffix.into_iter().filter(|a| a.user < 8).collect();
    let (cfg, result) = trained(&prefix_ds, 3);

    let service = Arc::new(
        SkillService::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig {
                n_shards: 4,
                policy: RefitPolicy::Manual,
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );
    let mut session = StreamingSession::resume(
        prefix_ds,
        &result,
        cfg,
        ParallelConfig::sequential(),
        RefitPolicy::Manual,
    )
    .unwrap();

    // Four threads, users partitioned by id — per-user order preserved,
    // global interleaving arbitrary.
    let handles: Vec<_> = (0..4u32)
        .map(|lane| {
            let service = Arc::clone(&service);
            let mine: Vec<Action> = suffix
                .iter()
                .copied()
                .filter(|a| a.user % 4 == lane)
                .collect();
            std::thread::spawn(move || {
                for action in mine {
                    service.ingest(action).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    session.ingest_batch(&suffix).unwrap();

    let a = service.refit().unwrap();
    let b = session.refit().unwrap();
    assert_eq!(a, b, "refit touched different levels");
    assert_eq!(
        service.snapshot("concurrent").unwrap().to_json().unwrap(),
        session.snapshot("concurrent").to_json().unwrap(),
        "concurrent disjoint ingestion diverged from serialized replay"
    );
}
