//! Property-based tests for the streaming-ingestion subsystem: folding a
//! randomly split suffix of actions into a trained session (under
//! `RefitPolicy::EveryBatch`) must leave the session's model bitwise
//! equal to the closed-form fit of its assignments on the concatenated
//! dataset, for mixed feature schemas and for sequential and parallel
//! execution alike.

use proptest::prelude::*;
use upskill_core::emission::EmissionTable;
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::incremental::StatsGrid;
use upskill_core::model::SkillModel;
use upskill_core::parallel::ParallelConfig;
use upskill_core::streaming::{RefitPolicy, StreamingSession};
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::types::{Action, ActionSequence, Dataset};

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

const CARDINALITY: u32 = 4;

/// Schema variants: categorical always present, the other kinds toggled
/// by `mask` bits (mask 7 = the full mixed schema).
fn masked_schema(mask: u8) -> FeatureSchema {
    let mut kinds = vec![FeatureKind::Categorical {
        cardinality: CARDINALITY,
    }];
    if mask & 1 != 0 {
        kinds.push(FeatureKind::Count);
    }
    if mask & 2 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
    }
    if mask & 4 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
    }
    FeatureSchema::new(kinds).unwrap()
}

fn item_values(schema: &FeatureSchema, draw: &ItemDraw) -> Vec<FeatureValue> {
    let &(cat, count, real_a, real_b) = draw;
    schema
        .kinds()
        .iter()
        .map(|kind| match kind {
            FeatureKind::Categorical { .. } => FeatureValue::Categorical(cat % CARDINALITY),
            FeatureKind::Count => FeatureValue::Count(count),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => FeatureValue::Real(real_a),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => FeatureValue::Real(real_b),
        })
        .collect()
}

fn build_dataset(schema: FeatureSchema, item_draws: &[ItemDraw], users: &[Vec<usize>]) -> Dataset {
    let items: Vec<Vec<FeatureValue>> =
        item_draws.iter().map(|d| item_values(&schema, d)).collect();
    let sequences: Vec<ActionSequence> = users
        .iter()
        .enumerate()
        .map(|(u, picks)| {
            let actions: Vec<Action> = picks
                .iter()
                .enumerate()
                .map(|(t, &raw)| Action::new(t as i64, u as u32, (raw % item_draws.len()) as u32))
                .collect();
            ActionSequence::new(u as u32, actions).unwrap()
        })
        .collect();
    Dataset::new(schema, items, sequences).unwrap()
}

/// Splits each user's sequence in half: the prefixes form the training
/// dataset, the remainders one globally time-ordered streamed batch.
fn split(full: &Dataset) -> (Dataset, Vec<Action>) {
    let items: Vec<_> = (0..full.n_items())
        .map(|i| full.item_features(i as u32).to_vec())
        .collect();
    let mut prefixes = Vec::with_capacity(full.n_users());
    let mut suffix = Vec::new();
    for seq in full.sequences() {
        let cut = seq.actions().len().div_ceil(2);
        prefixes.push(ActionSequence::new(seq.user, seq.actions()[..cut].to_vec()).unwrap());
        suffix.extend_from_slice(&seq.actions()[cut..]);
    }
    // Stable by-time sort keeps each user's internal order.
    suffix.sort_by_key(|a| a.time);
    let prefix_ds = Dataset::new(full.schema().clone(), items, prefixes).unwrap();
    (prefix_ds, suffix)
}

/// Bitwise model equality, observed through the emission log-likelihood
/// of every item × level cell.
fn assert_models_bitwise_equal(
    a: &SkillModel,
    b: &SkillModel,
    ds: &Dataset,
) -> proptest::TestCaseResult {
    let ta = EmissionTable::build(a, ds);
    let tb = EmissionTable::build(b, ds);
    prop_assert_eq!(ta.n_levels(), tb.n_levels());
    for item in 0..ds.n_items() {
        for s in 1..=ta.n_levels() {
            let (x, y) = (
                ta.log_likelihood(item as u32, s as u8),
                tb.log_likelihood(item as u32, s as u8),
            );
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "item {} level {}: {} vs {}",
                item,
                s,
                x,
                y
            );
        }
    }
    Ok(())
}

fn users_strategy(max_users: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..1000, 2..max_len),
        1..max_users,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Under EveryBatch, folding the streamed suffix into a session
    // trained on the prefixes leaves the model bitwise equal to the
    // closed-form fit of the streamed assignments on the full dataset —
    // across schemas, skill counts, and thread counts.
    #[test]
    fn streamed_fold_matches_closed_form_refit(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..8),
        users in users_strategy(5, 12),
        n_levels in 2usize..4,
        threads in 1usize..4,
    ) {
        let full = build_dataset(masked_schema(mask), &item_draws, &users);
        let (prefix_ds, suffix) = split(&full);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(8);
        let pc = if threads == 1 {
            ParallelConfig::sequential()
        } else {
            ParallelConfig::all(threads)
        };
        let result = train_with_parallelism(&prefix_ds, &cfg, &pc).unwrap();
        let mut session = StreamingSession::resume(
            prefix_ds, &result, cfg, pc, RefitPolicy::EveryBatch,
        ).unwrap();
        let levels = session.ingest_batch(&suffix).unwrap();

        prop_assert_eq!(levels.len(), suffix.len());
        prop_assert_eq!(session.pending_actions(), 0);
        prop_assert_eq!(session.dataset().n_actions(), full.n_actions());
        prop_assert!(session.assignments().is_monotone());
        prop_assert!(levels.iter().all(|&s| 1 <= s && s as usize <= n_levels));

        let fresh = StatsGrid::build(session.dataset(), session.assignments(), n_levels)
            .unwrap()
            .fit_model(session.dataset(), cfg.lambda)
            .unwrap();
        assert_models_bitwise_equal(session.model(), &fresh, session.dataset())?;
    }

    // A parallel session must reproduce the sequential session exactly:
    // same committed levels, same assignments, bitwise-equal model.
    #[test]
    fn parallel_session_matches_sequential(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..8),
        users in users_strategy(5, 12),
        n_levels in 2usize..4,
        threads in 2usize..4,
    ) {
        let full = build_dataset(masked_schema(mask), &item_draws, &users);
        let (prefix_ds, suffix) = split(&full);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(8);
        let result =
            train_with_parallelism(&prefix_ds, &cfg, &ParallelConfig::sequential()).unwrap();

        let mut seq_session = StreamingSession::resume(
            prefix_ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            RefitPolicy::EveryBatch,
        ).unwrap();
        let mut par_session = StreamingSession::resume(
            prefix_ds,
            &result,
            cfg,
            ParallelConfig::all(threads),
            RefitPolicy::EveryBatch,
        ).unwrap();

        let seq_levels = seq_session.ingest_batch(&suffix).unwrap();
        let par_levels = par_session.ingest_batch(&suffix).unwrap();

        prop_assert_eq!(seq_levels, par_levels);
        prop_assert_eq!(seq_session.assignments(), par_session.assignments());
        assert_models_bitwise_equal(
            seq_session.model(),
            par_session.model(),
            seq_session.dataset(),
        )?;
    }
}
