//! Property tests for the recommendation band cache: a prebuilt
//! [`LevelBand`] queried through [`recommend_from_band`] must be
//! *bit-for-bit* the output of the full catalog scan
//! [`recommend_for_level_with_table`] — for random schemas, random
//! emission models, random difficulty vectors, random configs, any
//! exclusion subset, and in particular when an interest-normalization
//! anchor is excluded (the case that forces the band query off its
//! prebuilt ranking onto the rescore fallback).

use proptest::prelude::*;
use upskill_core::dist::{Categorical, FeatureDistribution};
use upskill_core::emission::EmissionTable;
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
use upskill_core::model::SkillModel;
use upskill_core::recommend::{
    build_level_band, recommend_for_level_with_table, recommend_from_band, RecommendConfig,
    Recommendation,
};
use upskill_core::types::{Action, ActionSequence, Dataset, ItemId};

/// Builds a model + dataset + emission table from raw draws: one
/// categorical feature, each item's category drawn freely, each level's
/// emission row an arbitrary (normalized) distribution over categories.
fn table_from_draws(
    categories: &[u32],
    level_weights: &[Vec<f64>],
) -> (EmissionTable, usize, usize) {
    let n_items = categories.len();
    let cardinality = 4u32;
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality }]).unwrap();
    let items: Vec<Vec<FeatureValue>> = categories
        .iter()
        .map(|&c| vec![FeatureValue::Categorical(c % cardinality)])
        .collect();
    // The dataset only supplies item features to the table; one short
    // valid sequence keeps the constructor happy.
    let seq = ActionSequence::new(
        0,
        (0..n_items.min(3))
            .map(|t| Action::new(t as i64, 0, t as u32))
            .collect(),
    )
    .unwrap();
    let ds = Dataset::new(schema.clone(), items, vec![seq]).unwrap();
    let cells: Vec<Vec<FeatureDistribution>> = level_weights
        .iter()
        .map(|weights| {
            let sum: f64 = weights.iter().sum();
            let probs: Vec<f64> = weights.iter().map(|w| w / sum).collect();
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(probs).unwrap(),
            )]
        })
        .collect();
    let n_levels = level_weights.len();
    let model = SkillModel::new(schema, n_levels, cells).unwrap();
    (EmissionTable::build(&model, &ds), n_items, n_levels)
}

/// Bitwise equality of two recommendation lists — every float field
/// compared by bits, not by value (`==` would already accept 0.0 vs
/// -0.0; the contract is stronger).
fn assert_bitwise_equal(
    full: &[Recommendation],
    banded: &[Recommendation],
) -> proptest::TestCaseResult {
    prop_assert_eq!(full.len(), banded.len());
    for (a, b) in full.iter().zip(banded) {
        prop_assert_eq!(a.item, b.item);
        prop_assert_eq!(a.difficulty.to_bits(), b.difficulty.to_bits());
        prop_assert_eq!(a.difficulty_fit.to_bits(), b.difficulty_fit.to_bits());
        prop_assert_eq!(a.interest.to_bits(), b.interest.to_bits());
        prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // THE band-cache contract, at every level and under three exclusion
    // regimes: none, a random subset, and a subset that deliberately
    // contains an interest-normalization anchor (band.max_interest_items)
    // so the O(k) walk is forced onto the rescore fallback. All three
    // must reproduce the full scan bit for bit.
    #[test]
    fn band_queries_are_bitwise_identical_to_full_scans(
        categories in proptest::collection::vec(0u32..8, 3..10),
        raw_weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..10.0, 4), 2..5),
        raw_difficulty in proptest::collection::vec(0.2f64..6.0, 10),
        target_offset in 0.0f64..1.0,
        lower_slack in 0.0f64..3.0,
        upper_slack in 0.2f64..3.0,
        interest_weight in 0.0f64..1.0,
        k in 1usize..6,
        exclude_mask in 0u32..1024,
    ) {
        let (table, n_items, n_levels) = table_from_draws(&categories, &raw_weights);
        let difficulty: Vec<f64> = raw_difficulty[..n_items].to_vec();
        let config = RecommendConfig {
            target_offset,
            lower_slack,
            upper_slack,
            interest_weight,
            k,
        };

        for level in 1..=n_levels as u8 {
            let band = build_level_band(&table, &difficulty, level, &config).unwrap();
            prop_assert_eq!(band.level(), level);
            prop_assert_eq!(band.config(), &config);
            prop_assert_eq!(band.is_empty(), band.ranked().is_empty());
            if !band.is_empty() {
                prop_assert!(!band.max_interest_items().is_empty());
            }

            // Regime 1: no exclusion.
            let none = |_: ItemId| false;
            let full = recommend_for_level_with_table(
                &table, &difficulty, level, &none, &config,
            ).unwrap();
            let banded = recommend_from_band(&band, &none, k).unwrap();
            assert_bitwise_equal(&full, &banded)?;

            // Regime 2: a random exclusion subset.
            let masked = |item: ItemId| exclude_mask & (1 << item) != 0;
            let full = recommend_for_level_with_table(
                &table, &difficulty, level, &masked, &config,
            ).unwrap();
            let banded = recommend_from_band(&band, &masked, k).unwrap();
            assert_bitwise_equal(&full, &banded)?;

            // Regime 3: force the rescore fallback by excluding an
            // interest-normalization anchor — the surviving candidates'
            // interest maximum shifts, so the prebuilt ranking is
            // unusable and the band must rescore from raw candidates.
            if let Some(&anchor) = band.max_interest_items().first() {
                let forced = |item: ItemId| item == anchor || masked(item);
                let full = recommend_for_level_with_table(
                    &table, &difficulty, level, &forced, &config,
                ).unwrap();
                let banded = recommend_from_band(&band, &forced, k).unwrap();
                prop_assert!(banded.iter().all(|r| r.item != anchor));
                assert_bitwise_equal(&full, &banded)?;
            }
        }
    }

    // `k` is a query-time knob: any k against one band must equal the
    // full scan with that k in its config, and k = 0 is rejected by
    // both paths.
    #[test]
    fn query_k_matches_rebuilt_config(
        categories in proptest::collection::vec(0u32..8, 3..8),
        raw_weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..10.0, 4), 2..4),
        raw_difficulty in proptest::collection::vec(0.2f64..5.0, 8),
        k_build in 1usize..4,
        k_query in 1usize..8,
    ) {
        let (table, n_items, _) = table_from_draws(&categories, &raw_weights);
        let difficulty: Vec<f64> = raw_difficulty[..n_items].to_vec();
        let config = RecommendConfig {
            lower_slack: 2.0,
            upper_slack: 2.0,
            interest_weight: 0.4,
            k: k_build,
            ..RecommendConfig::default()
        };
        let band = build_level_band(&table, &difficulty, 1, &config).unwrap();
        let none = |_: ItemId| false;
        let requeried = RecommendConfig { k: k_query, ..config };
        let full = recommend_for_level_with_table(
            &table, &difficulty, 1, &none, &requeried,
        ).unwrap();
        let banded = recommend_from_band(&band, &none, k_query).unwrap();
        assert_bitwise_equal(&full, &banded)?;
        prop_assert!(banded.len() <= k_query);
        prop_assert!(recommend_from_band(&band, &none, 0).is_err());
    }
}
