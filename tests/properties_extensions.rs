//! Property-based tests for the extension modules: the forgetting DP, the
//! online tracker, and the upskilling recommender.

use proptest::prelude::*;
use upskill_core::assign::assign_sequence;
use upskill_core::dist::{Categorical, FeatureDistribution};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
use upskill_core::forgetting::{assign_sequence_with_forgetting, ForgettingConfig};
use upskill_core::model::SkillModel;
use upskill_core::online::OnlineTracker;
use upskill_core::recommend::{recommend_for_level, RecommendConfig};
use upskill_core::types::{Action, ActionSequence, Dataset};

fn model_from_weights(weights: &[Vec<f64>]) -> SkillModel {
    let n_levels = weights.len();
    let cardinality = weights[0].len() as u32;
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality }]).unwrap();
    let cells = weights
        .iter()
        .map(|w| {
            let total: f64 = w.iter().sum();
            let probs: Vec<f64> = w.iter().map(|x| x / total).collect();
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(probs).unwrap(),
            )]
        })
        .collect();
    SkillModel::new(schema, n_levels, cells).unwrap()
}

fn dataset_with_times(cardinality: u32, actions: &[(u32, i64)]) -> (Dataset, ActionSequence) {
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality }]).unwrap();
    let items: Vec<Vec<FeatureValue>> = (0..cardinality)
        .map(|c| vec![FeatureValue::Categorical(c)])
        .collect();
    let mut sorted = actions.to_vec();
    sorted.sort_by_key(|&(_, t)| t);
    let acts: Vec<Action> = sorted.iter().map(|&(c, t)| Action::new(t, 0, c)).collect();
    let seq = ActionSequence::new(0, acts).unwrap();
    let ds = Dataset::new(schema, items, vec![seq.clone()]).unwrap();
    (ds, seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forgetting_dp_levels_valid_and_steps_bounded(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 4), 2..5),
        actions in proptest::collection::vec((0u32..4, 0i64..10_000), 1..20),
        halflife in 1.0f64..5_000.0,
        max_decay in 0.0f64..0.9,
    ) {
        let model = model_from_weights(&weights);
        let (ds, seq) = dataset_with_times(4, &actions);
        let cfg = ForgettingConfig { halflife, max_decay, advance_prob: 0.3 };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &seq).unwrap();
        prop_assert_eq!(a.levels.len(), seq.len());
        let s_max = weights.len() as u8;
        prop_assert!(a.levels.iter().all(|&s| 1 <= s && s <= s_max));
        // Steps never exceed ±1 per transition.
        let steps_ok = a
            .levels
            .windows(2)
            .all(|w| (w[1] as i16 - w[0] as i16).abs() <= 1);
        prop_assert!(steps_ok);
        prop_assert!(a.log_likelihood.is_finite());
    }

    #[test]
    fn forgetting_with_zero_decay_is_monotone(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 3), 2..4),
        actions in proptest::collection::vec((0u32..3, 0i64..100_000), 1..15),
    ) {
        let model = model_from_weights(&weights);
        let (ds, seq) = dataset_with_times(3, &actions);
        let cfg = ForgettingConfig { halflife: 10.0, max_decay: 0.0, advance_prob: 0.4 };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &seq).unwrap();
        prop_assert!(a.levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn online_tracker_best_score_matches_batch_dp(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 3), 2..5),
        cats in proptest::collection::vec(0u32..3, 1..15),
    ) {
        let model = model_from_weights(&weights);
        let actions: Vec<(u32, i64)> =
            cats.iter().enumerate().map(|(t, &c)| (c, t as i64)).collect();
        let (ds, seq) = dataset_with_times(3, &actions);
        let batch = assign_sequence(&model, &ds, &seq).unwrap();
        let mut tracker = OnlineTracker::new(weights.len()).unwrap();
        for &c in &cats {
            tracker.observe(&model, &[FeatureValue::Categorical(c)]).unwrap();
        }
        let online_best = tracker
            .level_scores()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((online_best - batch.log_likelihood).abs() < 1e-9);
        // Weights normalize.
        let w = tracker.level_weights();
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recommendations_respect_band_order_and_k(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 5), 2..5),
        difficulties in proptest::collection::vec(1.0f64..5.0, 5..40),
        level_pick in 0usize..4,
        k in 1usize..8,
        interest in 0.0f64..1.0,
    ) {
        let n_levels = weights.len();
        let level = (level_pick % n_levels) as u8 + 1;
        let model = model_from_weights(&weights);
        // Dataset items cycle through the 5 categories.
        let schema =
            FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 5 }]).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..difficulties.len() as u32)
            .map(|i| vec![FeatureValue::Categorical(i % 5)])
            .collect();
        let seq = ActionSequence::new(0, vec![Action::new(0, 0, 0)]).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        let cfg = RecommendConfig {
            target_offset: 0.3,
            lower_slack: 0.4,
            upper_slack: 0.9,
            interest_weight: interest,
            k,
        };
        let recs =
            recommend_for_level(&model, &ds, &difficulties, level, &|_| false, &cfg)
                .unwrap();
        prop_assert!(recs.len() <= k);
        let lo = level as f64 - cfg.lower_slack;
        let hi = level as f64 + cfg.upper_slack;
        for r in &recs {
            prop_assert!(r.difficulty >= lo - 1e-9 && r.difficulty <= hi + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.difficulty_fit));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.interest));
        }
        prop_assert!(recs.windows(2).all(|w| w[0].score >= w[1].score - 1e-12));
        // Exclusion of everything yields nothing.
        let none =
            recommend_for_level(&model, &ds, &difficulties, level, &|_| true, &cfg)
                .unwrap();
        prop_assert!(none.is_empty());
    }
}
