//! Property-based tests for the out-of-core chunked training subsystem:
//! chunked hard and EM training over a [`DatasetChunks`] stream must be
//! **bitwise identical** to the in-memory sequential trainers across
//! random schemas, skill counts, chunk sizes (including degenerate
//! one-user chunks and a single giant chunk), thread counts, and both
//! assignment storages.

use proptest::prelude::*;
use upskill_core::chunked::{
    assign_chunked, train_chunked, train_em_chunked, AssignmentStorage, DatasetChunks,
};
use upskill_core::em::{train_em_with_parallelism, EmConfig};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::init::initialize_model;
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::transition::TransitionModel;
use upskill_core::types::{Action, ActionSequence, Dataset};

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

const CARDINALITY: u32 = 4;

/// Schema variants: categorical always present, the other kinds toggled
/// by `mask` bits (same shape as the incremental property suite).
fn masked_schema(mask: u8) -> FeatureSchema {
    let mut kinds = vec![FeatureKind::Categorical {
        cardinality: CARDINALITY,
    }];
    if mask & 1 != 0 {
        kinds.push(FeatureKind::Count);
    }
    if mask & 2 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
    }
    if mask & 4 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
    }
    FeatureSchema::new(kinds).unwrap()
}

fn item_values(schema: &FeatureSchema, draw: &ItemDraw) -> Vec<FeatureValue> {
    let &(cat, count, real_a, real_b) = draw;
    schema
        .kinds()
        .iter()
        .map(|kind| match kind {
            FeatureKind::Categorical { .. } => FeatureValue::Categorical(cat % CARDINALITY),
            FeatureKind::Count => FeatureValue::Count(count),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => FeatureValue::Real(real_a),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => FeatureValue::Real(real_b),
        })
        .collect()
}

fn build_dataset(schema: FeatureSchema, item_draws: &[ItemDraw], users: &[Vec<usize>]) -> Dataset {
    let items: Vec<Vec<FeatureValue>> =
        item_draws.iter().map(|d| item_values(&schema, d)).collect();
    let sequences: Vec<ActionSequence> = users
        .iter()
        .enumerate()
        .map(|(u, picks)| {
            let actions: Vec<Action> = picks
                .iter()
                .enumerate()
                .map(|(t, &raw)| Action::new(t as i64, u as u32, (raw % item_draws.len()) as u32))
                .collect();
            ActionSequence::new(u as u32, actions).unwrap()
        })
        .collect();
    Dataset::new(schema, items, sequences).unwrap()
}

fn users_strategy(max_users: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..1000, 1..max_len),
        1..max_users,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Chunked hard training — every chunk size (one-user chunks, a
    // random mid size, one giant chunk), both assignment storages,
    // sequential and parallel — reproduces the in-memory sequential
    // trainer bit for bit: model, objective, trace, and histogram.
    #[test]
    fn chunked_hard_training_matches_in_memory(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 3..8),
        users in users_strategy(6, 14),
        n_levels in 2usize..4,
        mid_chunk in 2usize..7,
        threads in 1usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(8);
        let expect =
            train_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let expect_hist: Vec<u64> = expect
            .assignments
            .level_histogram(n_levels)
            .iter()
            .map(|&c| c as u64)
            .collect();
        let parallel = ParallelConfig::all(threads);

        for chunk_size in [1, mid_chunk, ds.n_users()] {
            let source = DatasetChunks::new(&ds, chunk_size).unwrap();
            for storage in [AssignmentStorage::InMemory, AssignmentStorage::Recompute] {
                let got = train_chunked(&source, &cfg, &parallel, storage).unwrap();
                prop_assert_eq!(&got.model, &expect.model);
                prop_assert!(
                    got.log_likelihood.to_bits() == expect.log_likelihood.to_bits(),
                    "chunk {} {:?}: ll {} vs {}",
                    chunk_size, storage, got.log_likelihood, expect.log_likelihood
                );
                prop_assert_eq!(got.converged, expect.converged);
                prop_assert_eq!(got.trace.len(), expect.trace.len());
                for (a, b) in got.trace.iter().zip(&expect.trace) {
                    prop_assert_eq!(a.iteration, b.iteration);
                    prop_assert_eq!(a.n_changed, b.n_changed);
                    prop_assert_eq!(
                        a.log_likelihood.to_bits(),
                        b.log_likelihood.to_bits()
                    );
                }
                prop_assert_eq!(&got.level_histogram, &expect_hist);
                prop_assert_eq!(got.n_users, ds.n_users());
                prop_assert_eq!(got.n_actions, ds.n_actions());
            }
        }
    }

    // Chunked EM — every chunk size, sequential and parallel waves —
    // reproduces the from-scratch in-memory EM bit for bit: model,
    // evidence trace, and convergence flag.
    #[test]
    fn chunked_em_training_matches_in_memory(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 3..8),
        users in users_strategy(5, 12),
        n_levels in 2usize..4,
        mid_chunk in 2usize..7,
        threads in 1usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let initial = initialize_model(&ds, n_levels, 1, 0.01).unwrap();
        let transitions = TransitionModel::uninformative(n_levels).unwrap();
        let cfg = EmConfig::new(initial, transitions)
            .with_max_iterations(6)
            .with_tolerance(1e-9);
        // The chunked E-step mirrors the from-scratch (non-incremental)
        // in-memory path; that is the bitwise baseline.
        let expect = train_em_with_parallelism(
            &ds,
            &cfg,
            &ParallelConfig::sequential().with_incremental(false),
        )
        .unwrap();
        let parallel = ParallelConfig::all(threads);

        for chunk_size in [1, mid_chunk, ds.n_users()] {
            let source = DatasetChunks::new(&ds, chunk_size).unwrap();
            let got = train_em_chunked(&source, &cfg, &parallel).unwrap();
            prop_assert_eq!(&got.model, &expect.model);
            prop_assert_eq!(got.converged, expect.converged);
            prop_assert_eq!(
                got.evidence_trace.len(),
                expect.evidence_trace.len()
            );
            for (i, (a, b)) in got
                .evidence_trace
                .iter()
                .zip(&expect.evidence_trace)
                .enumerate()
            {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "chunk {}: iteration {} evidence {} vs {}",
                    chunk_size, i, a, b
                );
            }
        }
    }

    // Chunked decode against a trained model reproduces the in-memory
    // per-user assignments and objective exactly.
    #[test]
    fn chunked_decode_matches_in_memory(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 3..8),
        users in users_strategy(6, 14),
        n_levels in 2usize..4,
        chunk_size in 1usize..9,
        threads in 1usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(4);
        let expect =
            train_with_parallelism(&ds, &cfg, &ParallelConfig::sequential()).unwrap();
        let source = DatasetChunks::new(&ds, chunk_size).unwrap();
        let (assignments, ll) =
            assign_chunked(&source, &expect.model, &ParallelConfig::all(threads)).unwrap();
        prop_assert_eq!(&assignments, &expect.assignments);
        prop_assert_eq!(ll.to_bits(), expect.log_likelihood.to_bits());
    }
}
