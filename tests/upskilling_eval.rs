//! End-to-end determinism of the closed-loop upskilling evaluation —
//! the contract `reports/BENCH_policy.json` rests on: identical seeds
//! must produce bitwise-identical simulator traces and report metrics
//! regardless of how many threads drive the learner population. Each
//! learner draws from its own `(seed, user)`-keyed stream and the arms
//! partition learners into fixed slots, so the schedule the OS picks
//! can never leak into a single bit of the output.

use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_datasets::upskilling::LearnerTrace;
use upskill_eval::upskilling::{evaluate_upskilling_traced, DomainReport, UpskillEvalConfig};

fn domain() -> upskill_core::types::Dataset {
    let config = SyntheticConfig {
        n_users: 60,
        n_items: 60,
        n_levels: 3,
        mean_sequence_len: 30.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 6,
        seed: 23,
    };
    generate(&config).unwrap().dataset
}

fn eval_config(threads: usize, seed: u64) -> UpskillEvalConfig {
    let mut cfg = UpskillEvalConfig::hybrid(3);
    cfg.n_learners = 8;
    cfg.threads = threads;
    cfg.learner.max_actions = 60;
    cfg.learner.seed = seed;
    cfg.train = TrainConfig::new(3)
        .with_max_iterations(3)
        .with_min_init_actions(10);
    cfg
}

fn run(threads: usize, seed: u64) -> (DomainReport, Vec<LearnerTrace>, Vec<LearnerTrace>) {
    evaluate_upskilling_traced(&domain(), "determinism", &eval_config(threads, seed)).unwrap()
}

/// Bitwise trace equality: every step's float fields compared by bits
/// on top of the structural `PartialEq`.
fn assert_traces_bitwise_equal(a: &[LearnerTrace], b: &[LearnerTrace]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y);
        assert_eq!(x.digest(), y.digest());
        for (sx, sy) in x.steps.iter().zip(&y.steps) {
            assert_eq!(sx.difficulty.to_bits(), sy.difficulty.to_bits());
        }
    }
}

#[test]
fn thread_count_never_changes_a_bit_of_traces_or_report() {
    let (report_1, static_1, adaptive_1) = run(1, 7);
    let (report_4, static_4, adaptive_4) = run(4, 7);
    // The report — the exact value bench_policy folds into
    // BENCH_policy.json — is identical structurally and as JSON bytes.
    assert_eq!(report_1, report_4);
    assert_eq!(
        serde_json::to_string(&report_1).unwrap(),
        serde_json::to_string(&report_4).unwrap()
    );
    // And so is every simulated action underneath it, in both arms.
    assert_traces_bitwise_equal(&static_1, &static_4);
    assert_traces_bitwise_equal(&adaptive_1, &adaptive_4);
}

#[test]
fn identical_seeds_reproduce_the_full_evaluation() {
    let (report_a, static_a, adaptive_a) = run(3, 7);
    let (report_b, static_b, adaptive_b) = run(3, 7);
    assert_eq!(report_a, report_b);
    assert_traces_bitwise_equal(&static_a, &static_b);
    assert_traces_bitwise_equal(&adaptive_a, &adaptive_b);
}

#[test]
fn different_seeds_actually_move_the_simulation() {
    let (report_a, _, _) = run(2, 7);
    let (report_b, _, _) = run(2, 8);
    // The digests fold every (item, difficulty, outcome) triple, so a
    // different learner seed must show up in them — this is the guard
    // against the digest (and thus the determinism assertions above)
    // degenerating into a constant.
    assert!(
        report_a.static_arm.digest != report_b.static_arm.digest
            || report_a.adaptive_arm.digest != report_b.adaptive_arm.digest,
        "seed change did not reach the simulator streams"
    );
}
