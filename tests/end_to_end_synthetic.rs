//! End-to-end integration test on the synthetic benchmark: generation →
//! training → skill recovery → difficulty estimation → serialization.

use upskill_core::baselines::{to_id_dataset, uniform_baseline};
use upskill_core::difficulty::{assignment_difficulty_all, generation_difficulty_all, SkillPrior};
use upskill_core::train::{train, TrainConfig};
use upskill_core::SkillModel;
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::{pearson, rmse};

fn small_config(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        n_users: 150,
        n_items: 500,
        n_levels: 5,
        mean_sequence_len: 40.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed,
    }
}

#[test]
fn multifaceted_recovers_skill_better_than_baselines() {
    let data = generate(&small_config(1)).expect("generation");
    let truth = data.flat_true_skills();
    let cfg = TrainConfig::new(5).with_min_init_actions(40);

    // Uniform baseline.
    let (uniform_assign, _) = uniform_baseline(&data.dataset, 5, 0.01).expect("uniform");
    let uniform_pred: Vec<f64> = uniform_assign
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();

    // ID baseline.
    let id_view = to_id_dataset(&data.dataset).expect("projection");
    let id_result = train(&id_view, &cfg).expect("ID training");
    let id_pred: Vec<f64> = id_result
        .assignments
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();

    // Multi-faceted.
    let mf_result = train(&data.dataset, &cfg).expect("training");
    let mf_pred: Vec<f64> = mf_result
        .assignments
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();

    let r_uniform = pearson(&uniform_pred, &truth).expect("r");
    let r_id = pearson(&id_pred, &truth).expect("r");
    let r_mf = pearson(&mf_pred, &truth).expect("r");
    // Table VI ordering.
    assert!(
        r_uniform < r_id && r_id < r_mf,
        "expected Uniform < ID < Multi-faceted, got {r_uniform:.3}, {r_id:.3}, {r_mf:.3}"
    );
    assert!(r_mf > 0.6, "multi-faceted recovery too weak: {r_mf:.3}");

    let rmse_mf = rmse(&mf_pred, &truth).expect("rmse");
    let rmse_uniform = rmse(&uniform_pred, &truth).expect("rmse");
    assert!(rmse_mf < rmse_uniform);
}

#[test]
fn difficulty_estimators_track_ground_truth() {
    let data = generate(&small_config(2)).expect("generation");
    let cfg = TrainConfig::new(5).with_min_init_actions(40);
    let result = train(&data.dataset, &cfg).expect("training");

    let assign = assignment_difficulty_all(&data.dataset, &result.assignments)
        .expect("assignment difficulty");
    let gen_emp = generation_difficulty_all(
        &result.model,
        &data.dataset,
        SkillPrior::Empirical,
        Some(&result.assignments),
    )
    .expect("generation difficulty");

    // All generation estimates within [1, S].
    assert!(gen_emp.iter().all(|&d| (1.0..=5.0).contains(&d)));

    // Both estimators correlate with the truth; generation at least as well.
    let assign_flat: Vec<f64> = assign.iter().map(|d| d.unwrap_or(3.0)).collect();
    let r_assign = pearson(&assign_flat, &data.true_difficulty).expect("r");
    let r_gen = pearson(&gen_emp, &data.true_difficulty).expect("r");
    assert!(
        r_assign > 0.5,
        "assignment difficulty too weak: {r_assign:.3}"
    );
    assert!(r_gen > 0.7, "generation difficulty too weak: {r_gen:.3}");

    // Table VII: generation-based (empirical) beats assignment-based RMSE.
    let rmse_assign = rmse(&assign_flat, &data.true_difficulty).expect("rmse");
    let rmse_gen = rmse(&gen_emp, &data.true_difficulty).expect("rmse");
    assert!(
        rmse_gen < rmse_assign,
        "expected generation RMSE {rmse_gen:.3} < assignment RMSE {rmse_assign:.3}"
    );
}

#[test]
fn trained_model_serde_roundtrip_preserves_likelihoods() {
    let data = generate(&small_config(3)).expect("generation");
    let cfg = TrainConfig::new(5).with_min_init_actions(40);
    let result = train(&data.dataset, &cfg).expect("training");

    let json = serde_json::to_string(&result.model).expect("serialize");
    let restored: SkillModel = serde_json::from_str(&json).expect("deserialize");
    for item in (0..data.dataset.n_items() as u32).step_by(17) {
        let features = data.dataset.item_features(item);
        for s in 1..=5u8 {
            let a = result.model.item_log_likelihood(features, s);
            let b = restored.item_log_likelihood(features, s);
            assert!((a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()));
        }
    }
}

#[test]
fn dense_data_shrinks_the_multifaceted_advantage() {
    // Sparse: 500 items for ~6000 actions; dense: 100 items.
    let sparse = generate(&small_config(4)).expect("generation");
    let dense = generate(&SyntheticConfig {
        n_items: 100,
        ..small_config(4)
    })
    .expect("generation");
    let cfg = TrainConfig::new(5).with_min_init_actions(40);

    let gap = |data: &upskill_datasets::synthetic::SyntheticData| -> f64 {
        let truth = data.flat_true_skills();
        let id_view = to_id_dataset(&data.dataset).expect("projection");
        let id_r = train(&id_view, &cfg).expect("train");
        let mf_r = train(&data.dataset, &cfg).expect("train");
        let flat = |a: &upskill_core::SkillAssignments| -> Vec<f64> {
            a.per_user
                .iter()
                .flat_map(|s| s.iter().map(|&x| x as f64))
                .collect()
        };
        pearson(&flat(&mf_r.assignments), &truth).expect("r")
            - pearson(&flat(&id_r.assignments), &truth).expect("r")
    };
    let sparse_gap = gap(&sparse);
    let dense_gap = gap(&dense);
    // Tables VI vs VIII: the advantage shrinks when items are dense.
    assert!(
        sparse_gap > dense_gap,
        "sparse gap {sparse_gap:.3} should exceed dense gap {dense_gap:.3}"
    );
}

#[test]
fn training_determinism_end_to_end() {
    let a = {
        let data = generate(&small_config(5)).expect("generation");
        train(
            &data.dataset,
            &TrainConfig::new(5).with_min_init_actions(40),
        )
        .expect("training")
        .log_likelihood
    };
    let b = {
        let data = generate(&small_config(5)).expect("generation");
        train(
            &data.dataset,
            &TrainConfig::new(5).with_min_init_actions(40),
        )
        .expect("training")
        .log_likelihood
    };
    assert_eq!(a, b);
}
