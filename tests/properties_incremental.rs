//! Property-based tests for the incremental training subsystem: a
//! randomly churned [`StatsGrid`] must stay cell-for-cell equal to a
//! from-scratch accumulation, and incremental vs. full training — hard
//! (Viterbi) *and* soft (responsibility-delta EM) — must produce
//! identical results across random schemas, skill counts, and thread
//! counts.

use proptest::prelude::*;
use upskill_core::dist::FeatureAccumulator;
use upskill_core::em::{train_em_with_parallelism, EmConfig};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::incremental::StatsGrid;
use upskill_core::init::initialize_model;
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::transition::TransitionModel;
use upskill_core::types::{Action, ActionSequence, Dataset, SkillAssignments};

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

/// One action: an item pick plus four raw level draws (one per churn
/// version the grid will be stepped through).
type ActionDraw = (usize, (u8, u8, u8, u8));

const CARDINALITY: u32 = 4;
const N_VERSIONS: usize = 4;

/// Mixed four-feature schema: categorical + count + gamma + log-normal.
fn mixed_schema() -> FeatureSchema {
    FeatureSchema::new(vec![
        FeatureKind::Categorical {
            cardinality: CARDINALITY,
        },
        FeatureKind::Count,
        FeatureKind::Positive {
            model: PositiveModel::Gamma,
        },
        FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        },
    ])
    .unwrap()
}

/// Schema variants for the training test: categorical always present,
/// the other kinds toggled by `mask` bits.
fn masked_schema(mask: u8) -> FeatureSchema {
    let mut kinds = vec![FeatureKind::Categorical {
        cardinality: CARDINALITY,
    }];
    if mask & 1 != 0 {
        kinds.push(FeatureKind::Count);
    }
    if mask & 2 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
    }
    if mask & 4 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
    }
    FeatureSchema::new(kinds).unwrap()
}

fn item_values(schema: &FeatureSchema, draw: &ItemDraw) -> Vec<FeatureValue> {
    let &(cat, count, real_a, real_b) = draw;
    schema
        .kinds()
        .iter()
        .map(|kind| match kind {
            FeatureKind::Categorical { .. } => FeatureValue::Categorical(cat % CARDINALITY),
            FeatureKind::Count => FeatureValue::Count(count),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => FeatureValue::Real(real_a),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => FeatureValue::Real(real_b),
        })
        .collect()
}

fn build_dataset(
    schema: FeatureSchema,
    item_draws: &[ItemDraw],
    users: &[Vec<ActionDraw>],
) -> Dataset {
    let items: Vec<Vec<FeatureValue>> =
        item_draws.iter().map(|d| item_values(&schema, d)).collect();
    let sequences: Vec<ActionSequence> = users
        .iter()
        .enumerate()
        .map(|(u, picks)| {
            let actions: Vec<Action> = picks
                .iter()
                .enumerate()
                .map(|(t, &(raw, _))| {
                    Action::new(t as i64, u as u32, (raw % item_draws.len()) as u32)
                })
                .collect();
            ActionSequence::new(u as u32, actions).unwrap()
        })
        .collect();
    Dataset::new(schema, items, sequences).unwrap()
}

/// Extracts churn version `v` (0-based) as a full assignment.
fn assignment_version(users: &[Vec<ActionDraw>], v: usize, n_levels: usize) -> SkillAssignments {
    let per_user = users
        .iter()
        .map(|picks| {
            picks
                .iter()
                .map(|&(_, (a, b, c, d))| {
                    let raw = [a, b, c, d][v];
                    (raw as usize % n_levels + 1) as u8
                })
                .collect()
        })
        .collect();
    SkillAssignments { per_user }
}

/// Cell-by-cell accumulator comparison: exact for the integer-statistic
/// families, tight relative tolerance for the continuous sums (replay is
/// item-ordered, the scan action-ordered, so they differ by ulps only).
fn assert_accumulators_match(
    replayed: &[Vec<FeatureAccumulator>],
    scanned: &[Vec<FeatureAccumulator>],
) -> proptest::TestCaseResult {
    prop_assert_eq!(replayed.len(), scanned.len());
    for (rrow, srow) in replayed.iter().zip(scanned) {
        prop_assert_eq!(rrow.len(), srow.len());
        for (r, s) in rrow.iter().zip(srow) {
            match (r, s) {
                (
                    FeatureAccumulator::Categorical { counts: rc },
                    FeatureAccumulator::Categorical { counts: sc },
                ) => prop_assert_eq!(rc, sc),
                (
                    FeatureAccumulator::Count { sum: rs, n: rn },
                    FeatureAccumulator::Count { sum: ss, n: sn },
                ) => {
                    // Integer-valued f64 sums are exact in any order.
                    prop_assert_eq!(rs, ss);
                    prop_assert_eq!(rn, sn);
                }
                (
                    FeatureAccumulator::Positive { stats: rs, .. },
                    FeatureAccumulator::Positive { stats: ss, .. },
                ) => {
                    prop_assert_eq!(rs.count(), ss.count());
                    if rs.count() > 0.0 {
                        for (a, b) in [
                            (rs.mean(), ss.mean()),
                            (rs.mean_ln(), ss.mean_ln()),
                            (rs.variance(), ss.variance()),
                            (rs.variance_ln(), ss.variance_ln()),
                        ] {
                            let scale = a.abs().max(b.abs()).max(1.0);
                            prop_assert!(
                                (a - b).abs() <= 1e-10 * scale,
                                "continuous stat mismatch: {} vs {}",
                                a,
                                b
                            );
                        }
                    }
                }
                _ => prop_assert!(false, "accumulator kinds diverged"),
            }
        }
    }
    Ok(())
}

fn users_strategy(max_users: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<ActionDraw>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0usize..1000, (0u8..12, 0u8..12, 0u8..12, 0u8..12)),
            1..max_len,
        ),
        1..max_users,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // A grid stepped through a chain of random assignment churns equals
    // the from-scratch build at every step, its replayed accumulators
    // match `update::accumulate` cell by cell, and the parallel delta
    // path matches the sequential one exactly for any thread count.
    #[test]
    fn churned_grid_matches_from_scratch(
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..10),
        users in users_strategy(6, 18),
        n_levels in 2usize..5,
    ) {
        let ds = build_dataset(mixed_schema(), &item_draws, &users);
        let mut current = assignment_version(&users, 0, n_levels);
        let mut grid = StatsGrid::build(&ds, &current, n_levels).unwrap();
        prop_assert_eq!(grid.total_actions() as usize, ds.n_actions());

        for v in 1..N_VERSIONS {
            let next = assignment_version(&users, v, n_levels);
            let expected_changed: usize = current
                .per_user
                .iter()
                .flatten()
                .zip(next.per_user.iter().flatten())
                .filter(|(a, b)| a != b)
                .count();

            // The parallel delta path must match the sequential one for
            // any thread count (integer merges are exact).
            for threads in [2usize, 3] {
                let mut par = grid.clone();
                let changed = par
                    .apply_delta_parallel(&ds, &current, &next, threads)
                    .unwrap();
                prop_assert_eq!(changed, expected_changed);
                let mut seq = grid.clone();
                seq.apply_delta(&ds, &current, &next).unwrap();
                prop_assert_eq!(&par, &seq);
            }

            let changed = grid.apply_delta(&ds, &current, &next).unwrap();
            prop_assert_eq!(changed, expected_changed);
            let fresh = StatsGrid::build(&ds, &next, n_levels).unwrap();
            prop_assert_eq!(&grid, &fresh);
            grid.cross_check(&ds, &next).unwrap();

            let replayed = grid.accumulators(&ds).unwrap();
            let scanned =
                upskill_core::update::accumulate(&ds, &next, n_levels).unwrap();
            assert_accumulators_match(&replayed, &scanned)?;
            current = next;
        }
    }

    // Incremental and full-rescan training agree — same assignments,
    // churn trace, and objective — across random schemas, skill counts,
    // and thread counts.
    #[test]
    fn incremental_and_full_training_are_identical(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 3..8),
        users in users_strategy(5, 14),
        n_levels in 2usize..4,
        threads in 1usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(12);
        let base = ParallelConfig::all(threads);
        let incremental = train_with_parallelism(&ds, &cfg, &base).unwrap();
        let full =
            train_with_parallelism(&ds, &cfg, &base.with_incremental(false)).unwrap();

        prop_assert_eq!(&incremental.assignments, &full.assignments);
        prop_assert_eq!(incremental.converged, full.converged);
        prop_assert_eq!(incremental.trace.len(), full.trace.len());
        for (a, b) in incremental.trace.iter().zip(&full.trace) {
            prop_assert_eq!(a.iteration, b.iteration);
            prop_assert_eq!(a.n_changed, b.n_changed);
            let scale = a.log_likelihood.abs().max(1.0);
            prop_assert!(
                (a.log_likelihood - b.log_likelihood).abs() <= 1e-9 * scale,
                "iteration {} ll {} vs {}",
                a.iteration,
                a.log_likelihood,
                b.log_likelihood
            );
        }
        let scale = incremental.log_likelihood.abs().max(1.0);
        prop_assert!(
            (incremental.log_likelihood - full.log_likelihood).abs() <= 1e-9 * scale
        );
    }

    // Responsibility-delta incremental EM and the legacy from-scratch EM
    // agree across random schemas, skill counts, and thread counts, with
    // the default responsibility gate and with the gate disabled:
    //
    // - The first iteration's evidence is **bitwise** equal — both paths
    //   run forward–backward against the identical initial table, so any
    //   deviation here is an E-step bug, not floating-point drift.
    // - Later iterations differ only by M-step summation order
    //   (item-major replay vs. action-major scan), normally ulps. On
    //   adversarial random data an ulp-level difference can briefly push
    //   one trajectory across an M-step branch boundary (e.g. a fit
    //   guard), producing a one-iteration spike that EM's contraction
    //   erases again, so the per-iteration bound is a loose 1e-4 while
    //   the structure (iteration count, convergence flag) must match
    //   exactly and the *final* evidence and models must agree tightly.
    #[test]
    fn incremental_and_full_em_are_identical(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 3..8),
        users in users_strategy(5, 14),
        n_levels in 2usize..4,
        threads in 1usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let initial = initialize_model(&ds, n_levels, 1, 0.01).unwrap();
        let transitions = TransitionModel::uninformative(n_levels).unwrap();
        let base = ParallelConfig::all(threads);

        for gamma_tolerance in [0.0, 1e-12] {
            let cfg = EmConfig::new(initial.clone(), transitions.clone())
                .with_max_iterations(10)
                .with_tolerance(1e-9)
                .with_gamma_tolerance(gamma_tolerance);
            let incremental = train_em_with_parallelism(&ds, &cfg, &base).unwrap();
            let full = train_em_with_parallelism(
                &ds, &cfg, &base.with_incremental(false)).unwrap();

            prop_assert_eq!(incremental.converged, full.converged);
            prop_assert_eq!(
                incremental.evidence_trace.len(),
                full.evidence_trace.len()
            );
            prop_assert!(
                incremental.evidence_trace[0].to_bits()
                    == full.evidence_trace[0].to_bits(),
                "gate {}: first-iteration evidence not bitwise: {} vs {}",
                gamma_tolerance, incremental.evidence_trace[0], full.evidence_trace[0]
            );
            for (i, (a, b)) in incremental
                .evidence_trace
                .iter()
                .zip(&full.evidence_trace)
                .enumerate()
            {
                let scale = a.abs().max(b.abs()).max(1.0);
                prop_assert!(
                    (a - b).abs() <= 1e-4 * scale,
                    "gate {}: iteration {} evidence {} vs {}",
                    gamma_tolerance, i, a, b
                );
            }
            let (a, b) = (
                incremental.evidence_trace[incremental.evidence_trace.len() - 1],
                full.evidence_trace[full.evidence_trace.len() - 1],
            );
            let scale = a.abs().max(b.abs()).max(1.0);
            prop_assert!(
                (a - b).abs() <= 1e-9 * scale,
                "gate {}: final evidence {} vs {}", gamma_tolerance, a, b
            );
            for item in 0..ds.n_items() as u32 {
                let features = ds.item_features(item);
                for s in 1..=n_levels as u8 {
                    let a = incremental.model.item_log_likelihood(features, s);
                    let b = full.model.item_log_likelihood(features, s);
                    let scale = a.abs().max(b.abs()).max(1.0);
                    prop_assert!(
                        (a - b).abs() <= 1e-9 * scale,
                        "gate {}: item {} level {}: {} vs {}",
                        gamma_tolerance, item, s, a, b
                    );
                }
            }
        }
    }
}
