//! Integration tests for the downstream tasks: item prediction (Tables
//! X–XI protocol) and FFM rating prediction with skill/difficulty features
//! (Table XII protocol).

use upskill_core::baselines::uniform_baseline;
use upskill_core::difficulty::{generation_difficulty_all, SkillPrior};
use upskill_core::predict::{
    evaluate_item_prediction, holdout_split, HoldoutPosition, PredictionSplit,
};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::beer::{generate as generate_beer, BeerConfig, BEER_LEVELS};
use upskill_datasets::cooking::{generate as generate_cooking, CookingConfig};
use upskill_eval::ranking::random_reciprocal_rank;
use upskill_eval::{mean_acc_at_k, mean_reciprocal_rank};
use upskill_ffm::{FeatureLayout, FfmConfig, FfmModel, Instance, InstanceBuilder};

#[test]
fn item_prediction_beats_random_guessing() {
    let data = generate_cooking(&CookingConfig::test_scale(31)).expect("generation");
    let split = holdout_split(&data.dataset, HoldoutPosition::Random { seed: 3 }).expect("split");
    let result =
        train(&split.train, &TrainConfig::new(5).with_min_init_actions(50)).expect("training");
    let outcomes = evaluate_item_prediction(&result.model, &split, &result.assignments, 0)
        .expect("evaluation");
    assert!(!outcomes.is_empty());
    let ranks: Vec<usize> = outcomes.iter().map(|o| o.rank).collect();
    let rr = mean_reciprocal_rank(&ranks).expect("rr");
    let random_rr = random_reciprocal_rank(split.train.n_items());
    assert!(
        rr > random_rr * 1.5,
        "model RR {rr:.4} should clearly beat random {random_rr:.4}"
    );
    // Ranks are valid 1-based positions.
    assert!(ranks.iter().all(|&r| r >= 1 && r <= split.train.n_items()));
}

#[test]
fn multifaceted_beats_uniform_on_item_prediction() {
    let data = generate_cooking(&CookingConfig::test_scale(37)).expect("generation");
    let split = holdout_split(&data.dataset, HoldoutPosition::Last).expect("split");

    let mf = train(&split.train, &TrainConfig::new(5).with_min_init_actions(50)).expect("training");
    let mf_ranks: Vec<usize> = evaluate_item_prediction(&mf.model, &split, &mf.assignments, 0)
        .expect("evaluation")
        .iter()
        .map(|o| o.rank)
        .collect();

    let (uni_assign, uni_model) = uniform_baseline(&split.train, 5, 0.01).expect("uniform");
    let uni_split = PredictionSplit {
        train: split.train.clone(),
        test: split.test.clone(),
    };
    let uni_ranks: Vec<usize> = evaluate_item_prediction(&uni_model, &uni_split, &uni_assign, 0)
        .expect("evaluation")
        .iter()
        .map(|o| o.rank)
        .collect();

    let mf_rr = mean_reciprocal_rank(&mf_ranks).expect("rr");
    let uni_rr = mean_reciprocal_rank(&uni_ranks).expect("rr");
    assert!(
        mf_rr > uni_rr,
        "Multi-faceted RR {mf_rr:.4} should beat Uniform RR {uni_rr:.4}"
    );
    let mf_acc = mean_acc_at_k(&mf_ranks, 10).expect("acc");
    assert!((0.0..=1.0).contains(&mf_acc));
}

/// Builds FFM instances for one layout from the full beer dataset.
fn beer_instances(
    data: &upskill_datasets::beer::BeerData,
    layout: FeatureLayout,
) -> (InstanceBuilder, Vec<Instance>, Vec<Instance>, Vec<Instance>) {
    let skill = train(
        &data.dataset,
        &TrainConfig::new(BEER_LEVELS).with_min_init_actions(50),
    )
    .expect("skill training");
    let difficulty = generation_difficulty_all(
        &skill.model,
        &data.dataset,
        SkillPrior::Empirical,
        Some(&skill.assignments),
    )
    .expect("difficulty");
    let builder = InstanceBuilder::new(
        layout,
        data.dataset.n_users(),
        data.dataset.n_items(),
        BEER_LEVELS,
    )
    .expect("builder");
    let mut train_set = Vec::new();
    let mut valid = Vec::new();
    let mut test = Vec::new();
    let mut k = 0usize;
    for (u, seq) in data.dataset.sequences().iter().enumerate() {
        let levels = &skill.assignments.per_user[u];
        for ((action, &s), &rating) in seq.actions().iter().zip(levels).zip(&data.ratings[u]) {
            let inst = builder
                .instance(
                    u,
                    action.item as usize,
                    s,
                    difficulty[action.item as usize],
                    rating,
                )
                .expect("instance");
            match k % 10 {
                8 => valid.push(inst),
                9 => test.push(inst),
                _ => train_set.push(inst),
            }
            k += 1;
        }
    }
    (builder, train_set, valid, test)
}

#[test]
fn skill_and_difficulty_features_help_rating_prediction() {
    let data = generate_beer(&BeerConfig::test_scale(41)).expect("generation");
    let rmse_for = |layout: FeatureLayout| -> f64 {
        let (builder, train_set, valid, test) = beer_instances(&data, layout);
        let cfg = FfmConfig {
            epochs: 15,
            seed: 2,
            ..FfmConfig::new(builder.n_features(), builder.n_fields())
        };
        FfmModel::train(cfg, &train_set, &valid)
            .expect("ffm")
            .rmse(&test)
    };
    let ui = rmse_for(FeatureLayout::ui());
    let uisd = rmse_for(FeatureLayout::uisd());
    // Table XII shape: the full feature set should not be worse.
    assert!(
        uisd <= ui + 0.01,
        "U+I+S+D RMSE {uisd:.4} should be <= U+I RMSE {ui:.4}"
    );
    assert!(ui.is_finite() && uisd.is_finite());
}

#[test]
fn holdout_protocols_are_consistent() {
    let data = generate_beer(&BeerConfig::test_scale(43)).expect("generation");
    let last = holdout_split(&data.dataset, HoldoutPosition::Last).expect("split");
    // Every held-out action in the last setting is the chronologically
    // final action of its user.
    for &(u, action) in &last.test {
        let seq = &last.train.sequences()[u];
        assert!(seq.actions().iter().all(|a| a.time <= action.time));
    }
    // Action counts add back up.
    let total: usize = last.train.n_actions() + last.test.len();
    assert_eq!(total, data.dataset.n_actions());
}
