//! Integration tests for the parallel training paths (§IV-C) and the
//! extension modules (probabilistic transitions, EM trainer).

use upskill_core::em::{train_em_with_parallelism, EmConfig};
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train, train_with_parallelism, TrainConfig};
use upskill_core::transition::{
    assign_sequence_with_transitions, fit_transitions, TransitionModel,
};
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::pearson;

fn data(seed: u64) -> upskill_datasets::synthetic::SyntheticData {
    generate(&SyntheticConfig {
        n_users: 80,
        n_items: 300,
        n_levels: 4,
        mean_sequence_len: 30.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 8,
        seed,
    })
    .expect("generation")
}

#[test]
fn every_parallel_configuration_matches_sequential_training() {
    let data = data(3);
    let cfg = TrainConfig::new(4).with_min_init_actions(25);
    let sequential = train(&data.dataset, &cfg).expect("sequential");
    for (users, features, skills) in [
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, true),
    ] {
        let pc = ParallelConfig::sequential()
            .with_users(users)
            .with_skills(skills)
            .with_features(features)
            .with_threads(4);
        let parallel = train_with_parallelism(&data.dataset, &cfg, &pc).expect("parallel");
        assert_eq!(
            sequential.assignments, parallel.assignments,
            "assignments diverged for users={users} features={features} skills={skills}"
        );
        assert!(
            (sequential.log_likelihood - parallel.log_likelihood).abs() < 1e-6,
            "objective diverged for users={users} features={features} skills={skills}"
        );
    }
}

#[test]
fn transition_extension_regularizes_level_churn() {
    let data = data(5);
    let cfg = TrainConfig::new(4).with_min_init_actions(25);
    let base = train(&data.dataset, &cfg).expect("training");

    // Fit transitions from the hard assignments.
    let transitions = fit_transitions(&base.assignments, 4, 0.5).expect("transitions");
    assert_eq!(transitions.n_levels(), 4);
    assert!(transitions
        .stay_probs()
        .iter()
        .all(|&p| (0.0..=1.0).contains(&p)));
    assert!((transitions.init_probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // Extremely sticky transitions force fewer advances than the base DP.
    let sticky = TransitionModel::new(vec![0.99999; 4], vec![0.25; 4]).expect("model");
    let mut base_advances = 0usize;
    let mut sticky_advances = 0usize;
    for (idx, seq) in data.dataset.sequences().iter().enumerate().take(20) {
        base_advances += base.assignments.per_user[idx]
            .windows(2)
            .filter(|w| w[1] > w[0])
            .count();
        let a = assign_sequence_with_transitions(&base.model, &sticky, &data.dataset, seq)
            .expect("assignment");
        sticky_advances += a.levels.windows(2).filter(|w| w[1] > w[0]).count();
        assert!(a.levels.windows(2).all(|w| w[0] <= w[1]));
    }
    assert!(
        sticky_advances <= base_advances,
        "sticky transitions should not advance more ({sticky_advances} vs {base_advances})"
    );
}

#[test]
fn em_trainer_recovers_comparable_skill_structure() {
    let data = data(7);
    let cfg = TrainConfig::new(4).with_min_init_actions(25);
    let hard = train(&data.dataset, &cfg).expect("hard training");

    let initial =
        upskill_core::init::initialize_model(&data.dataset, 4, 25, 0.01).expect("initialization");
    let transitions = TransitionModel::uninformative(4).expect("transitions");
    let em_cfg = EmConfig::new(initial, transitions)
        .with_max_iterations(15)
        .with_tolerance(1e-8);
    let soft = train_em_with_parallelism(&data.dataset, &em_cfg, &ParallelConfig::sequential())
        .expect("EM training");
    assert!(!soft.evidence_trace.is_empty());

    // Viterbi decoding of the EM model should correlate with the truth
    // nearly as well as the hard-assignment model.
    let truth = data.flat_true_skills();
    let hard_pred: Vec<f64> = hard
        .assignments
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();
    let (soft_assignments, _) =
        upskill_core::assign::assign_all(&soft.model, &data.dataset).expect("decode");
    let soft_pred: Vec<f64> = soft_assignments
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();
    let r_hard = pearson(&hard_pred, &truth).expect("r");
    let r_soft = pearson(&soft_pred, &truth).expect("r");
    assert!(
        r_soft > r_hard - 0.15,
        "EM recovery {r_soft:.3} should be comparable to hard {r_hard:.3}"
    );
}

#[test]
fn thread_oversubscription_is_safe() {
    let data = data(9);
    let cfg = TrainConfig::new(4).with_min_init_actions(25);
    let pc = ParallelConfig::all(32);
    let result = train_with_parallelism(&data.dataset, &cfg, &pc).expect("training");
    assert!(result.assignments.is_monotone());
}
