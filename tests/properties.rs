//! Property-based tests (proptest) on the core invariants:
//! - the DP assignment equals brute-force search and is always monotone;
//! - distribution MLEs maximize likelihood and normalize;
//! - difficulty estimates stay on the `[1, S]` scale;
//! - metric implementations agree with reference versions.

use proptest::prelude::*;
use upskill_core::assign::{assign_sequence, assign_sequence_bruteforce};
use upskill_core::difficulty::{generation_difficulty_with_prior, SkillPrior};
use upskill_core::dist::{Categorical, FeatureDistribution, Gamma, Poisson};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
use upskill_core::model::SkillModel;
use upskill_core::types::{Action, ActionSequence, Dataset};
use upskill_core::update::fit_model;
use upskill_core::SkillAssignments;
use upskill_eval::correlation::{kendall_tau, kendall_tau_naive, pearson, spearman};

/// Builds a random-ish S-level model over one categorical feature with
/// probabilities derived from the given weights.
fn model_from_weights(weights: &[Vec<f64>]) -> SkillModel {
    let n_levels = weights.len();
    let cardinality = weights[0].len() as u32;
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality }]).unwrap();
    let cells = weights
        .iter()
        .map(|w| {
            let total: f64 = w.iter().sum();
            let probs: Vec<f64> = w.iter().map(|x| x / total).collect();
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(probs).unwrap(),
            )]
        })
        .collect();
    SkillModel::new(schema, n_levels, cells).unwrap()
}

fn dataset_from_items(cardinality: u32, item_cats: &[u32]) -> (Dataset, ActionSequence) {
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality }]).unwrap();
    let items: Vec<Vec<FeatureValue>> = (0..cardinality)
        .map(|c| vec![FeatureValue::Categorical(c)])
        .collect();
    let actions: Vec<Action> = item_cats
        .iter()
        .enumerate()
        .map(|(t, &c)| Action::new(t as i64, 0, c))
        .collect();
    let seq = ActionSequence::new(0, actions).unwrap();
    let ds = Dataset::new(schema, items, vec![seq.clone()]).unwrap();
    (ds, seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_equals_bruteforce_and_is_monotone(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 4), 2..4),
        cats in proptest::collection::vec(0u32..4, 1..9),
    ) {
        let model = model_from_weights(&weights);
        let (ds, seq) = dataset_from_items(4, &cats);
        let dp = assign_sequence(&model, &ds, &seq).unwrap();
        let bf = assign_sequence_bruteforce(&model, &ds, &seq).unwrap();
        prop_assert!((dp.log_likelihood - bf.log_likelihood).abs() < 1e-9);
        prop_assert!(dp.levels.windows(2).all(|w| w[0] <= w[1] && w[1] - w[0] <= 1));
        prop_assert!(dp.levels.iter().all(|&s| 1 <= s && s as usize <= weights.len()));
    }

    #[test]
    fn categorical_mle_maximizes_likelihood(
        counts in proptest::collection::vec(0u64..30, 2..8),
        perturb_idx in 0usize..8,
        delta in 0.001f64..0.2,
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let fitted = Categorical::fit_from_counts(&counts, 0.0).unwrap();
        let ll = |p: &[f64]| -> f64 {
            counts
                .iter()
                .zip(p)
                .map(|(&c, &p)| if c == 0 { 0.0 } else { c as f64 * p.ln() })
                .sum()
        };
        let base = ll(fitted.probs());
        // Move mass between two categories; likelihood must not improve.
        let i = perturb_idx % counts.len();
        let j = (perturb_idx + 1) % counts.len();
        let mut perturbed = fitted.probs().to_vec();
        let d = delta.min(perturbed[i]);
        perturbed[i] -= d;
        perturbed[j] += d;
        prop_assert!(base >= ll(&perturbed) - 1e-9);
    }

    #[test]
    fn poisson_mle_maximizes_likelihood(
        samples in proptest::collection::vec(0u64..40, 1..30),
        factor in 0.5f64..2.0,
    ) {
        prop_assume!(samples.iter().sum::<u64>() > 0);
        let fitted = Poisson::fit(&samples).unwrap();
        prop_assume!((factor - 1.0).abs() > 0.01);
        let other = Poisson::new(fitted.rate() * factor).unwrap();
        let ll = |p: &Poisson| samples.iter().map(|&k| p.log_pmf(k)).sum::<f64>();
        prop_assert!(ll(&fitted) >= ll(&other) - 1e-9);
    }

    #[test]
    fn gamma_mle_beats_scaled_alternatives(
        raw in proptest::collection::vec(0.1f64..20.0, 5..40),
        shape_factor in 0.5f64..2.0,
    ) {
        let fitted = Gamma::fit(&raw).unwrap();
        prop_assume!((shape_factor - 1.0).abs() > 0.05);
        prop_assume!(fitted.shape() * shape_factor > 1e-3);
        prop_assume!(fitted.shape() < 1e5); // skip near-degenerate fits
        let alt = Gamma::new(fitted.shape() * shape_factor, fitted.scale()).unwrap();
        let ll = |g: &Gamma| raw.iter().map(|&x| g.log_pdf(x)).sum::<f64>();
        prop_assert!(ll(&fitted) >= ll(&alt) - 1e-6);
    }

    #[test]
    fn posterior_is_normalized_and_difficulty_bounded(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 3), 2..6),
        cat in 0u32..3,
        prior_raw in proptest::collection::vec(0.05f64..1.0, 2..6),
    ) {
        prop_assume!(prior_raw.len() == weights.len());
        let model = model_from_weights(&weights);
        let total: f64 = prior_raw.iter().sum();
        let prior: Vec<f64> = prior_raw.iter().map(|p| p / total).collect();
        let features = vec![FeatureValue::Categorical(cat)];
        let posterior = model.skill_posterior(&features, &prior).unwrap();
        prop_assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(posterior.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        let d = generation_difficulty_with_prior(&model, &features, &prior).unwrap();
        prop_assert!(d >= 1.0 - 1e-9 && d <= weights.len() as f64 + 1e-9);
    }

    #[test]
    fn refit_parameters_never_lower_objective(
        pairs in proptest::collection::vec((0u32..3, 0u8..3), 4..20),
    ) {
        let cats: Vec<u32> = pairs.iter().map(|&(c, _)| c).collect();
        let levels_raw: Vec<u8> = pairs.iter().map(|&(_, l)| l).collect();
        // Make levels monotone by taking a running max.
        let mut levels = Vec::with_capacity(levels_raw.len());
        let mut current = 1u8;
        for &l in &levels_raw {
            current = current.max(l + 1);
            levels.push(current.min(3));
        }
        let (ds, _) = dataset_from_items(3, &cats);
        let assignments = SkillAssignments { per_user: vec![levels] };
        let heavy = fit_model(&ds, &assignments, 3, 5.0).unwrap();
        let exact = fit_model(&ds, &assignments, 3, 0.0).unwrap();
        let ll = |m: &SkillModel| {
            upskill_core::update::log_likelihood(&ds, &assignments, m).unwrap()
        };
        prop_assert!(ll(&exact) >= ll(&heavy) - 1e-9);
    }

    #[test]
    fn kendall_fast_equals_naive(
        pairs in proptest::collection::vec((0i32..6, 0i32..6), 3..40),
    ) {
        let x: Vec<f64> = pairs.iter().map(|&(a, _)| a as f64).collect();
        let y: Vec<f64> = pairs.iter().map(|&(_, b)| b as f64).collect();
        match (kendall_tau(&x, &y), kendall_tau_naive(&x, &y)) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn correlations_bounded_and_scale_invariant(
        pairs in proptest::collection::vec((-100i32..100, -100i32..100), 4..40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let x: Vec<f64> = pairs.iter().map(|&(a, _)| a as f64).collect();
        let y: Vec<f64> = pairs.iter().map(|&(_, b)| b as f64).collect();
        if let Ok(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            // Positive affine transform of x leaves r unchanged.
            let xt: Vec<f64> = x.iter().map(|&v| v * scale + shift).collect();
            let rt = pearson(&xt, &y).unwrap();
            prop_assert!((r - rt).abs() < 1e-9);
        }
        if let Ok(rho) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
        }
    }

    #[test]
    fn sequence_construction_sorts_and_validates(
        times in proptest::collection::vec(-1000i64..1000, 1..30),
    ) {
        let actions: Vec<Action> =
            times.iter().map(|&t| Action::new(t, 3, 0)).collect();
        let seq = ActionSequence::from_unsorted(3, actions).unwrap();
        prop_assert!(seq.actions().windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert_eq!(seq.len(), times.len());
    }

    #[test]
    fn empirical_prior_difficulty_interpolates_priors(
        weights in proptest::collection::vec(
            proptest::collection::vec(0.05f64..5.0, 3), 3..5),
        cat in 0u32..3,
    ) {
        // Difficulty under a point-mass-ish prior at level 1 must be lower
        // than under a point-mass-ish prior at level S.
        let model = model_from_weights(&weights);
        let s = weights.len();
        let features = vec![FeatureValue::Categorical(cat)];
        let mut low = vec![0.01 / (s - 1) as f64; s];
        low[0] = 0.99;
        let mut high = vec![0.01 / (s - 1) as f64; s];
        high[s - 1] = 0.99;
        let d_low = generation_difficulty_with_prior(&model, &features, &low).unwrap();
        let d_high = generation_difficulty_with_prior(&model, &features, &high).unwrap();
        prop_assert!(d_low <= d_high + 1e-9);
    }
}

#[test]
fn skill_prior_enum_is_exported() {
    // Compile-time check that the public difficulty API surface exists.
    let _ = SkillPrior::Uniform;
    let _ = SkillPrior::Empirical;
}
