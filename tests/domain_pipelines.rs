//! Integration tests exercising every domain simulator through the full
//! training + analysis pipeline, asserting the paper's qualitative
//! findings (§VI-C) hold on the simulated data.

use upskill_core::analysis::{level_means, top_skilled, top_unskilled};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::beer::{self, BeerConfig};
use upskill_datasets::cooking::{self, CookingConfig};
use upskill_datasets::film::{self, FilmConfig};
use upskill_datasets::language::{self, LanguageConfig};

#[test]
fn language_pipeline_finds_correction_trend_and_rule_split() {
    let data = language::generate(&LanguageConfig::test_scale(11)).expect("generation");
    let result = train(
        &data.dataset,
        &TrainConfig::new(language::LANGUAGE_LEVELS).with_min_init_actions(50),
    )
    .expect("training");

    // Fig. 4b: corrections per corrector decrease with skill.
    let corrections = level_means(&result.model, language::features::CORRECTIONS).expect("means");
    assert!(
        corrections.first().unwrap() > corrections.last().unwrap(),
        "corrections should decrease with skill: {corrections:?}"
    );

    // Table II: novice list contains a capitalization/punctuation rule;
    // expert list contains an article or bracket rule.
    let novice = top_unskilled(&result.model, language::features::RULE, 10).expect("rules");
    let expert = top_skilled(&result.model, language::features::RULE, 10).expect("rules");
    let novice_names: Vec<&str> = novice
        .iter()
        .map(|e| data.rule_names[e.value as usize].as_str())
        .collect();
    let expert_names: Vec<&str> = expert
        .iter()
        .map(|e| data.rule_names[e.value as usize].as_str())
        .collect();
    assert!(
        novice_names
            .iter()
            .any(|n| n.contains("\"i\" -> \"I\"") || n.contains("\".\"")),
        "novice rules missing capitalization/punctuation: {novice_names:?}"
    );
    assert!(
        expert_names
            .iter()
            .any(|n| n.contains("the") || n.contains('(') || n.contains('[')),
        "expert rules missing articles/brackets: {expert_names:?}"
    );
}

#[test]
fn cooking_pipeline_shows_overreach_anomaly() {
    let data = cooking::generate(&CookingConfig::test_scale(13)).expect("generation");
    let result = train(
        &data.dataset,
        &TrainConfig::new(cooking::COOKING_LEVELS).with_min_init_actions(50),
    )
    .expect("training");

    let steps = level_means(&result.model, cooking::features::N_STEPS).expect("means");
    // Levels 2..5 trend upward.
    assert!(
        steps[4] > steps[1],
        "top level should need more steps than level 2: {steps:?}"
    );

    // The §VI-C anomaly in the data: ground-truth novices select recipes
    // more complex than ground-truth level-2 users (they cannot judge
    // difficulty yet).
    let mut sum = [0.0f64; 5];
    let mut n = [0usize; 5];
    for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
        for (action, &s) in seq.actions().iter().zip(skills) {
            sum[s as usize - 1] += data.recipe_complexity[action.item as usize] as f64;
            n[s as usize - 1] += 1;
        }
    }
    let mean = |i: usize| sum[i] / n[i].max(1) as f64;
    assert!(
        mean(0) > mean(1),
        "novices should over-reach: complexity {:.2} vs {:.2}",
        mean(0),
        mean(1)
    );
}

#[test]
fn beer_pipeline_finds_abv_trend_and_style_split() {
    let data = beer::generate(&BeerConfig::test_scale(17)).expect("generation");
    let result = train(
        &data.dataset,
        &TrainConfig::new(beer::BEER_LEVELS).with_min_init_actions(50),
    )
    .expect("training");

    // Fig. 6: ABV increases with skill.
    let abv = level_means(&result.model, beer::features::ABV).expect("means");
    assert!(
        abv.last().unwrap() > abv.first().unwrap(),
        "ABV should increase with skill: {abv:?}"
    );

    // Table III: novice styles have a lower mean tier than expert styles.
    let novice = top_unskilled(&result.model, beer::features::STYLE, 5).expect("styles");
    let expert = top_skilled(&result.model, beer::features::STYLE, 5).expect("styles");
    let mean_tier = |entries: &[upskill_core::analysis::DominanceEntry]| -> f64 {
        entries
            .iter()
            .map(|e| data.style_tiers[e.value as usize] as f64)
            .sum::<f64>()
            / entries.len() as f64
    };
    assert!(
        mean_tier(&expert) > mean_tier(&novice),
        "expert styles should be higher-tier ({:.2} vs {:.2})",
        mean_tier(&expert),
        mean_tier(&novice)
    );
}

#[test]
fn film_pipeline_reproduces_lastness_and_its_fix() {
    let mut cfg = FilmConfig::test_scale(19);

    // Without the fix: the top movies at the highest level are recent.
    cfg.apply_lastness_fix = false;
    let raw = film::generate(&cfg).expect("generation");
    let max_len = raw
        .dataset
        .sequences()
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1);
    let train_cfg = TrainConfig::new(film::FILM_LEVELS).with_min_init_actions(50.min(max_len));
    let raw_result = train(&raw.dataset, &train_cfg).expect("training");
    let mean_year = |data: &film::FilmData, model: &upskill_core::SkillModel, level: u8| {
        let top = upskill_core::predict::top_items_for_level(model, film::features::ID, level, 10)
            .expect("top items");
        top.iter()
            .map(|&(i, _)| data.release_years[i as usize] as f64)
            .sum::<f64>()
            / top.len() as f64
    };
    let raw_gap = mean_year(&raw, &raw_result.model, 5) - mean_year(&raw, &raw_result.model, 1);
    assert!(
        raw_gap > 2.0,
        "without the fix, high-skill movies should skew recent (gap {raw_gap:.1})"
    );

    // With the fix, the recency skew collapses.
    cfg.apply_lastness_fix = true;
    let fixed = film::generate(&cfg).expect("generation");
    let max_len_fixed = fixed
        .dataset
        .sequences()
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1);
    let fixed_result = train(
        &fixed.dataset,
        &TrainConfig::new(film::FILM_LEVELS).with_min_init_actions(50.min(max_len_fixed)),
    )
    .expect("training");
    let fixed_gap =
        mean_year(&fixed, &fixed_result.model, 5) - mean_year(&fixed, &fixed_result.model, 1);
    assert!(
        fixed_gap < raw_gap,
        "the preprocessing should reduce the recency skew ({fixed_gap:.1} vs {raw_gap:.1})"
    );
}

#[test]
fn filtering_respects_paper_thresholds() {
    // The beer builder's support filter guarantees every surviving user
    // has at least the configured number of unique beers.
    let cfg = BeerConfig::test_scale(23);
    let data = beer::generate(&cfg).expect("generation");
    for seq in data.dataset.sequences() {
        let unique: std::collections::HashSet<u32> = seq.actions().iter().map(|a| a.item).collect();
        assert!(unique.len() >= cfg.support.min_unique_items_per_user);
    }
    let support = data.dataset.item_support();
    assert!(support.iter().all(|&s| s >= 1));
}
