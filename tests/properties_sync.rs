//! Deterministic schedule exploration of the serving layer (feature
//! `deterministic-sync`): every explored interleaving of concurrent
//! [`SkillService`] traffic must (a) satisfy the runtime lock-discipline
//! invariants the static `xtask concurrency` pass enforces lexically —
//! shards before global, no shard guard across an epoch publish — and
//! (b) for disjoint-user operations, land bit-for-bit on the state any
//! serialized order produces. Violations carry a `seed=… choices=…`
//! schedule that replays the exact interleaving.
//!
//! The exhaustive two-thread test enumerates the complete interleaving
//! space; the mixed-workload test samples seeded-random schedules, with
//! the budget overridable via `UPSKILL_SYNC_SCHEDULES` (the CI knob for
//! deeper exploration).
#![cfg(feature = "deterministic-sync")]

use std::sync::Arc;

use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
use upskill_core::parallel::ParallelConfig;
use upskill_core::recommend::RecommendConfig;
use upskill_core::streaming::RefitPolicy;
use upskill_core::sync::explore::{Explorer, Run};
use upskill_core::sync::{LockId, TracedMutex};
use upskill_core::train::{train, TrainConfig, TrainResult};
use upskill_core::types::{Action, ActionSequence, Dataset};
use upskill_serve::{PolicyConfig, PolicyMode, PredictMode, ServeConfig, SkillService};

/// Small deterministic progression dataset: six users moving from the
/// easy item to the hard one, two skill levels.
fn fixture() -> (Dataset, TrainConfig, TrainResult) {
    let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
    let items = vec![
        vec![FeatureValue::Categorical(0)],
        vec![FeatureValue::Categorical(1)],
    ];
    let sequences: Vec<ActionSequence> = (0..6u32)
        .map(|u| {
            let actions = (0..8)
                .map(|t| Action::new(t, u, u32::from(t >= 4)))
                .collect();
            ActionSequence::new(u, actions).unwrap()
        })
        .collect();
    let dataset = Dataset::new(schema, items, sequences).unwrap();
    let cfg = TrainConfig::new(2).with_min_init_actions(4);
    let result = train(&dataset, &cfg).unwrap();
    (dataset, cfg, result)
}

fn service(
    dataset: &Dataset,
    cfg: TrainConfig,
    result: &TrainResult,
    n_shards: usize,
    policy: RefitPolicy,
) -> Arc<SkillService> {
    Arc::new(
        SkillService::resume(
            dataset.clone(),
            result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig {
                n_shards,
                policy,
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    )
}

/// An adaptive-policy variant of [`service`]: hybrid policy enabled and
/// a wide difficulty band so policy reads always have candidates.
fn adaptive_service(
    dataset: &Dataset,
    cfg: TrainConfig,
    result: &TrainResult,
    n_shards: usize,
    policy: RefitPolicy,
) -> Arc<SkillService> {
    Arc::new(
        SkillService::resume(
            dataset.clone(),
            result,
            cfg,
            ParallelConfig::sequential(),
            ServeConfig {
                n_shards,
                policy,
                recommend: RecommendConfig {
                    lower_slack: 10.0,
                    upper_slack: 10.0,
                    ..RecommendConfig::default()
                },
                adaptive: Some(PolicyConfig::hybrid()),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    )
}

/// Two base users whose state lives on different shards, so concurrent
/// per-user traffic contends only where the protocol says it may.
fn distinct_shard_pair(svc: &SkillService, users: &[u32]) -> (u32, u32) {
    for (i, &a) in users.iter().enumerate() {
        for &b in &users[i + 1..] {
            if svc.shard_index(a) != svc.shard_index(b) {
                return (a, b);
            }
        }
    }
    panic!("no distinct-shard user pair among {users:?}");
}

// THE acceptance test: two threads, each one ingest + one committed
// prediction on its own user. Each thread passes 5 schedule points
// (start gate, shard lock, global lock in ingest, global lock in the
// policy check, shard lock in predict), so with distinct shards the
// full interleaving space is C(10,5) = 252 schedules — comfortably
// covering every interleaving of 2 threads with up to 4 critical
// sections each (C(8,4) = 70). Every schedule must end bit-identically
// to the serial reference: same committed levels, same snapshot JSON.
#[test]
fn two_thread_ingest_predict_is_serializable_across_all_interleavings() {
    let (dataset, cfg, result) = fixture();
    let users: Vec<u32> = (0..6).collect();
    let probe = service(&dataset, cfg, &result, 4, RefitPolicy::Manual);
    let (u0, u1) = distinct_shard_pair(&probe, &users);
    let a0 = Action::new(100, u0, 1);
    let a1 = Action::new(100, u1, 0);

    // Serial reference; Manual policy + disjoint users makes the final
    // state order-independent, so one reference covers every schedule.
    let reference = service(&dataset, cfg, &result, 4, RefitPolicy::Manual);
    reference.ingest(a0).unwrap();
    reference.ingest(a1).unwrap();
    let expect0 = reference.predict(u0, PredictMode::Committed).unwrap().level;
    let expect1 = reference.predict(u1, PredictMode::Committed).unwrap().level;
    let expect_json = reference.snapshot("sync").unwrap().to_json().unwrap();

    let exploration = Explorer::exhaustive(4096).explore(|run| {
        let svc = service(&dataset, cfg, &result, 4, RefitPolicy::Manual);
        let (s0, s1) = (Arc::clone(&svc), Arc::clone(&svc));
        run.thread(move || {
            s0.ingest(a0).unwrap();
            let p = s0.predict(u0, PredictMode::Committed).unwrap();
            assert_eq!(p.level, expect0);
        });
        run.thread(move || {
            s1.ingest(a1).unwrap();
            let p = s1.predict(u1, PredictMode::Committed).unwrap();
            assert_eq!(p.level, expect1);
        });
        run.join();
        // Bitwise serialized equivalence, per explored schedule.
        let json = svc.snapshot("sync").unwrap().to_json().unwrap();
        assert_eq!(
            json, expect_json,
            "schedule reached a non-serializable state"
        );
    });

    assert!(
        exploration.exhausted,
        "interleaving tree not fully enumerated"
    );
    assert!(
        exploration.schedules >= 70,
        "expected to cover at least the C(8,4)=70 interleavings, got {}",
        exploration.schedules
    );
    assert!(
        exploration.violations.is_empty(),
        "lock-discipline violations:\n{}",
        exploration
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Each schedule records at least both threads' acquire/release
    // traffic (4 acquisitions + 4 releases + 2 epoch loads per thread).
    assert!(exploration.events >= exploration.schedules * 8);
}

fn inverted_order(run: &mut Run) {
    let global = Arc::new(TracedMutex::new(LockId::Global, 0u64));
    let shard = Arc::new(TracedMutex::new(LockId::Shard(0), 0u64));
    run.thread(move || {
        let g = global.lock();
        let s = shard.lock(); // protocol inversion: shard under global
        drop(s);
        drop(g);
    });
    run.join();
}

// A seeded protocol inversion — the runtime twin of the analyzer's
// `lock-order` rule (the same shape is seeded lexically in
// `crates/xtask/fixtures/bad/crates/serve/src/service.rs`). The harness
// must flag it under the same rule id and hand back a schedule that
// reproduces it exactly.
#[test]
fn inverted_acquisition_is_caught_with_replayable_schedule() {
    let exploration = Explorer::exhaustive(64).explore(inverted_order);
    let v = exploration
        .violations
        .iter()
        .find(|v| v.rule == "lock-order")
        .expect("inverted acquisition not caught");
    // The violation prints its replayable schedule seed.
    let rendered = v.to_string();
    println!("caught: {rendered}");
    assert!(rendered.contains("seed="), "no replay seed in: {rendered}");
    assert!(
        rendered.contains("choices="),
        "no choice trace in: {rendered}"
    );

    let replay = Explorer::exhaustive(1).replay(&v.schedule, inverted_order);
    assert_eq!(replay.schedules, 1);
    assert!(
        replay.violations.iter().any(|r| r.rule == "lock-order"),
        "replayed schedule did not reproduce the violation"
    );
}

// Seeded-random smoke over the full request mix — ingest bursts that
// trigger a refit (epoch publish under the global lock, which is
// legal), a pooled-workspace posterior prediction, recommendations,
// and the stop-the-world snapshot — across three threads. CI runs the
// default budget; UPSKILL_SYNC_SCHEDULES=256 (or more) deepens the
// exploration without a code change.
#[test]
fn mixed_workload_random_exploration_is_clean() {
    let (dataset, cfg, result) = fixture();
    let users: Vec<u32> = (0..6).collect();
    let policy = RefitPolicy::EveryNActions(2);
    let probe = service(&dataset, cfg, &result, 3, policy);
    let (u0, u1) = distinct_shard_pair(&probe, &users);
    let budget = Explorer::budget_from_env("UPSKILL_SYNC_SCHEDULES", 24);

    let exploration = Explorer::random(0x5EED_CAFE, budget).explore(|run| {
        let svc = service(&dataset, cfg, &result, 3, policy);
        let (s0, s1, s2) = (Arc::clone(&svc), Arc::clone(&svc), Arc::clone(&svc));
        run.thread(move || {
            s0.ingest(Action::new(100, u0, 1)).unwrap();
            // Second action crosses the EveryNActions(2) threshold: the
            // refit publishes a fresh epoch while holding only global.
            s0.ingest(Action::new(101, u0, 1)).unwrap();
        });
        run.thread(move || {
            let p = s1.predict(u1, PredictMode::Posterior).unwrap();
            assert!(p.level >= 1);
            let recs = s1.recommend(u1, Some(2)).unwrap();
            assert!(recs.len() <= 2);
        });
        run.thread(move || {
            let bundle = s2.snapshot("mixed").unwrap();
            assert!(!bundle.to_json().unwrap().is_empty());
        });
        run.join();
    });

    assert_eq!(exploration.schedules, budget);
    assert!(
        exploration.violations.is_empty(),
        "lock-discipline violations:\n{}",
        exploration
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(exploration.events > 0);
}

// Adaptive policy reads racing an epoch swap: one thread's ingest burst
// crosses the EveryNActions(2) threshold and publishes a fresh epoch
// while a second thread re-ranks another user's band and a third
// records a failed outcome. A policy read never blocks on the refit, so
// under every explored schedule it must observe exactly one of the two
// epoch states — its output serialized against the swap, byte-equal to
// the pre-refit or post-refit reference — and once the writer joins,
// the service must sit exactly on the post-refit state. The schedules
// budget is the same `UPSKILL_SYNC_SCHEDULES` CI knob as the mixed
// workload above.
#[test]
fn policy_reads_racing_an_epoch_swap_are_serializable() {
    let (dataset, cfg, result) = fixture();
    let users: Vec<u32> = (0..6).collect();
    let policy = RefitPolicy::EveryNActions(2);
    let probe = adaptive_service(&dataset, cfg, &result, 3, policy);
    let (u0, u1) = distinct_shard_pair(&probe, &users);
    let budget = Explorer::budget_from_env("UPSKILL_SYNC_SCHEDULES", 24);

    let ranked_json = |svc: &SkillService| {
        serde_json::to_string(
            &svc.recommend_policy(u1, Some(2), PolicyMode::Hybrid)
                .unwrap(),
        )
        .unwrap()
    };
    // Serial references. `u1` is untouched by the traffic, so its
    // policy ranking depends only on the published epoch: `pre` is the
    // resume-time epoch, `post` the one the writer's second ingest
    // publishes. The recorded outcome lives in `u0`'s policy state and
    // must not leak into `u1`'s ranking.
    let pre = ranked_json(&probe);
    let reference = adaptive_service(&dataset, cfg, &result, 3, policy);
    reference.ingest(Action::new(100, u0, 1)).unwrap();
    reference.ingest(Action::new(101, u0, 1)).unwrap();
    reference.record_outcome(u0, 0, false).unwrap();
    let post = ranked_json(&reference);

    let exploration = Explorer::random(0xCA11_B4CC, budget).explore(|run| {
        let svc = adaptive_service(&dataset, cfg, &result, 3, policy);
        let (s0, s1, s2) = (Arc::clone(&svc), Arc::clone(&svc), Arc::clone(&svc));
        let (pre, post) = (pre.clone(), post.clone());
        run.thread(move || {
            s0.ingest(Action::new(100, u0, 1)).unwrap();
            // Crosses the threshold: refit + epoch publish under the
            // global lock only.
            s0.ingest(Action::new(101, u0, 1)).unwrap();
        });
        let post_for_reader = post.clone();
        run.thread(move || {
            let post = post_for_reader;
            let json = serde_json::to_string(
                &s1.recommend_policy(u1, Some(2), PolicyMode::Hybrid)
                    .unwrap(),
            )
            .unwrap();
            assert!(
                json == pre || json == post,
                "policy read saw a state that is neither pre- nor post-refit"
            );
        });
        run.thread(move || {
            // Failure evidence for the *writer's* user: contends on
            // u0's shard and the epoch difficulty, never on u1's rank.
            s2.record_outcome(u0, 0, false).unwrap();
        });
        run.join();
        assert_eq!(
            ranked_json(&svc),
            post,
            "joined state is not the serialized post-refit reference"
        );
    });

    assert_eq!(exploration.schedules, budget);
    assert!(
        exploration.violations.is_empty(),
        "lock-discipline violations:\n{}",
        exploration
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(exploration.events > 0);
}
