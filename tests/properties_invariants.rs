//! Property-based tests for the runtime invariant layer: hand-corrupted
//! state — non-monotone assignment paths and serde-tampered model
//! parameters that poison the emission table — must be rejected at the
//! public entry points when invariant checks are compiled in (debug
//! builds and the `strict-invariants` feature).
//!
//! JSON cannot express NaN, so the poison route goes through a legal
//! serde bypass: a gamma cell's `scale` replaced with `-0.0`, which
//! turns `-x / scale` into `+inf` for every positive observation. `+inf`
//! emissions are exactly what [`InvariantCtx::check_emission_table`]
//! exists to catch before a DP consumes them.

use proptest::prelude::*;
use upskill_core::em::{train_em_with_parallelism, EmConfig};
use upskill_core::emission::EmissionTable;
use upskill_core::error::CoreError;
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::invariants::InvariantCtx;
use upskill_core::parallel::ParallelConfig;
use upskill_core::streaming::{RefitPolicy, StreamingSession};
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::transition::TransitionModel;
use upskill_core::types::{Action, ActionSequence, Dataset};

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

const CARDINALITY: u32 = 4;

/// Schema variants: categorical always present, the other kinds toggled
/// by `mask` bits (mask 7 = the full mixed schema).
fn masked_schema(mask: u8) -> FeatureSchema {
    let mut kinds = vec![FeatureKind::Categorical {
        cardinality: CARDINALITY,
    }];
    if mask & 1 != 0 {
        kinds.push(FeatureKind::Count);
    }
    if mask & 2 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
    }
    if mask & 4 != 0 {
        kinds.push(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
    }
    FeatureSchema::new(kinds).unwrap()
}

fn item_values(schema: &FeatureSchema, draw: &ItemDraw) -> Vec<FeatureValue> {
    let &(cat, count, real_a, real_b) = draw;
    schema
        .kinds()
        .iter()
        .map(|kind| match kind {
            FeatureKind::Categorical { .. } => FeatureValue::Categorical(cat % CARDINALITY),
            FeatureKind::Count => FeatureValue::Count(count),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => FeatureValue::Real(real_a),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => FeatureValue::Real(real_b),
        })
        .collect()
}

fn build_dataset(schema: FeatureSchema, item_draws: &[ItemDraw], users: &[Vec<usize>]) -> Dataset {
    let items: Vec<Vec<FeatureValue>> =
        item_draws.iter().map(|d| item_values(&schema, d)).collect();
    let sequences: Vec<ActionSequence> = users
        .iter()
        .enumerate()
        .map(|(u, picks)| {
            let actions: Vec<Action> = picks
                .iter()
                .enumerate()
                .map(|(t, &raw)| Action::new(t as i64, u as u32, (raw % item_draws.len()) as u32))
                .collect();
            ActionSequence::new(u as u32, actions).unwrap()
        })
        .collect();
    Dataset::new(schema, items, sequences).unwrap()
}

fn users_strategy(max_users: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..1000, 2..max_len),
        1..max_users,
    )
}

/// Replaces every serialized `"scale":<number>` with `"scale":-0.0`.
///
/// `-0.0` is representable in JSON (NaN is not) but still poisons the
/// gamma density: `-x / -0.0` is `+inf` for every `x > 0`.
fn tamper_scale(json: &str) -> String {
    const KEY: &str = "\"scale\":";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(at) = rest.find(KEY) {
        let value_start = at + KEY.len();
        let tail = &rest[value_start..];
        let value_len = tail
            .find(|c: char| !matches!(c, '0'..='9' | '+' | '-' | '.' | 'e' | 'E'))
            .unwrap_or(tail.len());
        out.push_str(&rest[..value_start]);
        out.push_str("-0.0");
        rest = &tail[value_len..];
    }
    out.push_str(rest);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Corrupting a trained session's assignments so one user's committed
    // path decreases must be caught both by the invariant check itself
    // and by `StreamingSession::new`, which refuses to seed from a
    // non-monotone path.
    #[test]
    fn corrupted_non_monotone_session_is_rejected(
        mask in 0u8..8,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..8),
        users in users_strategy(4, 10),
        n_levels in 2usize..4,
    ) {
        let ds = build_dataset(masked_schema(mask), &item_draws, &users);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(6);
        let pc = ParallelConfig::sequential();
        let result = train_with_parallelism(&ds, &cfg, &pc).unwrap();

        let mut corrupted = result.assignments.clone();
        let seq = &mut corrupted.per_user[0];
        prop_assume!(seq.len() >= 2);
        seq[0] = n_levels as u8;
        let last = seq.len() - 1;
        seq[last] = 1;
        prop_assert!(!corrupted.is_monotone());

        if upskill_core::invariants::ENABLED {
            let err = InvariantCtx::new()
                .check_monotone("test-corruption", &corrupted)
                .unwrap_err();
            prop_assert!(
                matches!(err, CoreError::InvariantViolation { .. }),
                "expected InvariantViolation, got {err:?}"
            );
        }

        let rejected = StreamingSession::new(
            ds,
            corrupted,
            cfg,
            pc,
            RefitPolicy::EveryBatch,
        );
        prop_assert!(rejected.is_err(), "non-monotone seed must be rejected");
    }

    // A model whose gamma `scale` was tampered through the serde bypass
    // fills the emission table with `+inf`; both the direct table check
    // and the EM entry point (which builds a table from the caller's
    // initial model before iterating) must reject it.
    #[test]
    fn serde_tampered_model_poisons_table_and_is_rejected(
        mask in 0u8..4,
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..6),
        users in users_strategy(4, 8),
        n_levels in 2usize..4,
    ) {
        // Force a gamma column so `"scale"` exists in the serialized form.
        let ds = build_dataset(masked_schema(mask | 2), &item_draws, &users);
        let cfg = TrainConfig::new(n_levels)
            .with_min_init_actions(1)
            .with_max_iterations(4);
        let pc = ParallelConfig::sequential();
        let result = train_with_parallelism(&ds, &cfg, &pc).unwrap();

        let json = serde_json::to_string(&result.model).unwrap();
        let tampered = tamper_scale(&json);
        prop_assert!(tampered.contains("\"scale\":-0.0"), "tamper must hit a gamma cell");
        let bad: upskill_core::model::SkillModel = serde_json::from_str(&tampered).unwrap();

        let table = EmissionTable::build(&bad, &ds);
        let direct = InvariantCtx::new().check_emission_table(&table);
        let em_cfg = EmConfig::new(bad, TransitionModel::uninformative(n_levels).unwrap())
            .with_max_iterations(2);
        let em = train_em_with_parallelism(&ds, &em_cfg, &pc);

        if upskill_core::invariants::ENABLED {
            prop_assert!(
                matches!(direct, Err(CoreError::InvariantViolation { .. })),
                "poisoned table must fail the direct check, got {direct:?}"
            );
            prop_assert!(em.is_err(), "EM from a poisoned initial model must be rejected");
        }
    }
}

/// Deterministic serde-bypass check: a dataset whose JSON was edited to
/// hold a negative `Real` feature deserializes fine (derive `Deserialize`
/// skips the constructor) but fails [`Dataset::validate`].
#[test]
fn dataset_validate_rejects_json_tampered_real_feature() {
    let schema = FeatureSchema::new(vec![
        FeatureKind::Categorical { cardinality: 2 },
        FeatureKind::Positive {
            model: PositiveModel::Gamma,
        },
    ])
    .unwrap();
    let items = vec![
        vec![FeatureValue::Categorical(0), FeatureValue::Real(1.5)],
        vec![FeatureValue::Categorical(1), FeatureValue::Real(2.5)],
    ];
    let sequences =
        vec![ActionSequence::new(0, vec![Action::new(0, 0, 0), Action::new(1, 0, 1)]).unwrap()];
    let ds = Dataset::new(schema, items, sequences).unwrap();
    assert!(ds.validate().is_ok());

    let json = serde_json::to_string(&ds).unwrap();
    let tampered = json.replace("{\"Real\":1.5}", "{\"Real\":-1.5}");
    assert_ne!(json, tampered, "tamper must rewrite the serialized feature");
    let bad: Dataset = serde_json::from_str(&tampered).unwrap();

    let err = bad.validate().unwrap_err();
    assert!(
        matches!(err, CoreError::InvalidFeatureValue { .. }),
        "expected InvalidFeatureValue, got {err:?}"
    );
}
