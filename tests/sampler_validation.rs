//! Statistical validation of the dataset simulators' samplers using the
//! goodness-of-fit machinery: the gamma/Poisson/categorical samplers must
//! actually produce the distributions the generators configure, and the
//! fitted model distributions must pass a GOF test against fresh samples.

use rand::rngs::StdRng;
use rand::SeedableRng;
use upskill_core::dist::{special::ln_gamma, Gamma, Poisson};
use upskill_datasets::sampling::{sample_categorical, sample_gamma, sample_poisson};
use upskill_eval::{chi_square_gof, ks_statistic};

#[test]
fn categorical_sampler_passes_chi_square() {
    let mut rng = StdRng::seed_from_u64(101);
    let weights = [2.0, 5.0, 1.0, 2.0];
    let probs: Vec<f64> = weights.iter().map(|w| w / 10.0).collect();
    let mut counts = [0u64; 4];
    for _ in 0..20_000 {
        counts[sample_categorical(&mut rng, &weights)] += 1;
    }
    let r = chi_square_gof(&counts, &probs).expect("test");
    assert!(r.p_value > 0.001, "sampler failed GOF: {r:?}");
}

#[test]
fn poisson_sampler_matches_poisson_pmf() {
    let mut rng = StdRng::seed_from_u64(102);
    let mean = 6.0;
    let dist = Poisson::new(mean).expect("poisson");
    let max_k = 25usize;
    let mut counts = vec![0u64; max_k + 1];
    for _ in 0..30_000 {
        let k = sample_poisson(&mut rng, mean) as usize;
        counts[k.min(max_k)] += 1;
    }
    // Expected probabilities with the tail folded into the last bucket.
    let mut probs: Vec<f64> = (0..max_k).map(|k| dist.pmf(k as u64)).collect();
    let tail = 1.0 - probs.iter().sum::<f64>();
    probs.push(tail.max(0.0));
    let total: f64 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= total;
    }
    let r = chi_square_gof(&counts, &probs).expect("test");
    assert!(r.p_value > 0.001, "Poisson sampler failed GOF: {r:?}");
}

/// Regularized lower incomplete gamma via series/continued fraction —
/// enough accuracy for a KS test CDF.
fn gamma_cdf(shape: f64, scale: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let a = shape;
    let x = x / scale;
    if x < a + 1.0 {
        // Series expansion.
        let mut sum = 1.0 / a;
        let mut term = sum;
        for n in 1..500 {
            term *= x / (a + n as f64);
            sum += term;
            if term.abs() < sum.abs() * 1e-12 {
                break;
            }
        }
        (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for the upper tail (Lentz).
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-12 {
                break;
            }
        }
        let upper = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - upper).clamp(0.0, 1.0)
    }
}

#[test]
fn gamma_sampler_passes_ks_test() {
    let mut rng = StdRng::seed_from_u64(103);
    let (shape, scale) = (3.5, 1.8);
    let samples: Vec<f64> = (0..4_000)
        .map(|_| sample_gamma(&mut rng, shape, scale))
        .collect();
    let (d, p) = ks_statistic(&samples, |x| gamma_cdf(shape, scale, x)).expect("ks");
    assert!(p > 0.001, "gamma sampler failed KS: D = {d}, p = {p}");
}

#[test]
fn fitted_gamma_passes_ks_against_fresh_samples() {
    // Fit on one sample, test on an independent one — validates both the
    // sampler and the MLE jointly.
    let mut rng = StdRng::seed_from_u64(104);
    let (shape, scale) = (2.2, 0.9);
    let train: Vec<f64> = (0..8_000)
        .map(|_| sample_gamma(&mut rng, shape, scale))
        .collect();
    let fitted = Gamma::fit(&train).expect("fit");
    let test: Vec<f64> = (0..3_000)
        .map(|_| sample_gamma(&mut rng, shape, scale))
        .collect();
    let (d, p) = ks_statistic(&test, |x| gamma_cdf(fitted.shape(), fitted.scale(), x)).expect("ks");
    assert!(p > 0.001, "fitted gamma failed KS: D = {d}, p = {p}");
}

#[test]
fn gamma_cdf_reference_values() {
    // Exponential special case: CDF(x) = 1 − e^{−x}.
    for &x in &[0.5f64, 1.0, 3.0] {
        let want = 1.0 - (-x).exp();
        let got = gamma_cdf(1.0, 1.0, x);
        assert!((got - want).abs() < 1e-9, "x={x}: {got} vs {want}");
    }
    // Erlang(2): CDF(x) = 1 − e^{−x}(1 + x).
    for &x in &[0.5f64, 2.0, 6.0] {
        let want = 1.0 - (-x).exp() * (1.0 + x);
        let got = gamma_cdf(2.0, 1.0, x);
        assert!((got - want).abs() < 1e-9, "x={x}: {got} vs {want}");
    }
}
