//! Property-based tests for the shared emission table: across random
//! schemas mixing categorical, count, and continuous (gamma + log-normal)
//! features, the table-backed assignment and difficulty paths must agree
//! with direct per-action evaluation, the columnar and parallel fills
//! must agree with the scalar fill **bitwise**, and the f32 storage must
//! stay within its documented half-ulp rounding bound.

use proptest::prelude::*;
use upskill_core::assign::{
    assign_all_direct, assign_all_with_table, assign_sequence, assign_sequence_with_table,
};
use upskill_core::difficulty::{generation_difficulty, generation_difficulty_all, SkillPrior};
use upskill_core::dist::{Categorical, FeatureDistribution, Gamma, LogNormal, Poisson};
use upskill_core::emission::{CompactEmissionTable, EmissionTable};
use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue, PositiveModel};
use upskill_core::model::SkillModel;
use upskill_core::types::{Action, ActionSequence, Dataset};

/// Per-level parameters for a 4-feature mixed schema:
/// (categorical weights, poisson rate, (gamma shape, scale), (lognormal mu, sigma)).
type LevelParams = (Vec<f64>, f64, (f64, f64), (f64, f64));

/// Raw item feature draws: (category, count, gamma value, lognormal value).
type ItemDraw = (u32, u64, f64, f64);

const CARDINALITY: u32 = 4;

fn mixed_model(params: &[LevelParams]) -> SkillModel {
    let schema = FeatureSchema::new(vec![
        FeatureKind::Categorical {
            cardinality: CARDINALITY,
        },
        FeatureKind::Count,
        FeatureKind::Positive {
            model: PositiveModel::Gamma,
        },
        FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        },
    ])
    .unwrap();
    let cells = params
        .iter()
        .map(|(weights, rate, (shape, scale), (mu, sigma))| {
            let total: f64 = weights.iter().sum();
            let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
            vec![
                FeatureDistribution::Categorical(Categorical::from_probs(probs).unwrap()),
                FeatureDistribution::Poisson(Poisson::new(*rate).unwrap()),
                FeatureDistribution::Gamma(Gamma::new(*shape, *scale).unwrap()),
                FeatureDistribution::LogNormal(LogNormal::new(*mu, *sigma).unwrap()),
            ]
        })
        .collect();
    SkillModel::new(schema, params.len(), cells).unwrap()
}

fn mixed_dataset(item_draws: &[ItemDraw], picks: &[usize]) -> Dataset {
    let schema = FeatureSchema::new(vec![
        FeatureKind::Categorical {
            cardinality: CARDINALITY,
        },
        FeatureKind::Count,
        FeatureKind::Positive {
            model: PositiveModel::Gamma,
        },
        FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        },
    ])
    .unwrap();
    let items: Vec<Vec<FeatureValue>> = item_draws
        .iter()
        .map(|&(cat, count, real_a, real_b)| {
            vec![
                FeatureValue::Categorical(cat % CARDINALITY),
                FeatureValue::Count(count),
                FeatureValue::Real(real_a),
                FeatureValue::Real(real_b),
            ]
        })
        .collect();
    let actions: Vec<Action> = picks
        .iter()
        .enumerate()
        .map(|(t, &raw)| Action::new(t as i64, 0, (raw % item_draws.len()) as u32))
        .collect();
    let seq = ActionSequence::new(0, actions).unwrap();
    Dataset::new(schema, items, vec![seq]).unwrap()
}

fn level_params_strategy(n_levels: usize) -> impl Strategy<Value = Vec<LevelParams>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0.05f64..5.0, CARDINALITY as usize),
            0.2f64..20.0,
            (0.5f64..8.0, 0.2f64..5.0),
            (-1.0f64..2.0, 0.2f64..2.0),
        ),
        n_levels,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_assignment_matches_direct_on_mixed_schemas(
        params in level_params_strategy(3),
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..12),
        picks in proptest::collection::vec(0usize..1000, 1..25),
    ) {
        let model = mixed_model(&params);
        let ds = mixed_dataset(&item_draws, &picks);
        let seq = &ds.sequences()[0];
        let direct = assign_sequence(&model, &ds, seq).unwrap();
        let table = EmissionTable::build(&model, &ds);
        let cached = assign_sequence_with_table(&table, seq).unwrap();
        prop_assert_eq!(&direct.levels, &cached.levels);
        prop_assert!(
            (direct.log_likelihood - cached.log_likelihood).abs() <= 1e-12,
            "ll {} vs {}", direct.log_likelihood, cached.log_likelihood
        );

        // The dataset-level wrappers agree as well (assignments + objective).
        let (a_direct, ll_direct) = assign_all_direct(&model, &ds).unwrap();
        let (a_cached, ll_cached) = assign_all_with_table(&table, &ds).unwrap();
        prop_assert_eq!(a_direct, a_cached);
        prop_assert!((ll_direct - ll_cached).abs() <= 1e-12);
    }

    #[test]
    fn table_rows_are_exact_model_emissions(
        params in level_params_strategy(4),
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 1..10),
    ) {
        let model = mixed_model(&params);
        let ds = mixed_dataset(&item_draws, &[0]);
        let table = EmissionTable::build(&model, &ds);
        prop_assert_eq!(table.n_items(), ds.n_items());
        prop_assert_eq!(table.n_levels(), model.n_levels());
        for item in 0..ds.n_items() {
            let features = ds.item_features(item as u32);
            for s in 1..=model.n_levels() {
                let expected = model.item_log_likelihood(features, s as u8);
                prop_assert_eq!(table.log_likelihood(item as u32, s as u8), expected);
            }
        }
    }

    // The columnar batch-kernel fill and the parallel direct-write fill
    // both reproduce the scalar cell-by-cell fill bit for bit: batch
    // kernels hoist level-constant terms but keep the per-cell operation
    // order, and workers write disjoint slices of the same layout.
    #[test]
    fn columnar_and_parallel_fills_match_scalar_bitwise(
        params in level_params_strategy(4),
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 1..12),
        threads in 2usize..5,
    ) {
        let model = mixed_model(&params);
        let ds = mixed_dataset(&item_draws, &[0]);
        let scalar = EmissionTable::build_scalar(&model, &ds);
        let columnar = EmissionTable::build(&model, &ds);
        let parallel = EmissionTable::build_parallel(&model, &ds, threads).unwrap();
        for item in 0..ds.n_items() as u32 {
            for (s, (&reference, (&col, &par))) in scalar
                .row(item)
                .iter()
                .zip(columnar.row(item).iter().zip(parallel.row(item)))
                .enumerate()
            {
                prop_assert!(
                    reference.to_bits() == col.to_bits(),
                    "columnar cell ({}, {}) diverged: {} vs {}",
                    item, s, reference, col
                );
                prop_assert!(
                    reference.to_bits() == par.to_bits(),
                    "parallel cell ({}, {}) diverged: {} vs {}",
                    item, s, reference, par
                );
            }
        }
    }

    // The f32 storage deviates from the f64 table by at most the one
    // documented round-to-nearest step: half an f32 ulp (~6e-8 relative)
    // per cell, with non-finite scores preserved exactly.
    #[test]
    fn compact_table_stays_within_documented_f32_bound(
        params in level_params_strategy(3),
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 1..10),
    ) {
        let model = mixed_model(&params);
        let ds = mixed_dataset(&item_draws, &[0]);
        let full = EmissionTable::build(&model, &ds);
        let compact = CompactEmissionTable::build(&model, &ds);
        // Direct build and rounding an existing table are the same thing.
        prop_assert_eq!(&compact, &CompactEmissionTable::from_table(&full));
        let half_ulp = 0.5 * f32::EPSILON as f64;
        for item in 0..ds.n_items() as u32 {
            for s in 1..=full.n_levels() as u8 {
                let exact = full.log_likelihood(item, s);
                let stored = compact.log_likelihood(item, s);
                if exact.is_finite() {
                    // Relative half-ulp bound; the absolute term covers
                    // scores in the f32 subnormal range around zero.
                    prop_assert!(
                        (stored - exact).abs() <= half_ulp * exact.abs() + 1e-37,
                        "cell ({}, {}): {} stored as {}", item, s, exact, stored
                    );
                } else {
                    prop_assert!(
                        stored.to_bits() == exact.to_bits(),
                        "non-finite cell ({}, {}): {} stored as {}",
                        item, s, exact, stored
                    );
                }
            }
        }
    }

    #[test]
    fn table_difficulty_matches_direct_posterior(
        params in level_params_strategy(3),
        item_draws in proptest::collection::vec(
            (0u32..8, 0u64..20, 0.1f64..10.0, 0.1f64..10.0), 2..10),
        picks in proptest::collection::vec(0usize..1000, 1..15),
    ) {
        let model = mixed_model(&params);
        let ds = mixed_dataset(&item_draws, &picks);
        // generation_difficulty_all goes through the shared table; compare
        // against the per-item posterior computed directly from the model.
        let all = generation_difficulty_all(&model, &ds, SkillPrior::Uniform, None).unwrap();
        prop_assert_eq!(all.len(), ds.n_items());
        for (item, &via_table) in all.iter().enumerate() {
            let direct = generation_difficulty(
                &model,
                ds.item_features(item as u32),
                SkillPrior::Uniform,
                None,
            )
            .unwrap();
            prop_assert!(
                (via_table - direct).abs() <= 1e-12,
                "item {}: {} vs {}", item, via_table, direct
            );
            prop_assert!((1.0..=params.len() as f64).contains(&via_table));
        }
    }
}
