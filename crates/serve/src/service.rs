//! The concurrent multi-tenant serving front-end.
//!
//! # Architecture
//!
//! A [`SkillService`] splits the state a [`StreamingSession`](upskill_core::streaming::StreamingSession) keeps in one
//! place into three concurrency domains, chosen so the hot read path
//! (predict, recommend) never waits on a refit:
//!
//! - **Per-user state** (action history, committed level path, filtering
//!   tracker) lives in `N` *shards*, each behind its own mutex. A user's
//!   shard is a stable hash of their id, so two requests contend only
//!   when they touch users that hash together.
//! - **Model-fitting state** (the statistics grid, the current
//!   [`SkillModel`], refit policy and counters) lives behind one *global*
//!   mutex that only ingestion and refits ever take.
//! - **The read-mostly model** (the [`EmissionTable`] plus the per-item
//!   difficulty vector) lives in an [`EpochCell`]: readers clone an `Arc`
//!   to the current epoch and compute against it lock-free; a refit
//!   builds the replacement table *off to the side* (cloning the current
//!   one and refreshing only dirty columns) and publishes it atomically.
//!   A prediction in flight keeps its epoch alive through the `Arc` even
//!   if a refit publishes mid-request.
//!
//! Lock order is `shard (ascending index) → global`; refits take only the
//! global lock; reads take only their one shard. No code path acquires
//! locks against that order, so the service cannot deadlock.
//!
//! # Bitwise equivalence with a single-owner session
//!
//! Driven single-threaded, a service is *bit-for-bit* the same model as a
//! [`StreamingSession`](upskill_core::streaming::StreamingSession) fed the identical traffic (see
//! `tests/properties_serve.rs`): the level-commitment rule, the `+1`
//! statistics deltas, the dirty-level refit, and the [`RefitTuner`]
//! adjustment are all replicated exactly, and the refit paths
//! ([`StatsGrid::fit_model_incremental`],
//! [`EmissionTable::refresh_levels`]) read only the feature *catalog*
//! (schema + item tuples), never the sequences — which is why the service
//! can refit against a sequence-less catalog dataset while the histories
//! live sharded.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use upskill_core::assign::{assign_items_with_table_ws, AssignWorkspace};
use upskill_core::bundle::{SessionBundle, SESSION_BUNDLE_VERSION};
use upskill_core::em::FbWorkspace;
use upskill_core::emission::EmissionTable;
use upskill_core::epoch::EpochCell;
use upskill_core::error::CoreError;
use upskill_core::incremental::StatsGrid;
use upskill_core::invariants::InvariantCtx;
use upskill_core::model::SkillModel;
use upskill_core::online::OnlineTracker;
use upskill_core::parallel::ParallelConfig;
use upskill_core::policy::{
    rerank_band, PolicyConfig, PolicyMode, PolicyRecommendation, PolicyState,
};
use upskill_core::pool::WorkspacePool;
use upskill_core::recommend::{
    build_level_band, recommend_from_band, LevelBand, RecommendConfig, Recommendation,
};
use upskill_core::streaming::{RefitPolicy, RefitTuner};
use upskill_core::sync::{LockId, TracedMutex};
use upskill_core::train::{TrainConfig, TrainResult};
use upskill_core::transition::TransitionModel;
use upskill_core::types::{
    skill_level_from_index, Action, ActionSequence, Dataset, ItemId, SkillAssignments, SkillLevel,
    UserId,
};

use crate::api::{
    IngestOutcome, OutcomeNoted, PredictMode, Prediction, Request, Response, ServeStats,
};
use crate::error::{Result, ServeError};

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// How many mutex-guarded session shards user state spreads over.
    /// More shards means less contention between users that act
    /// concurrently; one shard serializes everything (useful in tests).
    pub n_shards: usize,
    /// When ingestion triggers a dirty-level refit.
    pub policy: RefitPolicy,
    /// Optional auto-tuner adjusting an [`RefitPolicy::EveryNActions`]
    /// interval after every refit (see [`RefitTuner`]).
    pub tuner: Option<RefitTuner>,
    /// Scoring configuration for recommendation requests.
    pub recommend: RecommendConfig,
    /// Adaptive policy layer (teach/motivate/hybrid re-ranking over
    /// the cached bands). `None` serves the static recommender only;
    /// `Some` additionally tracks per-user [`PolicyState`] and answers
    /// [`Request::RecommendPolicy`] / [`Request::RecordOutcome`].
    pub adaptive: Option<PolicyConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            n_shards: 8,
            policy: RefitPolicy::EveryNActions(256),
            tuner: None,
            recommend: RecommendConfig::default(),
            adaptive: None,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_shards == 0 {
            return Err(ServeError::InvalidConfig {
                what: "n_shards",
                detail: "need at least one shard",
            });
        }
        self.recommend.validate()?;
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }
        Ok(())
    }
}

/// One published model generation: the emission table every read and
/// level commitment scores against, plus the per-item generation
/// difficulty (Eq. 9) derived from it under the service's empirical
/// level prior. Immutable once published; replaced wholesale by refits.
///
/// Each epoch also lazily caches one recommendation [`LevelBand`] per
/// skill level — the full-catalog difficulty/interest scan is paid once
/// per `(epoch, level)` and every [`SkillService::recommend`] call at
/// that level filters the cached candidates instead of rescanning,
/// with bitwise-identical output (see
/// [`recommend_from_band`]).
#[derive(Debug, Clone)]
pub struct ModelEpoch {
    table: EmissionTable,
    difficulty: Vec<f64>,
    /// `bands[s - 1]` caches the level-`s` band; built on first use.
    bands: Vec<OnceLock<LevelBand>>,
}

impl ModelEpoch {
    fn new(table: EmissionTable, difficulty: Vec<f64>) -> Self {
        let n_levels = table.n_levels();
        Self {
            table,
            difficulty,
            bands: (0..n_levels).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The emission table of this generation.
    pub fn table(&self) -> &EmissionTable {
        &self.table
    }

    /// Generation difficulty per item under this generation's table.
    pub fn difficulty(&self) -> &[f64] {
        &self.difficulty
    }

    /// The cached recommendation band for `level` (1-based), building it
    /// from this epoch's table and difficulty on first use. A racing
    /// build is benign: both threads derive the identical band from the
    /// same immutable inputs and one result wins.
    pub fn band(&self, level: SkillLevel, config: &RecommendConfig) -> Result<&LevelBand> {
        let cell = self
            .bands
            .get((level as usize).wrapping_sub(1))
            .ok_or(ServeError::Core(CoreError::InvalidSkillCount {
                requested: level as usize,
            }))?;
        if let Some(band) = cell.get() {
            return Ok(band);
        }
        let built = build_level_band(&self.table, &self.difficulty, level, config)
            .map_err(ServeError::Core)?;
        Ok(cell.get_or_init(|| built))
    }
}

/// Band caches are a derived view: epochs compare by table and
/// difficulty alone.
impl PartialEq for ModelEpoch {
    fn eq(&self, other: &Self) -> bool {
        self.table == other.table && self.difficulty == other.difficulty
    }
}

/// Per-user serving state: the full action history, the committed
/// monotone level path, the O(1) filtering tracker, and — on
/// adaptive-policy services — the per-user [`PolicyState`]. Policy
/// state is serving-layer-only: it never enters snapshots, so the
/// bitwise [`SessionBundle`] contract with the streaming session is
/// untouched by enabling the policy layer.
#[derive(Debug)]
struct UserState {
    actions: Vec<Action>,
    levels: Vec<SkillLevel>,
    tracker: OnlineTracker,
    policy: Option<PolicyState>,
}

/// One mutex-guarded slice of the user population.
#[derive(Debug, Default)]
struct Shard {
    users: HashMap<UserId, UserState>,
}

/// Model-fitting state; only ingestion and refits lock this.
#[derive(Debug)]
struct Global {
    grid: StatsGrid,
    model: SkillModel,
    policy: RefitPolicy,
    tuner: Option<RefitTuner>,
    /// Actions ingested since the last refit.
    pending: usize,
    /// Actions ingested over the service's lifetime.
    total_ingested: usize,
    /// Refits that rewrote model state (clean refits don't count).
    refits: u64,
    /// Committed actions per level (1-indexed levels at index `s-1`) —
    /// the running [`SkillAssignments::level_histogram`], maintained
    /// incrementally so refits can rebuild the empirical difficulty
    /// prior without walking the shards.
    level_counts: Vec<usize>,
    /// Every user in admission order: base-dataset users first (dataset
    /// order), then streamed-in users as first seen. This is the
    /// sequence order a single-owner session would have, which is what
    /// makes snapshots comparable bit for bit.
    admission: Vec<UserId>,
}

/// An in-process, thread-safe, multi-tenant serving front-end over a
/// trained upskill model.
///
/// See the [module docs](self) for the concurrency architecture and the
/// bitwise-equivalence contract with [`StreamingSession`](upskill_core::streaming::StreamingSession). All methods
/// take `&self`; the service is `Send + Sync` and meant to be shared
/// across request threads behind an `Arc`.
#[derive(Debug)]
pub struct SkillService {
    shards: Vec<TracedMutex<Shard>>,
    global: TracedMutex<Global>,
    epoch: EpochCell<ModelEpoch>,
    /// Sequence-less dataset (schema + item feature tuples) backing
    /// refits; see the module docs on why sequences never enter refits.
    catalog: Dataset,
    config: TrainConfig,
    parallel: ParallelConfig,
    recommend: RecommendConfig,
    adaptive: Option<PolicyConfig>,
    assign_pool: WorkspacePool<AssignWorkspace>,
    fb_pool: WorkspacePool<FbWorkspace>,
}

/// Stable shard hash (SplitMix64 finalizer): deterministic across runs
/// and processes so traffic replays shard identically.
fn shard_of(user: UserId, n_shards: usize) -> usize {
    let mut x = user as u64 ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) as usize % n_shards
}

/// Index of the maximum value, lowest index on ties — the same
/// first-action tie-break the streaming session uses.
fn argmax_low(row: &[f64]) -> usize {
    let (mut best, mut best_v) = match row.first() {
        Some(&v) => (0, v),
        None => return 0,
    };
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

impl SkillService {
    /// Builds a service from a dataset and its committed assignments —
    /// the serving twin of [`StreamingSession::new`](upskill_core::streaming::StreamingSession::new), producing a
    /// bit-identical initial model, table, trackers, and difficulty.
    pub fn new(
        dataset: Dataset,
        assignments: SkillAssignments,
        config: TrainConfig,
        parallel: ParallelConfig,
        serve: ServeConfig,
    ) -> Result<Self> {
        serve.validate()?;
        config.validate().map_err(ServeError::Core)?;
        parallel.validate().map_err(ServeError::Core)?;
        if !assignments.is_monotone() {
            return Err(ServeError::Core(CoreError::DegenerateFit {
                distribution: "skill service",
                reason: "assignments violate the monotone level constraint",
            }));
        }
        // Identical construction pipeline to the streaming session: fit
        // from the assignment statistics, build the table, warm one
        // tracker per user by replay. Shape validation (user counts,
        // per-user lengths) happens inside the grid build.
        let mut grid =
            StatsGrid::build_with_config(&dataset, &assignments, config.n_levels, &parallel)
                .map_err(ServeError::Core)?;
        let model = grid
            .fit_model_incremental(&dataset, config.lambda, &parallel, None)
            .map_err(ServeError::Core)?;
        let table = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(&model, &dataset, parallel.threads)
                .map_err(ServeError::Core)?
        } else {
            EmissionTable::build(&model, &dataset)
        };
        InvariantCtx::new()
            .check_emission_table(&table)
            .map_err(ServeError::Core)?;

        let n_shards = serve.n_shards;
        let mut shards: Vec<Shard> = (0..n_shards).map(|_| Shard::default()).collect();
        let mut admission = Vec::with_capacity(dataset.n_users());
        for (u, seq) in dataset.sequences().iter().enumerate() {
            let mut tracker = OnlineTracker::new(config.n_levels).map_err(ServeError::Core)?;
            for action in seq.actions() {
                tracker
                    .observe_item(&table, action.item)
                    .map_err(ServeError::Core)?;
            }
            let policy = match &serve.adaptive {
                Some(cfg) => {
                    Some(PolicyState::new(config.n_levels, cfg).map_err(ServeError::Core)?)
                }
                None => None,
            };
            let state = UserState {
                actions: seq.actions().to_vec(),
                levels: assignments.per_user[u].clone(),
                tracker,
                policy,
            };
            let shard = &mut shards[shard_of(seq.user, n_shards)];
            if shard.users.insert(seq.user, state).is_some() {
                return Err(ServeError::Core(CoreError::DegenerateFit {
                    distribution: "skill service",
                    reason: "dataset contains two sequences for one user id",
                }));
            }
            admission.push(seq.user);
        }

        let level_counts = assignments.level_histogram(config.n_levels);
        let difficulty = difficulty_from_counts(&table, &level_counts)?;
        let catalog = Dataset::new(
            dataset.schema().clone(),
            dataset.items().to_vec(),
            Vec::new(),
        )
        .map_err(ServeError::Core)?;
        let n_levels = config.n_levels;
        Ok(Self {
            shards: shards
                .into_iter()
                .enumerate()
                .map(|(i, s)| TracedMutex::new(LockId::Shard(i as u32), s))
                .collect(),
            global: TracedMutex::new(
                LockId::Global,
                Global {
                    grid,
                    model,
                    policy: serve.policy,
                    tuner: serve.tuner,
                    pending: 0,
                    total_ingested: 0,
                    refits: 0,
                    level_counts,
                    admission,
                },
            ),
            epoch: EpochCell::new(ModelEpoch::new(table, difficulty)),
            catalog,
            config,
            parallel,
            recommend: serve.recommend,
            adaptive: serve.adaptive,
            assign_pool: WorkspacePool::new(AssignWorkspace::new),
            fb_pool: WorkspacePool::new(move || {
                let transitions = TransitionModel::uninformative(n_levels)
                    .expect("n_levels validated at construction");
                FbWorkspace::new(&transitions)
            }),
        })
    }

    /// Builds a service from a completed training run — the serving twin
    /// of [`StreamingSession::resume`](upskill_core::streaming::StreamingSession::resume).
    pub fn resume(
        dataset: Dataset,
        result: &TrainResult,
        config: TrainConfig,
        parallel: ParallelConfig,
        serve: ServeConfig,
    ) -> Result<Self> {
        Self::new(dataset, result.assignments.clone(), config, parallel, serve)
    }

    /// Rehydrates a service from a [`SessionBundle`] snapshot. The
    /// bundle's stored training/parallel configuration and refit policy
    /// win over `serve.policy` (matching [`SessionBundle::resume`]); the
    /// rest of `serve` (shards, tuner, recommendation scoring) applies
    /// as given.
    pub fn from_bundle(bundle: SessionBundle, serve: ServeConfig) -> Result<Self> {
        bundle.validate().map_err(ServeError::Core)?;
        let SessionBundle {
            dataset,
            assignments,
            config,
            parallel,
            policy,
            ..
        } = bundle;
        Self::new(
            dataset,
            assignments,
            config,
            parallel,
            ServeConfig { policy, ..serve },
        )
    }

    /// Answers one typed [`Request`]; the enum front-end over the typed
    /// methods, e.g. for callers that deserialize requests.
    pub fn handle(&self, request: Request) -> Result<Response> {
        match request {
            Request::Ingest(action) => self.ingest(action).map(Response::Ingested),
            Request::IngestBatch(actions) => {
                self.ingest_batch(&actions).map(Response::IngestedBatch)
            }
            Request::Predict { user, mode } => self.predict(user, mode).map(Response::Prediction),
            Request::Recommend { user, k } => {
                self.recommend(user, k).map(Response::Recommendations)
            }
            Request::RecommendPolicy { user, k, mode } => self
                .recommend_policy(user, k, mode)
                .map(Response::PolicyRecommendations),
            Request::RecordOutcome {
                user,
                item,
                correct,
            } => self
                .record_outcome(user, item, correct)
                .map(Response::OutcomeRecorded),
            Request::Snapshot { note } => self
                .snapshot(&note)
                .map(|b| Response::Snapshot(Box::new(b))),
            Request::Stats => Ok(Response::Stats(self.stats())),
        }
    }

    /// Ingests one action — the serving twin of
    /// [`StreamingSession::ingest`](upskill_core::streaming::StreamingSession::ingest): commits a level by the constrained
    /// stay/advance extension rule, applies the `+1` statistics delta,
    /// advances the user's filtering tracker, then refits per the
    /// current policy. Unknown users are admitted with a fresh history;
    /// known users' actions must not move time backwards. On error the
    /// service state is unchanged.
    pub fn ingest(&self, action: Action) -> Result<IngestOutcome> {
        let outcome = self.ingest_inner(action)?;
        self.refit_per_policy()?;
        Ok(outcome)
    }

    /// Ingests a batch (each action as [`SkillService::ingest`]),
    /// deferring any policy-driven refit to the end of the batch. Fails
    /// fast on the first invalid action: earlier actions stay ingested,
    /// the offending and later ones do not.
    pub fn ingest_batch(&self, actions: &[Action]) -> Result<Vec<IngestOutcome>> {
        let mut outcomes = Vec::with_capacity(actions.len());
        for &action in actions {
            outcomes.push(self.ingest_inner(action)?);
        }
        self.refit_per_policy()?;
        Ok(outcomes)
    }

    /// The commitment + bookkeeping core of ingestion; no refit. All
    /// fallible validation runs before the first mutation.
    fn ingest_inner(&self, action: Action) -> Result<IngestOutcome> {
        let (epoch, ep) = self.epoch.load();
        let row = ep.table.checked_row(action.item).ok_or(ServeError::Core(
            CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: ep.table.n_items(),
            },
        ))?;
        let mut shard = self.shards[self.shard(action.user)].lock();
        let known = shard.users.get(&action.user);
        if let Some(state) = known {
            if let Some(last) = state.actions.last() {
                if action.time < last.time {
                    return Err(ServeError::Core(CoreError::UnsortedSequence {
                        user: action.user,
                        position: state.actions.len(),
                    }));
                }
            }
        }
        // Constrained extension of the committed monotone path — the
        // identical rule to the streaming session: a first action takes
        // the best level outright (ties low); otherwise a two-way choice
        // between staying and advancing one level, by emission score
        // (ties stay).
        let last = known.and_then(|s| s.levels.last().copied());
        let level = match last {
            None => skill_level_from_index(argmax_low(row)),
            Some(last) => {
                let li = last as usize - 1;
                if li + 1 < row.len() && row[li + 1] > row[li] {
                    last + 1
                } else {
                    last
                }
            }
        };
        InvariantCtx::new()
            .check_extension("serving ingest", last, level)
            .map_err(ServeError::Core)?;
        let is_new_user = known.is_none();
        if is_new_user {
            // Fallible construction before any mutation.
            let tracker = OnlineTracker::new(self.config.n_levels).map_err(ServeError::Core)?;
            let policy = match &self.adaptive {
                Some(cfg) => {
                    Some(PolicyState::new(self.config.n_levels, cfg).map_err(ServeError::Core)?)
                }
                None => None,
            };
            shard.users.insert(
                action.user,
                UserState {
                    actions: Vec::new(),
                    levels: Vec::new(),
                    tracker,
                    policy,
                },
            );
        }
        let state = shard
            .users
            .get_mut(&action.user)
            .expect("inserted or known above");
        state.actions.push(action);
        state.levels.push(level);
        state
            .tracker
            .observe_item(&ep.table, action.item)
            .map_err(ServeError::Core)?;
        // A completed (ingested) action is success evidence at the
        // item's difficulty; failures only ever arrive through
        // `record_outcome`, since a failed attempt never enters the
        // action sequence.
        if let Some(policy) = state.policy.as_mut() {
            policy.record(action.item, ep.difficulty[action.item as usize], true);
        }
        drop(shard);

        let mut g = self.global.lock();
        if is_new_user {
            g.admission.push(action.user);
        }
        g.grid
            .add_action(action.item, level)
            .map_err(ServeError::Core)?;
        g.level_counts[level as usize - 1] += 1;
        g.pending += 1;
        g.total_ingested += 1;
        Ok(IngestOutcome {
            user: action.user,
            level,
            epoch,
        })
    }

    /// Refits the dirty levels now if the policy says so.
    fn refit_per_policy(&self) -> Result<usize> {
        let mut g = self.global.lock();
        let due = match g.policy {
            RefitPolicy::EveryBatch => true,
            RefitPolicy::EveryNActions(n) => g.pending >= n,
            RefitPolicy::Manual => false,
        };
        if due {
            self.refit_locked(&mut g)
        } else {
            Ok(0)
        }
    }

    /// Refits model parameters from the accumulated statistics now,
    /// whatever the policy — the serving twin of
    /// [`StreamingSession::refit`](upskill_core::streaming::StreamingSession::refit). Touches only dirty levels, publishes
    /// a new [`ModelEpoch`] (predictions in flight keep reading the old
    /// one), and applies the auto-tuner adjustment if one is installed.
    /// Returns the number of levels refit.
    pub fn refit(&self) -> Result<usize> {
        let mut g = self.global.lock();
        self.refit_locked(&mut g)
    }

    /// The dirty-level refit under the held global lock. Mirrors
    /// `StreamingSession::refit_hard` + the tuner step of
    /// `StreamingSession::refit` exactly — including running the tuner
    /// on clean (0-dirty) refits — so replayed traffic evolves the
    /// policy identically.
    fn refit_locked(&self, g: &mut Global) -> Result<usize> {
        // `fit_model_incremental` clears the dirty flags; capture them
        // first — they are exactly the emission columns to refresh.
        let dirty = g.grid.dirty_levels().to_vec();
        let n_dirty = dirty.iter().filter(|&&d| d).count();
        if n_dirty > 0 {
            g.model = g
                .grid
                .fit_model_incremental(
                    &self.catalog,
                    self.config.lambda,
                    &self.parallel,
                    Some(&g.model),
                )
                .map_err(ServeError::Core)?;
            // Build the replacement table off to the side: clone the
            // published epoch's table, refresh only the dirty columns.
            // Readers keep scoring against the old epoch until the
            // atomic publish below.
            let (_, current) = self.epoch.load();
            let mut table = current.table.clone();
            table
                .refresh_levels(&g.model, &self.catalog, &dirty)
                .map_err(ServeError::Core)?;
            InvariantCtx::new()
                .check_emission_table(&table)
                .map_err(ServeError::Core)?;
            let difficulty = difficulty_from_counts(&table, &g.level_counts)?;
            self.epoch.publish(ModelEpoch::new(table, difficulty));
            g.refits += 1;
        }
        g.pending = 0;
        if let (RefitPolicy::EveryNActions(n), Some(tuner)) = (g.policy, g.tuner) {
            g.policy = RefitPolicy::EveryNActions(tuner.next_interval(n, n_dirty));
        }
        Ok(n_dirty)
    }

    /// Reads a skill estimate for a known user. O(1) for
    /// [`PredictMode::Committed`] / [`PredictMode::Filtered`];
    /// history-length DP from a pooled workspace for
    /// [`PredictMode::Smoothed`] / [`PredictMode::Posterior`]. Never
    /// takes the global lock, so predictions proceed concurrently with
    /// refits against the last published epoch.
    pub fn predict(&self, user: UserId, mode: PredictMode) -> Result<Prediction> {
        let (epoch, ep) = self.epoch.load();
        let shard = self.shards[self.shard(user)].lock();
        let state = shard
            .users
            .get(&user)
            .ok_or(ServeError::UnknownUser { user })?;
        let n_actions = state.actions.len();
        if n_actions == 0 {
            // Only reachable for a base-dataset user with an empty
            // sequence: there is no evidence to estimate from.
            return Err(ServeError::Core(CoreError::EmptyDataset));
        }
        let (level, posterior) = match mode {
            PredictMode::Committed => (*state.levels.last().expect("n_actions > 0"), None),
            PredictMode::Filtered => (
                state.tracker.current_level().map_err(ServeError::Core)?,
                None,
            ),
            PredictMode::Smoothed => {
                let items: Vec<ItemId> = state.actions.iter().map(|a| a.item).collect();
                drop(shard);
                let mut ws = self.assign_pool.acquire();
                let assignment = assign_items_with_table_ws(&ep.table, &items, &mut ws)
                    .map_err(ServeError::Core)?;
                (*assignment.levels.last().expect("n_actions > 0"), None)
            }
            PredictMode::Posterior => {
                let items: Vec<ItemId> = state.actions.iter().map(|a| a.item).collect();
                drop(shard);
                let mut ws = self.fb_pool.acquire();
                ws.run_items(&ep.table, &items).map_err(ServeError::Core)?;
                let s = ep.table.n_levels();
                let last_row = &ws.gamma()[(items.len() - 1) * s..items.len() * s];
                (
                    skill_level_from_index(argmax_low(last_row)),
                    Some(last_row.to_vec()),
                )
            }
        };
        Ok(Prediction {
            user,
            level,
            n_actions,
            epoch,
            posterior,
        })
    }

    /// Upskilling recommendations for a known user at their committed
    /// level, excluding items already in their history. `k` overrides
    /// the configured result-list length. Reads only the published
    /// epoch's table and difficulty — never the global lock — and
    /// filters the epoch's cached per-level [`LevelBand`] instead of
    /// rescanning the catalog (identical output, amortized scan).
    pub fn recommend(&self, user: UserId, k: Option<usize>) -> Result<Vec<Recommendation>> {
        let (_, ep) = self.epoch.load();
        let shard = self.shards[self.shard(user)].lock();
        let state = shard
            .users
            .get(&user)
            .ok_or(ServeError::UnknownUser { user })?;
        let level = *state
            .levels
            .last()
            .ok_or(ServeError::Core(CoreError::EmptyDataset))?;
        let seen: HashSet<ItemId> = state.actions.iter().map(|a| a.item).collect();
        drop(shard);
        let k = k.unwrap_or(self.recommend.k);
        let band = ep.band(level, &self.recommend)?;
        recommend_from_band(band, &|item| seen.contains(&item), k).map_err(ServeError::Core)
    }

    /// Adaptive (policy re-ranked) recommendations for a known user:
    /// the epoch's cached [`LevelBand`] at the user's committed level,
    /// re-scored against the user's [`PolicyState`] by
    /// [`rerank_band`]. Requires the service to be built with
    /// [`ServeConfig::adaptive`], and the requested `mode` must match
    /// the configured one. Items the user completed are excluded —
    /// except items whose most recent recorded outcome was a failure,
    /// which stay recommendable for retry.
    ///
    /// Like the static path this reads only the published epoch and
    /// the user's shard (policy state is cloned out from under the
    /// shard lock), so policy queries stay O(band) and never block —
    /// or wait on — a refit.
    pub fn recommend_policy(
        &self,
        user: UserId,
        k: Option<usize>,
        mode: PolicyMode,
    ) -> Result<Vec<PolicyRecommendation>> {
        let cfg = self.adaptive.ok_or(ServeError::PolicyDisabled)?;
        if mode != cfg.mode {
            return Err(ServeError::PolicyModeMismatch {
                requested: mode,
                configured: cfg.mode,
            });
        }
        let k = k.unwrap_or(self.recommend.k);
        if k == 0 {
            return Err(ServeError::BadRequest {
                what: "k",
                detail: "result-list length must be positive",
            });
        }
        let (_, ep) = self.epoch.load();
        let shard = self.shards[self.shard(user)].lock();
        let state = shard
            .users
            .get(&user)
            .ok_or(ServeError::UnknownUser { user })?;
        let level = *state
            .levels
            .last()
            .ok_or(ServeError::Core(CoreError::EmptyDataset))?;
        let seen: HashSet<ItemId> = state.actions.iter().map(|a| a.item).collect();
        let policy = state
            .policy
            .as_ref()
            .expect("adaptive services build policy state for every user")
            .clone();
        drop(shard);
        let band = ep.band(level, &self.recommend)?;
        if band.is_empty() {
            return Err(ServeError::EmptyBand { level });
        }
        let exclude = |item: ItemId| seen.contains(&item) && !policy.has_failed(item);
        rerank_band(band, &policy, level, &exclude, &cfg, k).map_err(ServeError::Core)
    }

    /// Records an externally observed outcome into a known user's
    /// adaptive policy state, binning it at the item's difficulty
    /// under the current epoch. Completed actions are recorded as
    /// successes automatically on ingest; this method exists mainly to
    /// feed *failed* attempts, which never enter the action sequence
    /// (and therefore never move the committed level or the model
    /// statistics — rejection evidence lives purely in the policy
    /// layer).
    pub fn record_outcome(
        &self,
        user: UserId,
        item: ItemId,
        correct: bool,
    ) -> Result<OutcomeNoted> {
        if self.adaptive.is_none() {
            return Err(ServeError::PolicyDisabled);
        }
        let (epoch, ep) = self.epoch.load();
        let difficulty = *ep.difficulty.get(item as usize).ok_or(ServeError::Core(
            CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: ep.difficulty.len(),
            },
        ))?;
        let mut shard = self.shards[self.shard(user)].lock();
        let state = shard
            .users
            .get_mut(&user)
            .ok_or(ServeError::UnknownUser { user })?;
        let policy = state
            .policy
            .as_mut()
            .expect("adaptive services build policy state for every user");
        policy.record(item, difficulty, correct);
        Ok(OutcomeNoted {
            user,
            item,
            correct,
            epoch,
        })
    }

    /// Takes a consistent snapshot of the whole service as a
    /// [`SessionBundle`] — bit-identical (including its JSON encoding)
    /// to [`StreamingSession::snapshot`](upskill_core::streaming::StreamingSession::snapshot) after the same traffic. Locks
    /// every shard (ascending) plus the global lock for the duration, so
    /// it is the one operation that pauses the world; resuming through
    /// [`SessionBundle::resume`] or [`SkillService::from_bundle`]
    /// refits pending statistics freshly.
    pub fn snapshot(&self, note: &str) -> Result<SessionBundle> {
        let shards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
        // lint:allow(lock-order): audited stop-the-world snapshot path — all shards ascending, then global.
        let g = self.global.lock();
        let mut sequences = Vec::with_capacity(g.admission.len());
        let mut per_user = Vec::with_capacity(g.admission.len());
        for &user in &g.admission {
            let state = shards[self.shard(user)]
                .users
                .get(&user)
                .expect("admission list tracks shard insertion");
            sequences
                .push(ActionSequence::new(user, state.actions.clone()).map_err(ServeError::Core)?);
            per_user.push(state.levels.clone());
        }
        let dataset = Dataset::new(
            self.catalog.schema().clone(),
            self.catalog.items().to_vec(),
            sequences,
        )
        .map_err(ServeError::Core)?;
        Ok(SessionBundle {
            version: SESSION_BUNDLE_VERSION,
            dataset,
            model: g.model.clone(),
            assignments: SkillAssignments { per_user },
            config: self.config,
            parallel: self.parallel,
            policy: g.policy,
            note: note.to_string(),
        })
    }

    /// Service-level counters; takes only the global lock.
    pub fn stats(&self) -> ServeStats {
        let g = self.global.lock();
        ServeStats {
            n_users: g.admission.len(),
            total_ingested: g.total_ingested,
            pending_actions: g.pending,
            epoch: self.epoch.epoch(),
            refits: g.refits,
            n_shards: self.shards.len(),
            policy: g.policy,
            policy_mode: self.adaptive.map(|c| c.mode),
            pooled_assign_workspaces: self.assign_pool.available(),
            pooled_fb_workspaces: self.fb_pool.available(),
        }
    }

    /// The current published model epoch (sequence number and payload).
    pub fn current_epoch(&self) -> (u64, Arc<ModelEpoch>) {
        self.epoch.load()
    }

    /// The current refit policy (auto-tuning may move its interval).
    pub fn policy(&self) -> RefitPolicy {
        self.global.lock().policy
    }

    /// Training hyperparameters refits run with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Parallelism configuration refits run with.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Number of session shards user state spreads over.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `user`'s state lives in — introspection for tests and
    /// operational tooling (e.g. attributing lock contention to tenants);
    /// the mapping is stable for a fixed shard count.
    pub fn shard_index(&self, user: UserId) -> usize {
        self.shard(user)
    }

    /// Which shard a user's state lives in.
    fn shard(&self, user: UserId) -> usize {
        shard_of(user, self.shards.len())
    }
}

/// Per-item generation difficulty under the empirical level prior
/// rebuilt from the running level counts — computes exactly what
/// [`upskill_core::difficulty::generation_difficulty_all_with_table`]
/// with [`SkillPrior::Empirical`](upskill_core::difficulty::SkillPrior)
/// computes from full assignments, without needing them contiguous.
fn difficulty_from_counts(table: &EmissionTable, counts: &[usize]) -> Result<Vec<f64>> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return Err(ServeError::Core(CoreError::EmptyDataset));
    }
    let prior: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    (0..table.n_items())
        .map(|item| {
            table
                .expected_level(item as ItemId, &prior)
                .map_err(ServeError::Core)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use upskill_core::streaming::StreamingSession;
    use upskill_core::train::train;

    /// Progression dataset mirroring the streaming-module test fixture:
    /// users move through item categories over time.
    fn progression_dataset(n_users: usize, len: usize, n_cats: u32) -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical {
                cardinality: n_cats,
            },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..n_cats)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(1 + 4 * c as u64),
                ]
            })
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        let cat = (t * n_cats as usize / len) as u32;
                        Action::new(t as i64, u, cat)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    fn service_and_session(
        policy: RefitPolicy,
        n_shards: usize,
    ) -> (SkillService, StreamingSession) {
        let ds = progression_dataset(8, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        let parallel = ParallelConfig::default();
        let service = SkillService::resume(
            ds.clone(),
            &result,
            cfg,
            parallel,
            ServeConfig {
                n_shards,
                policy,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let session = StreamingSession::resume(ds, &result, cfg, parallel, policy).unwrap();
        (service, session)
    }

    #[test]
    fn invalid_config_is_rejected() {
        let err = ServeConfig {
            n_shards: 0,
            ..ServeConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                what: "n_shards",
                ..
            }
        ));
    }

    #[test]
    fn ingest_matches_session_levels_bitwise() {
        let (service, mut session) = service_and_session(RefitPolicy::EveryBatch, 4);
        for t in 0..30i64 {
            let user = (t % 5) as UserId;
            let action = Action::new(100 + t, user, (t % 3) as ItemId);
            let expected = session.ingest(action).unwrap();
            let got = service.ingest(action).unwrap();
            assert_eq!(got.level, expected);
        }
        for user in 0..5u32 {
            let committed = service.predict(user, PredictMode::Committed).unwrap();
            assert_eq!(Some(committed.level), session.committed_level(user));
            let filtered = service.predict(user, PredictMode::Filtered).unwrap();
            assert_eq!(Some(filtered.level), session.filtered_level(user));
        }
    }

    #[test]
    fn snapshot_round_trips_through_session_bundle() {
        let (service, mut session) = service_and_session(RefitPolicy::EveryNActions(7), 3);
        for t in 0..25i64 {
            // Mix known and brand-new users.
            let user = (t % 11) as UserId;
            let action = Action::new(200 + t, user, (t % 3) as ItemId);
            session.ingest(action).unwrap();
            service.ingest(action).unwrap();
        }
        let ours = service.snapshot("parity").unwrap();
        let theirs = session.snapshot("parity");
        assert_eq!(
            ours.to_json().unwrap(),
            theirs.to_json().unwrap(),
            "snapshot must be bit-identical to the single-owner session"
        );
    }

    #[test]
    fn unknown_user_and_backwards_time_are_rejected_without_mutation() {
        let (service, _) = service_and_session(RefitPolicy::Manual, 2);
        let err = service.predict(999, PredictMode::Committed).unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser { user: 999 }));
        let err = service.recommend(999, None).unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser { user: 999 }));

        let before = service.stats();
        // User 0's base history ends at t=11; moving backwards must fail.
        let err = service.ingest(Action::new(-5, 0, 0)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Core(CoreError::UnsortedSequence { user: 0, .. })
        ));
        // Unknown item.
        let err = service.ingest(Action::new(50, 0, 999)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Core(CoreError::FeatureIndexOutOfBounds { .. })
        ));
        assert_eq!(service.stats(), before, "rejection must not mutate state");
    }

    #[test]
    fn refit_publishes_new_epoch_and_predictions_keep_old_arc() {
        let (service, _) = service_and_session(RefitPolicy::Manual, 2);
        let (epoch0, ep0) = service.current_epoch();
        assert_eq!(epoch0, 0);
        for t in 0..10i64 {
            service.ingest(Action::new(300 + t, 3, 2)).unwrap();
        }
        let n = service.refit().unwrap();
        assert!(n > 0, "streamed actions must dirty at least one level");
        let (epoch1, ep1) = service.current_epoch();
        assert_eq!(epoch1, 1);
        assert_ne!(ep0.table(), ep1.table());
        // The old Arc stays fully usable — in-flight reads never see a
        // half-swapped table.
        assert_eq!(ep0.table().n_items(), ep1.table().n_items());
        let stats = service.stats();
        assert_eq!(stats.refits, 1);
        assert_eq!(stats.pending_actions, 0);
    }

    #[test]
    fn tuner_evolves_policy_identically_to_session() {
        let tuner = RefitTuner::new(1, 1, 64).unwrap();
        let (service, mut session) = {
            let ds = progression_dataset(6, 10, 3);
            let cfg = TrainConfig::new(3).with_min_init_actions(4);
            let result = train(&ds, &cfg).unwrap();
            let parallel = ParallelConfig::default();
            let policy = RefitPolicy::EveryNActions(4);
            let service = SkillService::resume(
                ds.clone(),
                &result,
                cfg,
                parallel,
                ServeConfig {
                    n_shards: 3,
                    policy,
                    tuner: Some(tuner),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let mut session = StreamingSession::resume(ds, &result, cfg, parallel, policy).unwrap();
            session.set_tuner(Some(tuner));
            (service, session)
        };
        for t in 0..40i64 {
            let action = Action::new(400 + t, (t % 4) as UserId, (t % 3) as ItemId);
            session.ingest(action).unwrap();
            service.ingest(action).unwrap();
        }
        assert_eq!(service.policy(), session.policy());
    }

    #[test]
    fn smoothed_and_posterior_predictions_read_pooled_workspaces() {
        let (service, _) = service_and_session(RefitPolicy::EveryBatch, 2);
        let smoothed = service.predict(0, PredictMode::Smoothed).unwrap();
        assert!((1..=3).contains(&smoothed.level));
        let posterior = service.predict(0, PredictMode::Posterior).unwrap();
        let dist = posterior
            .posterior
            .expect("posterior mode carries the distribution");
        assert_eq!(dist.len(), 3);
        let sum: f64 = dist.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "posterior must normalize, got {sum}"
        );
        // Workspaces returned to their pools.
        let stats = service.stats();
        assert_eq!(stats.pooled_assign_workspaces, 1);
        assert_eq!(stats.pooled_fb_workspaces, 1);
    }

    #[test]
    fn recommend_excludes_seen_items_and_honors_k() {
        // A slack band wide enough that every unseen item is in range —
        // this test is about exclusion and truncation, not the band.
        let ds = progression_dataset(8, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        let service = SkillService::resume(
            ds,
            &result,
            cfg,
            ParallelConfig::default(),
            ServeConfig {
                n_shards: 1,
                policy: RefitPolicy::Manual,
                recommend: RecommendConfig {
                    lower_slack: 10.0,
                    upper_slack: 10.0,
                    ..RecommendConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // User 0 has seen every item in the 3-item catalog, so nothing
        // is left to recommend.
        let recs = service.recommend(0, None).unwrap();
        assert!(recs.is_empty());
        // A fresh user who has only seen item 0 can be recommended the
        // other two — and k=1 truncates.
        service.ingest(Action::new(500, 77, 0)).unwrap();
        let recs = service.recommend(77, None).unwrap();
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.item != 0));
        let one = service.recommend(77, Some(1)).unwrap();
        assert_eq!(one.len(), 1);
        // The epoch's cached band must reproduce the full catalog scan
        // bit for bit (user 77's history is exactly {item 0}).
        let (_, ep) = service.current_epoch();
        let level = service.predict(77, PredictMode::Committed).unwrap().level;
        let direct = upskill_core::recommend::recommend_for_level_with_table(
            ep.table(),
            ep.difficulty(),
            level,
            &|item| item == 0,
            &RecommendConfig {
                lower_slack: 10.0,
                upper_slack: 10.0,
                ..RecommendConfig::default()
            },
        )
        .unwrap();
        assert_eq!(recs, direct);
    }

    /// Adaptive service over the progression fixture with a band wide
    /// enough to hold every difficulty stratum.
    fn adaptive_service(mode: PolicyConfig) -> SkillService {
        let ds = progression_dataset(8, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        SkillService::resume(
            ds,
            &result,
            cfg,
            ParallelConfig::default(),
            ServeConfig {
                n_shards: 2,
                policy: RefitPolicy::Manual,
                recommend: RecommendConfig {
                    lower_slack: 10.0,
                    upper_slack: 10.0,
                    ..RecommendConfig::default()
                },
                adaptive: Some(mode),
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn policy_recommendations_rerank_the_cached_band() {
        let service = adaptive_service(PolicyConfig::hybrid());
        service.ingest(Action::new(500, 77, 0)).unwrap();
        let recs = service
            .recommend_policy(77, Some(2), PolicyMode::Hybrid)
            .unwrap();
        assert!(!recs.is_empty() && recs.len() <= 2);
        // Item 0 was completed (and not failed): excluded.
        assert!(recs.iter().all(|r| r.item != 0));
        // Single-threaded determinism: identical query, identical bits.
        let again = service
            .recommend_policy(77, Some(2), PolicyMode::Hybrid)
            .unwrap();
        assert_eq!(recs, again);
        assert_eq!(service.stats().policy_mode, Some(PolicyMode::Hybrid));
    }

    #[test]
    fn failed_items_stay_recommendable_for_retry() {
        let service = adaptive_service(PolicyConfig::hybrid());
        service.ingest(Action::new(500, 77, 0)).unwrap();
        service.ingest(Action::new(501, 77, 1)).unwrap();
        let before = service
            .recommend_policy(77, Some(3), PolicyMode::Hybrid)
            .unwrap();
        assert!(before.iter().all(|r| r.item != 1));
        // A recorded failure on completed item 1 reopens it for retry
        // (and shifts the ranking through the gap/NCC evidence).
        service.record_outcome(77, 1, false).unwrap();
        let after = service
            .recommend_policy(77, Some(3), PolicyMode::Hybrid)
            .unwrap();
        assert!(
            after.iter().any(|r| r.item == 1),
            "failed item must be retryable: {after:?}"
        );
    }

    #[test]
    fn policy_requests_are_rejected_with_typed_errors() {
        // Disabled service: both policy entry points refuse.
        let (plain, _) = service_and_session(RefitPolicy::Manual, 2);
        assert!(matches!(
            plain.recommend_policy(0, None, PolicyMode::Hybrid),
            Err(ServeError::PolicyDisabled)
        ));
        assert!(matches!(
            plain.record_outcome(0, 0, false),
            Err(ServeError::PolicyDisabled)
        ));
        assert_eq!(plain.stats().policy_mode, None);

        let service = adaptive_service(PolicyConfig::hybrid());
        // Unknown user.
        assert!(matches!(
            service.recommend_policy(999, None, PolicyMode::Hybrid),
            Err(ServeError::UnknownUser { user: 999 })
        ));
        assert!(matches!(
            service.record_outcome(999, 0, true),
            Err(ServeError::UnknownUser { user: 999 })
        ));
        // Mode mismatch.
        assert!(matches!(
            service.recommend_policy(0, None, PolicyMode::Teach),
            Err(ServeError::PolicyModeMismatch {
                requested: PolicyMode::Teach,
                configured: PolicyMode::Hybrid,
            })
        ));
        // k = 0.
        assert!(matches!(
            service.recommend_policy(0, Some(0), PolicyMode::Hybrid),
            Err(ServeError::BadRequest { what: "k", .. })
        ));
        // Unknown item in an outcome.
        assert!(matches!(
            service.record_outcome(0, 999, false),
            Err(ServeError::Core(CoreError::FeatureIndexOutOfBounds { .. }))
        ));
    }

    #[test]
    fn handle_dispatches_every_request_variant() {
        let (service, _) = service_and_session(RefitPolicy::EveryBatch, 2);
        let r = service
            .handle(Request::Ingest(Action::new(600, 1, 1)))
            .unwrap();
        assert!(matches!(r, Response::Ingested(_)));
        let r = service
            .handle(Request::IngestBatch(vec![
                Action::new(601, 1, 1),
                Action::new(602, 2, 2),
            ]))
            .unwrap();
        assert!(matches!(r, Response::IngestedBatch(ref v) if v.len() == 2));
        let r = service
            .handle(Request::Predict {
                user: 1,
                mode: PredictMode::Committed,
            })
            .unwrap();
        assert!(matches!(r, Response::Prediction(_)));
        let r = service
            .handle(Request::Recommend { user: 1, k: None })
            .unwrap();
        assert!(matches!(r, Response::Recommendations(_)));
        // Policy variants on a policy-disabled service: typed refusal
        // through the same dispatch path.
        let r = service.handle(Request::RecommendPolicy {
            user: 1,
            k: None,
            mode: PolicyMode::Hybrid,
        });
        assert!(matches!(r, Err(ServeError::PolicyDisabled)));
        let r = service.handle(Request::RecordOutcome {
            user: 1,
            item: 1,
            correct: false,
        });
        assert!(matches!(r, Err(ServeError::PolicyDisabled)));
        // And on an adaptive service they answer.
        let adaptive = adaptive_service(PolicyConfig::hybrid());
        let r = adaptive
            .handle(Request::RecommendPolicy {
                user: 1,
                k: Some(2),
                mode: PolicyMode::Hybrid,
            })
            .unwrap();
        assert!(matches!(r, Response::PolicyRecommendations(_)));
        let r = adaptive
            .handle(Request::RecordOutcome {
                user: 1,
                item: 1,
                correct: false,
            })
            .unwrap();
        assert!(matches!(
            r,
            Response::OutcomeRecorded(OutcomeNoted {
                user: 1,
                item: 1,
                correct: false,
                ..
            })
        ));
        let r = service
            .handle(Request::Snapshot {
                note: "via handle".into(),
            })
            .unwrap();
        assert!(matches!(r, Response::Snapshot(_)));
        let r = service.handle(Request::Stats).unwrap();
        assert!(matches!(r, Response::Stats(_)));
    }

    #[test]
    fn concurrent_reads_and_refits_never_tear() {
        let (service, _) = service_and_session(RefitPolicy::Manual, 4);
        let service = Arc::new(service);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let mut handles = Vec::new();
        for reader in 0..3u32 {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..300 {
                    let p = service
                        .predict(reader, PredictMode::Committed)
                        .expect("known user");
                    assert!((1..=3).contains(&p.level));
                    service.recommend(reader, Some(2)).expect("known user");
                }
            }));
        }
        // Writer: ingest to disjoint users and refit repeatedly while
        // the readers hammer predictions against the epoch pointer.
        barrier.wait();
        for t in 0..200i64 {
            let user = 4 + (t % 4) as UserId;
            service
                .ingest(Action::new(700 + t, user, (t % 3) as ItemId))
                .unwrap();
            if t % 20 == 19 {
                service.refit().unwrap();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(service.stats().refits > 0);
    }
}
