//! Typed serving errors.
//!
//! Every malformed request is rejected with a [`ServeError`] carrying the
//! context a caller needs to fix it, and rejection never mutates service
//! state: validation runs before any shard or statistics write.

use std::fmt;

use upskill_core::error::CoreError;
use upskill_core::types::UserId;

/// Convenient alias for serving results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// An error surfaced by the [`SkillService`](crate::SkillService).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A read request (predict, recommend) named a user the service has
    /// never seen. Ingest requests never raise this: unknown users are
    /// admitted with a fresh sequence.
    UnknownUser {
        /// The unrecognized user id.
        user: UserId,
    },
    /// The service configuration is unusable as given.
    InvalidConfig {
        /// Which knob was rejected.
        what: &'static str,
        /// Why it was rejected.
        detail: &'static str,
    },
    /// The model layer rejected the request: unknown item, a known
    /// user's time moving backwards, degenerate statistics, and so on.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownUser { user } => {
                write!(f, "unknown user {user}: no ingested actions")
            }
            ServeError::InvalidConfig { what, detail } => {
                write!(f, "invalid serve configuration ({what}): {detail}")
            }
            ServeError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ServeError::UnknownUser { user: 42 };
        assert!(e.to_string().contains("42"));
        let e = ServeError::InvalidConfig {
            what: "n_shards",
            detail: "need at least one shard",
        };
        assert!(e.to_string().contains("n_shards"));
        let e: ServeError = CoreError::EmptyDataset.into();
        assert!(matches!(e, ServeError::Core(CoreError::EmptyDataset)));
    }

    #[test]
    fn source_chain_reaches_core_error() {
        use std::error::Error;
        let e: ServeError = CoreError::EmptyDataset.into();
        assert!(e.source().is_some());
        assert!(ServeError::UnknownUser { user: 1 }.source().is_none());
    }
}
