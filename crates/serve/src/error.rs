//! Typed serving errors.
//!
//! Every malformed request is rejected with a [`ServeError`] carrying the
//! context a caller needs to fix it, and rejection never mutates service
//! state: validation runs before any shard or statistics write.

use std::fmt;

use upskill_core::error::CoreError;
use upskill_core::policy::PolicyMode;
use upskill_core::types::{SkillLevel, UserId};

/// Convenient alias for serving results.
pub type Result<T> = std::result::Result<T, ServeError>;

/// An error surfaced by the [`SkillService`](crate::SkillService).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A read request (predict, recommend) named a user the service has
    /// never seen. Ingest requests never raise this: unknown users are
    /// admitted with a fresh sequence.
    UnknownUser {
        /// The unrecognized user id.
        user: UserId,
    },
    /// The service configuration is unusable as given.
    InvalidConfig {
        /// Which knob was rejected.
        what: &'static str,
        /// Why it was rejected.
        detail: &'static str,
    },
    /// A policy request (adaptive recommendation, outcome recording)
    /// reached a service that was built without an adaptive
    /// [`PolicyConfig`](upskill_core::policy::PolicyConfig).
    PolicyDisabled,
    /// The request's policy mode does not match the mode the service
    /// was configured with — the envelope-level consistency check that
    /// keeps a client's teach/motivate/hybrid expectation honest.
    PolicyModeMismatch {
        /// The mode the request asked for.
        requested: PolicyMode,
        /// The mode the service is running.
        configured: PolicyMode,
    },
    /// The user's level band contains no candidate items at all, so no
    /// recommendation (static or adaptive) is possible at this level
    /// under the configured difficulty slack.
    EmptyBand {
        /// The committed level whose band is empty.
        level: SkillLevel,
    },
    /// A request parameter is unusable as given (e.g. `k = 0`).
    BadRequest {
        /// Which parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        detail: &'static str,
    },
    /// The model layer rejected the request: unknown item, a known
    /// user's time moving backwards, degenerate statistics, and so on.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownUser { user } => {
                write!(f, "unknown user {user}: no ingested actions")
            }
            ServeError::InvalidConfig { what, detail } => {
                write!(f, "invalid serve configuration ({what}): {detail}")
            }
            ServeError::PolicyDisabled => {
                write!(
                    f,
                    "adaptive policy requests need a service configured with a PolicyConfig"
                )
            }
            ServeError::PolicyModeMismatch {
                requested,
                configured,
            } => write!(
                f,
                "policy mode mismatch: request asked for {} but the service runs {}",
                requested.name(),
                configured.name()
            ),
            ServeError::EmptyBand { level } => {
                write!(
                    f,
                    "no candidate items in the difficulty band at level {level}"
                )
            }
            ServeError::BadRequest { what, detail } => {
                write!(f, "bad request parameter ({what}): {detail}")
            }
            ServeError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ServeError::UnknownUser { user: 42 };
        assert!(e.to_string().contains("42"));
        let e = ServeError::InvalidConfig {
            what: "n_shards",
            detail: "need at least one shard",
        };
        assert!(e.to_string().contains("n_shards"));
        let e: ServeError = CoreError::EmptyDataset.into();
        assert!(matches!(e, ServeError::Core(CoreError::EmptyDataset)));
    }

    #[test]
    fn policy_errors_display_their_context() {
        use std::error::Error;
        assert!(ServeError::PolicyDisabled
            .to_string()
            .contains("PolicyConfig"));
        let e = ServeError::PolicyModeMismatch {
            requested: PolicyMode::Teach,
            configured: PolicyMode::Hybrid,
        };
        let s = e.to_string();
        assert!(s.contains("teach") && s.contains("hybrid"), "{s}");
        assert!(ServeError::EmptyBand { level: 3 }.to_string().contains('3'));
        let e = ServeError::BadRequest {
            what: "k",
            detail: "result-list length must be positive",
        };
        assert!(e.to_string().contains("k"));
        assert!(e.source().is_none());
    }

    #[test]
    fn source_chain_reaches_core_error() {
        use std::error::Error;
        let e: ServeError = CoreError::EmptyDataset.into();
        assert!(e.source().is_some());
        assert!(ServeError::UnknownUser { user: 1 }.source().is_none());
    }
}
