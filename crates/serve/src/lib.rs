//! `upskill-serve`: an in-process, concurrent, multi-tenant serving API
//! over trained upskill models.
//!
//! [`upskill_core::streaming::StreamingSession`] is the single-owner
//! (`&mut self`) continuation of a trained model; this crate is its
//! serving twin for the paper's live deployment (§VI): one
//! [`SkillService`] shared across request threads answers typed
//! [`Request`]s — ingest, predict, recommend, snapshot, stats — from many
//! tenants at once, without a network dependency and without giving up
//! the session's exactness guarantees:
//!
//! - **Sharded tenancy** — per-user state is spread over mutex-guarded
//!   shards by a stable user hash, so concurrent users rarely contend.
//! - **Epoch-swapped model** — the emission table (plus derived item
//!   difficulty) is published through an
//!   [`EpochCell`](upskill_core::epoch::EpochCell): reads are lock-free
//!   `Arc` clones, and dirty-level refits build the replacement off to
//!   the side and publish atomically, so predictions never block on
//!   refits (and never observe a half-updated table).
//! - **Pooled workspaces** — the DP scratch buffers behind
//!   smoothed/posterior predictions are reused across requests via
//!   [`WorkspacePool`](upskill_core::pool::WorkspacePool).
//! - **Bitwise equivalence** — driven single-threaded, the service's
//!   levels, model, and snapshots are bit-identical to a
//!   `StreamingSession` fed the same traffic, for every shard count and
//!   refit policy (`tests/properties_serve.rs` enforces this).
//!
//! # Quickstart
//!
//! ```
//! use upskill_core::prelude::*;
//! use upskill_serve::{PredictMode, ServeConfig, SkillService};
//!
//! # fn main() -> Result<(), upskill_serve::ServeError> {
//! // Train offline (see upskill-core), then move the result behind a
//! // service and share it across threads.
//! # let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
//! # let items = vec![
//! #     vec![FeatureValue::Categorical(0)],
//! #     vec![FeatureValue::Categorical(1)],
//! # ];
//! # let sequences: Vec<ActionSequence> = (0..4u32)
//! #     .map(|u| {
//! #         let actions: Vec<Action> =
//! #             (0..8).map(|t| Action::new(t as i64, u, (t / 4) as u32)).collect();
//! #         ActionSequence::new(u, actions).unwrap()
//! #     })
//! #     .collect();
//! # let dataset = Dataset::new(schema, items, sequences).unwrap();
//! # let config = TrainConfig::new(2).with_min_init_actions(2);
//! let result = train(&dataset, &config)?;
//! let service = SkillService::resume(
//!     dataset,
//!     &result,
//!     config,
//!     ParallelConfig::default(),
//!     ServeConfig::default(),
//! )?;
//!
//! // Live traffic: ingest actions (unknown users are admitted), read
//! // estimates, recommend next items.
//! let outcome = service.ingest(Action::new(100, 42, 0))?;
//! let estimate = service.predict(42, PredictMode::Filtered)?;
//! let next = service.recommend(42, Some(3))?;
//! # let _ = (outcome, estimate, next);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod error;
pub mod service;

pub use api::{
    IngestOutcome, OutcomeNoted, PredictMode, Prediction, Request, Response, ServeStats,
};
pub use error::{Result, ServeError};
pub use service::{ModelEpoch, ServeConfig, SkillService};

// Convenience re-exports: the adaptive policy vocabulary the serving
// API speaks ([`Request::RecommendPolicy`], [`ServeConfig::adaptive`]).
pub use upskill_core::policy::{PolicyConfig, PolicyMode, PolicyRecommendation, PolicyState};
