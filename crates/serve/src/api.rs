//! The typed request/response surface of the serving layer.
//!
//! Every operation the [`SkillService`](crate::SkillService) supports is
//! expressible as a [`Request`] value answered by exactly one [`Response`]
//! variant (or a typed [`ServeError`](crate::ServeError)). The
//! enum-dispatch [`SkillService::handle`](crate::SkillService::handle)
//! front-end and the direct typed methods (`ingest`, `predict`, …) share
//! one implementation, so embedders can pick whichever shape fits —
//! including serializing requests across a process boundary: everything
//! here derives serde.

use serde::{Deserialize, Serialize};

use upskill_core::bundle::SessionBundle;
use upskill_core::policy::{PolicyMode, PolicyRecommendation};
use upskill_core::recommend::Recommendation;
use upskill_core::streaming::RefitPolicy;
use upskill_core::types::{Action, ItemId, SkillLevel, UserId};

/// Which estimate a predict request should read; see the module docs of
/// [`upskill_core::streaming`] on filtering vs smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictMode {
    /// The user's last committed level — the level their most recent
    /// ingested action was assigned. O(1).
    Committed,
    /// The filtering [`OnlineTracker`](upskill_core::online::OnlineTracker)
    /// estimate: accumulated per-level evidence over everything the user
    /// has done. O(1).
    Filtered,
    /// Re-runs the monotone assignment DP over the user's whole item
    /// history against the current emission table — the smoothing view,
    /// with hindsight. O(history × levels), served from a pooled
    /// [`AssignWorkspace`](upskill_core::assign::AssignWorkspace).
    Smoothed,
    /// Forward–backward posterior marginals over the user's history
    /// under uninformative monotone transitions; the response carries
    /// the last action's full level distribution. O(history × levels),
    /// served from a pooled [`FbWorkspace`](upskill_core::em::FbWorkspace).
    Posterior,
}

/// One serving request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Ingest one action (unknown users are admitted), then refit if the
    /// policy says so — the serving twin of
    /// [`StreamingSession::ingest`](upskill_core::streaming::StreamingSession::ingest).
    Ingest(Action),
    /// Ingest a batch, deferring any policy-driven refit to the end.
    /// Fails fast: actions before the offending one stay ingested.
    IngestBatch(Vec<Action>),
    /// Read a skill estimate for a known user.
    Predict {
        /// Whose skill to estimate.
        user: UserId,
        /// Which estimator to read.
        mode: PredictMode,
    },
    /// Upskilling recommendations for a known user at their committed
    /// level, excluding items they already selected.
    Recommend {
        /// Who to recommend for.
        user: UserId,
        /// Overrides the configured result-list length when set.
        k: Option<usize>,
    },
    /// Adaptive (policy re-ranked) recommendations for a known user —
    /// the [`Request::Recommend`] variant that carries the policy mode
    /// through the serve envelope. The mode must match the service's
    /// configured [`PolicyConfig`](upskill_core::policy::PolicyConfig)
    /// or the request is rejected with
    /// [`ServeError::PolicyModeMismatch`](crate::ServeError::PolicyModeMismatch).
    RecommendPolicy {
        /// Who to recommend for.
        user: UserId,
        /// Overrides the configured result-list length when set.
        k: Option<usize>,
        /// The teach/motivate/hybrid mode the client expects.
        mode: PolicyMode,
    },
    /// Record an externally observed outcome (e.g. the user attempted
    /// the item and failed) into the user's adaptive policy state.
    /// Completed actions are recorded as successes automatically on
    /// ingest; this request exists mainly to feed *failures*, which
    /// never enter the action sequence.
    RecordOutcome {
        /// Whose policy state to update.
        user: UserId,
        /// The attempted item.
        item: ItemId,
        /// Whether the attempt succeeded.
        correct: bool,
    },
    /// A consistent, versioned snapshot of the whole service state as a
    /// [`SessionBundle`].
    Snapshot {
        /// Free-form provenance note stored in the bundle.
        note: String,
    },
    /// Service-level counters.
    Stats,
}

/// The outcome of ingesting one action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestOutcome {
    /// The acting user.
    pub user: UserId,
    /// The level committed for this action.
    pub level: SkillLevel,
    /// The table epoch the level decision read.
    pub epoch: u64,
}

/// Acknowledgement of a recorded policy outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeNoted {
    /// Whose policy state was updated.
    pub user: UserId,
    /// The attempted item.
    pub item: ItemId,
    /// The recorded outcome.
    pub correct: bool,
    /// The table epoch whose difficulty the outcome was binned under.
    pub epoch: u64,
}

/// The answer to a predict request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The queried user.
    pub user: UserId,
    /// The estimated level under the requested mode.
    pub level: SkillLevel,
    /// How many actions the estimate is based on.
    pub n_actions: usize,
    /// The table epoch the estimate read.
    pub epoch: u64,
    /// Full level distribution of the last action
    /// ([`PredictMode::Posterior`] only).
    pub posterior: Option<Vec<f64>>,
}

/// Service-level counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Users with at least one action (base + admitted).
    pub n_users: usize,
    /// Actions ingested over the service's lifetime (excluding the base
    /// dataset).
    pub total_ingested: usize,
    /// Actions ingested since the last refit.
    pub pending_actions: usize,
    /// The current emission-table epoch.
    pub epoch: u64,
    /// Refits that actually rewrote model state.
    pub refits: u64,
    /// How many session shards requests hash onto.
    pub n_shards: usize,
    /// The current refit policy (auto-tuning may move its interval).
    pub policy: RefitPolicy,
    /// The adaptive policy mode the service serves, if enabled.
    pub policy_mode: Option<PolicyMode>,
    /// Assignment workspaces parked in the pool.
    pub pooled_assign_workspaces: usize,
    /// Forward–backward workspaces parked in the pool.
    pub pooled_fb_workspaces: usize,
}

/// One serving response; variants correspond one-to-one to [`Request`].
///
/// (No `PartialEq`: [`SessionBundle`] deliberately doesn't implement
/// it — bundle equality is defined on the serialized form.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ingest`].
    Ingested(IngestOutcome),
    /// Answer to [`Request::IngestBatch`], in input order.
    IngestedBatch(Vec<IngestOutcome>),
    /// Answer to [`Request::Predict`].
    Prediction(Prediction),
    /// Answer to [`Request::Recommend`], best first.
    Recommendations(Vec<Recommendation>),
    /// Answer to [`Request::RecommendPolicy`], best first.
    PolicyRecommendations(Vec<PolicyRecommendation>),
    /// Answer to [`Request::RecordOutcome`].
    OutcomeRecorded(OutcomeNoted),
    /// Answer to [`Request::Snapshot`].
    Snapshot(Box<SessionBundle>),
    /// Answer to [`Request::Stats`].
    Stats(ServeStats),
}
