//! Figure 6 & Table III — model components learned for the beer domain.
//!
//! Trains the S = 5 multi-faceted model on the Beer data and reports:
//! - Fig. 6: the per-level ABV gamma means (paper: increasing, 5.85 at
//!   s=1 → 7.46 at s=5);
//! - Table III: the top-10 beer styles dominated by unskilled and skilled
//!   users (paper: pale lagers for novices; imperial IPAs/stouts, sours,
//!   barley wines for experts).

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::analysis::{level_means, top_skilled, top_unskilled};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::beer::{self, features, generate, BeerConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    abv_means: Vec<f64>,
    unskilled_styles: Vec<(String, f64)>,
    skilled_styles: Vec<(String, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 6 & Table III: beer-domain model components");

    let cfg = match scale {
        Scale::Quick => BeerConfig::test_scale(42),
        _ => BeerConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("beer generation");
    eprintln!(
        "beer data: {} users, {} beers, {} actions",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );
    let train_cfg = TrainConfig::new(beer::BEER_LEVELS).with_min_init_actions(50);
    let result = train(&data.dataset, &train_cfg).expect("training");

    let abv_means = level_means(&result.model, features::ABV).expect("means");
    println!("Fig. 6 — ABV mean per level (paper: 5.85 → 7.46, increasing):");
    println!(
        "  {:?}",
        abv_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );

    let unskilled = top_unskilled(&result.model, features::STYLE, 10).expect("dominance");
    let skilled = top_skilled(&result.model, features::STYLE, 10).expect("dominance");

    println!("\nTable IIIa — styles dominated by the lowest skill level:");
    let mut ta = TextTable::new(&["Style", "Tier", "Score"]);
    for e in &unskilled {
        ta.row(vec![
            data.style_names[e.value as usize].clone(),
            data.style_tiers[e.value as usize].to_string(),
            format!("{:+.3}", e.score),
        ]);
    }
    ta.print();

    println!("\nTable IIIb — styles dominated by the highest skill level:");
    let mut tb = TextTable::new(&["Style", "Tier", "Score"]);
    for e in &skilled {
        tb.row(vec![
            data.style_names[e.value as usize].clone(),
            data.style_tiers[e.value as usize].to_string(),
            format!("{:+.3}", e.score),
        ]);
    }
    tb.print();

    let abv_increases = abv_means.last().unwrap_or(&0.0) > abv_means.first().unwrap_or(&0.0);
    let novice_tier: f64 = unskilled
        .iter()
        .take(5)
        .map(|e| data.style_tiers[e.value as usize] as f64)
        .sum::<f64>()
        / 5.0;
    let expert_tier: f64 = skilled
        .iter()
        .take(5)
        .map(|e| data.style_tiers[e.value as usize] as f64)
        .sum::<f64>()
        / 5.0;
    println!("\nShape check vs. paper Fig. 6 / Table III:");
    println!(
        "  ABV increases with skill: {abv_increases} ({:.2} → {:.2})",
        abv_means.first().unwrap_or(&f64::NAN),
        abv_means.last().unwrap_or(&f64::NAN)
    );
    println!(
        "  experts dominate higher-tier styles: {} (novice mean tier {:.1} vs \
         expert mean tier {:.1})",
        expert_tier > novice_tier,
        novice_tier,
        expert_tier
    );

    write_report(
        "fig06_table03_beer",
        &Report {
            scale: format!("{scale:?}"),
            abv_means,
            unskilled_styles: unskilled
                .iter()
                .map(|e| (data.style_names[e.value as usize].clone(), e.score))
                .collect(),
            skilled_styles: skilled
                .iter()
                .map(|e| (data.style_names[e.value as usize].clone(), e.score))
                .collect(),
        },
    );
}
