//! Emission-table microbenchmark, two parts:
//!
//! 1. **Columnar fill sweep** — wall time of one full table build with the
//!    columnar batch kernels ([`EmissionTable::build`]) vs. the scalar
//!    cell-by-cell fill ([`EmissionTable::build_scalar`]), swept over
//!    `n_items ∈ {200, 2_000, 20_000}` (the ROADMAP's 10–100× item-count
//!    target). The two fills must agree **bitwise** at every scale; the
//!    20k-item entry carries the 3× acceptance floor. Each entry also
//!    times the f32 storage build ([`CompactEmissionTable`]) and records
//!    both storage footprints.
//! 2. **Assignment sweep** (the original benchmark) — one full assignment
//!    pass with per-action emission evaluation vs. the table-backed DP at
//!    the acceptance workload (200 items, 500 users × 100 mean actions,
//!    S=5, mixed feature kinds), with a bitwise result-equality check.

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::assign::{assign_all_direct, assign_all_with_table};
use upskill_core::emission::{CompactEmissionTable, EmissionTable};
use upskill_core::init::initialize_model;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

/// One item-count scale of the columnar-vs-scalar fill sweep. Entries
/// with an `acceptance_floor` are enforced by `xtask bench-floors`.
#[derive(Serialize)]
struct FillSweepEntry {
    n_items: usize,
    n_actions: usize,
    scalar_build_seconds_median: f64,
    columnar_build_seconds_median: f64,
    f32_build_seconds_median: f64,
    speedup: f64,
    acceptance_floor: Option<f64>,
    results_bitwise_identical: bool,
    f64_table_bytes: usize,
    f32_table_bytes: usize,
}

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    repeats: usize,
    fill_sweep: Vec<FillSweepEntry>,
    assignment: AssignmentReport,
}

/// The original direct-vs-table assignment comparison at the base scale.
#[derive(Serialize)]
struct AssignmentReport {
    n_items: usize,
    n_actions: usize,
    direct_seconds_median: f64,
    table_seconds_median: f64,
    table_build_seconds_median: f64,
    speedup: f64,
    acceptance_floor: Option<f64>,
    results_identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Bitwise equality of two emission tables over every (item, level) cell.
fn tables_bitwise_equal(a: &EmissionTable, b: &EmissionTable) -> bool {
    a.n_items() == b.n_items()
        && a.n_levels() == b.n_levels()
        && (0..a.n_items() as u32).all(|item| {
            a.row(item)
                .iter()
                .zip(b.row(item))
                .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

fn workload(n_users: usize, n_items: usize, mean_len: f64) -> SyntheticConfig {
    SyntheticConfig {
        n_users,
        n_items,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Emission table: columnar fill sweep + assignment comparison");

    let (n_users, mean_len, repeats) = match scale {
        Scale::Quick => (50, 30.0, 3),
        _ => (500, 100.0, 5),
    };

    // Floors are recorded (and therefore enforced by `xtask bench-floors`)
    // only at the Default/Paper acceptance workload; quick-scale runs are
    // smoke tests whose timings are too noisy to gate on.
    let enforce = !matches!(scale, Scale::Quick);

    // Part 1: columnar vs scalar table fill across item counts. Only the
    // 20k-item point carries an acceptance floor; the smaller scales are
    // informational (their builds are microseconds and ratio-noisy).
    let mut fill_sweep = Vec::new();
    let mut fill_table = TextTable::new(&[
        "Items",
        "Scalar build (s)",
        "Columnar build (s)",
        "f32 build (s)",
        "Speedup",
        "Bitwise",
    ]);
    for &n_items in &[200usize, 2_000, 20_000] {
        let data = generate(&workload(n_users, n_items, mean_len)).expect("generation");
        let model = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");

        // Warm-up plus the bitwise identity check.
        let scalar = EmissionTable::build_scalar(&model, &data.dataset);
        let columnar = EmissionTable::build(&model, &data.dataset);
        let identical = tables_bitwise_equal(&scalar, &columnar);
        let compact = CompactEmissionTable::build(&model, &data.dataset);
        let f64_bytes = columnar.memory_bytes();
        let f32_bytes = compact.memory_bytes();

        let mut scalar_times = Vec::with_capacity(repeats);
        let mut columnar_times = Vec::with_capacity(repeats);
        let mut f32_times = Vec::with_capacity(repeats);
        let mut ratios = Vec::with_capacity(repeats);
        for _ in 0..repeats {
            let t0 = Instant::now();
            let t = EmissionTable::build_scalar(&model, &data.dataset);
            let scalar_s = t0.elapsed().as_secs_f64();
            scalar_times.push(scalar_s);
            drop(t);

            let t1 = Instant::now();
            let t = EmissionTable::build(&model, &data.dataset);
            let columnar_s = t1.elapsed().as_secs_f64();
            columnar_times.push(columnar_s);
            drop(t);

            let t2 = Instant::now();
            let t = CompactEmissionTable::build(&model, &data.dataset);
            f32_times.push(t2.elapsed().as_secs_f64());
            drop(t);

            ratios.push(scalar_s / columnar_s);
        }
        let scalar_s = median(&mut scalar_times);
        let columnar_s = median(&mut columnar_times);
        let f32_s = median(&mut f32_times);
        let speedup = median(&mut ratios);
        let floor = if enforce && n_items == 20_000 {
            Some(3.0)
        } else {
            None
        };

        fill_table.row(vec![
            format!("{n_items}"),
            format!("{scalar_s:.6}"),
            format!("{columnar_s:.6}"),
            format!("{f32_s:.6}"),
            format!("{speedup:.2}x"),
            format!("{identical}"),
        ]);
        if !identical {
            eprintln!(
                "ERROR: columnar fill diverged bitwise from the scalar fill at {n_items} items"
            );
            std::process::exit(1);
        }
        fill_sweep.push(FillSweepEntry {
            n_items,
            n_actions: data.dataset.n_actions(),
            scalar_build_seconds_median: scalar_s,
            columnar_build_seconds_median: columnar_s,
            f32_build_seconds_median: f32_s,
            speedup,
            acceptance_floor: floor,
            results_bitwise_identical: identical,
            f64_table_bytes: f64_bytes,
            f32_table_bytes: f32_bytes,
        });
    }
    fill_table.print();
    let floor_entry = fill_sweep.last().expect("sweep entries");
    println!(
        "\nColumnar fill speedup at 20k items: {:.2}x (acceptance floor: 3x)",
        floor_entry.speedup
    );

    // Part 2: the original assignment sweep at the base workload.
    let data = generate(&workload(n_users, 200, mean_len)).expect("generation");
    let model = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");
    eprintln!(
        "assignment workload: {} users, {} items, {} actions, S=5",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    let direct_result = assign_all_direct(&model, &data.dataset).expect("direct");
    let table = EmissionTable::build(&model, &data.dataset);
    let table_result = assign_all_with_table(&table, &data.dataset).expect("table");
    let identical = direct_result == table_result;

    let mut direct_times = Vec::with_capacity(repeats);
    let mut table_times = Vec::with_capacity(repeats);
    let mut build_times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        assign_all_direct(&model, &data.dataset).expect("direct");
        direct_times.push(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let table = EmissionTable::build(&model, &data.dataset);
        build_times.push(t1.elapsed().as_secs_f64());
        assign_all_with_table(&table, &data.dataset).expect("table");
        table_times.push(t1.elapsed().as_secs_f64());
    }
    let direct_s = median(&mut direct_times);
    let table_s = median(&mut table_times);
    let build_s = median(&mut build_times);
    let speedup = direct_s / table_s;

    let mut out = TextTable::new(&["Path", "Per-sweep (s)"]);
    out.row(vec![
        "direct (per-action emissions)".into(),
        format!("{direct_s:.4}"),
    ]);
    out.row(vec![
        "table (build + cached rows)".into(),
        format!("{table_s:.4}"),
    ]);
    out.row(vec![
        "  of which table build".into(),
        format!("{build_s:.4}"),
    ]);
    out.print();
    println!("\nAssignment speedup: {speedup:.1}x (acceptance floor: 3x)");
    println!("Results identical: {identical}");
    if !identical {
        eprintln!("ERROR: table-backed assignment diverged from direct evaluation");
        std::process::exit(1);
    }

    write_report(
        "BENCH_emission",
        &Report {
            scale: format!("{scale:?}"),
            n_users: data.dataset.n_users(),
            n_levels: 5,
            mean_sequence_len: mean_len,
            repeats,
            fill_sweep,
            assignment: AssignmentReport {
                n_items: data.dataset.n_items(),
                n_actions: data.dataset.n_actions(),
                direct_seconds_median: direct_s,
                table_seconds_median: table_s,
                table_build_seconds_median: build_s,
                speedup,
                acceptance_floor: if enforce { Some(3.0) } else { None },
                results_identical: identical,
            },
        },
    );
}
