//! Emission-table microbenchmark — wall time of one full assignment sweep
//! (the dominant cost of each training iteration) with and without the
//! shared [`EmissionTable`], at the acceptance workload: 200 items,
//! 500 users × 100 mean actions, S=5, mixed feature kinds (ID +
//! categorical + gamma + count).
//!
//! The direct path evaluates every item's emission distributions once per
//! *action* (~50k evaluations per sweep); the table path evaluates them
//! once per *item* (200 evaluations) and the DP reads cached rows. The
//! report records the per-sweep times, the speedup, and a result-equality
//! check (the two paths must agree bitwise).

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::assign::{assign_all_direct, assign_all_with_table};
use upskill_core::emission::EmissionTable;
use upskill_core::init::initialize_model;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    n_actions: usize,
    repeats: usize,
    direct_seconds_median: f64,
    table_seconds_median: f64,
    table_build_seconds_median: f64,
    speedup: f64,
    results_identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    banner("Emission table: assignment sweep, direct vs table-backed");

    let (n_users, mean_len, repeats) = match scale {
        Scale::Quick => (50, 30.0, 3),
        _ => (500, 100.0, 5),
    };
    let cfg = SyntheticConfig {
        n_users,
        n_items: 200,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    };
    let data = generate(&cfg).expect("generation");
    let model = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");
    eprintln!(
        "workload: {} users, {} items, {} actions, S=5",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    // Warm-up plus result-equality check.
    let direct_result = assign_all_direct(&model, &data.dataset).expect("direct");
    let table = EmissionTable::build(&model, &data.dataset);
    let table_result = assign_all_with_table(&table, &data.dataset).expect("table");
    let identical = direct_result == table_result;

    let mut direct_times = Vec::with_capacity(repeats);
    let mut table_times = Vec::with_capacity(repeats);
    let mut build_times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        assign_all_direct(&model, &data.dataset).expect("direct");
        direct_times.push(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let table = EmissionTable::build(&model, &data.dataset);
        build_times.push(t1.elapsed().as_secs_f64());
        assign_all_with_table(&table, &data.dataset).expect("table");
        table_times.push(t1.elapsed().as_secs_f64());
    }
    let direct_s = median(&mut direct_times);
    let table_s = median(&mut table_times);
    let build_s = median(&mut build_times);
    let speedup = direct_s / table_s;

    let mut out = TextTable::new(&["Path", "Per-sweep (s)"]);
    out.row(vec![
        "direct (per-action emissions)".into(),
        format!("{direct_s:.4}"),
    ]);
    out.row(vec![
        "table (build + cached rows)".into(),
        format!("{table_s:.4}"),
    ]);
    out.row(vec![
        "  of which table build".into(),
        format!("{build_s:.4}"),
    ]);
    out.print();
    println!("\nSpeedup: {speedup:.1}x (acceptance floor: 3x)");
    println!("Results identical: {identical}");
    if !identical {
        eprintln!("ERROR: table-backed assignment diverged from direct evaluation");
        std::process::exit(1);
    }

    write_report(
        "BENCH_emission",
        &Report {
            scale: format!("{scale:?}"),
            n_users: data.dataset.n_users(),
            n_items: data.dataset.n_items(),
            n_levels: 5,
            mean_sequence_len: mean_len,
            n_actions: data.dataset.n_actions(),
            repeats,
            direct_seconds_median: direct_s,
            table_seconds_median: table_s,
            table_build_seconds_median: build_s,
            speedup,
            results_identical: identical,
        },
    );
}
