//! Closed-loop upskilling benchmark — adaptive policy vs the paper's
//! static band recommendation.
//!
//! Runs the `upskill-eval` closed-loop harness over ≥2 synthetic
//! domains (the paper's sparse generator and its dense variant): a
//! population of simulated learners per arm asks a live `SkillService`
//! what to attempt next, succeeds or fails as a function of the
//! recommended stretch, and advances when stretch work lands. The arms
//! share one trained model per domain and differ only in the
//! recommendation surface (static band scoring vs hybrid policy
//! re-ranking).
//!
//! The headline number is `speedup` = the *minimum* over domains of
//! `static median actions-to-target / adaptive median` — above 1.0
//! means the adaptive policy upskills learners faster on every domain.
//! At default/paper scale the report carries `acceptance_floor` (also
//! enforced by `xtask bench-floors`); quick scale is the CI smoke and
//! leaves the floor null.
//!
//! Everything is seeded: the report is bitwise identical across runs
//! and thread counts (see `tests/upskilling_eval.rs`).

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::upskilling::{evaluate_upskilling, DomainReport, UpskillEvalConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_learners: usize,
    max_actions: usize,
    threads: usize,
    train_seconds_total: f64,
    eval_seconds_total: f64,
    domains: Vec<DomainReport>,
    /// Minimum per-domain adaptive-over-static speedup (the floors
    /// contract key: higher is better).
    speedup: f64,
    /// Floor on `speedup` (enforced by `xtask bench-floors`); null at
    /// quick scale.
    acceptance_floor: Option<f64>,
}

/// One benchmark domain: a synthetic population plus its label.
fn domains(scale: Scale) -> Vec<(String, SyntheticConfig)> {
    let factor = scale.synthetic_factor();
    // Learners never see the generator's logged sequences — the base
    // population only trains the emission model — so the domain knobs
    // that matter here are the item inventory and level structure.
    vec![
        (
            "synthetic-sparse".to_string(),
            SyntheticConfig::scaled(factor, false, 401),
        ),
        (
            "synthetic-dense".to_string(),
            SyntheticConfig::scaled(factor, true, 402),
        ),
    ]
}

fn eval_config(scale: Scale, n_levels: usize, threads: usize) -> UpskillEvalConfig {
    let mut cfg = UpskillEvalConfig::hybrid(n_levels);
    cfg.threads = threads;
    cfg.n_learners = match scale {
        Scale::Quick => 12,
        Scale::Default => 48,
        Scale::Paper => 96,
    };
    cfg.learner.max_actions = match scale {
        Scale::Quick => 150,
        _ => 300,
    };
    cfg.learner.seed = 0xAD_0B;
    cfg.train = TrainConfig::new(n_levels)
        .with_min_init_actions(10)
        .with_max_iterations(3)
        .with_lambda(0.01);
    cfg
}

fn main() {
    let scale = Scale::from_env();
    banner("Closed-loop upskilling: adaptive policy vs static bands");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut reports: Vec<DomainReport> = Vec::new();
    let mut train_seconds = 0.0;
    let mut eval_seconds = 0.0;
    for (name, domain) in domains(scale) {
        let t0 = Instant::now();
        let data = generate(&domain).expect("domain data");
        let cfg = eval_config(scale, domain.n_levels, threads);
        train_seconds += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let report = evaluate_upskilling(&data.dataset, &name, &cfg).expect("evaluation");
        eval_seconds += t1.elapsed().as_secs_f64();
        eprintln!(
            "{name}: static median {:.1} vs adaptive median {:.1} (speedup {:.2}x, reached {}/{} vs {}/{})",
            report.static_arm.median_actions,
            report.adaptive_arm.median_actions,
            report.speedup,
            report.static_arm.reached,
            report.static_arm.n_learners,
            report.adaptive_arm.reached,
            report.adaptive_arm.n_learners,
        );
        reports.push(report);
    }

    let speedup = reports
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let floor = match scale {
        Scale::Quick => None,
        // The adaptive arm must genuinely upskill faster than the
        // static band recommendation on *every* domain.
        _ => Some(1.0),
    };

    let mut table = TextTable::new(&["domain", "static med", "adaptive med", "speedup"]);
    for r in &reports {
        table.row(vec![
            r.name.clone(),
            format!("{:.1}", r.static_arm.median_actions),
            format!("{:.1}", r.adaptive_arm.median_actions),
            format!("{:.2}x", r.speedup),
        ]);
    }
    table.print();
    println!("\nminimum speedup over domains: {speedup:.3}");

    let cfg = eval_config(scale, 5, threads);
    write_report(
        "BENCH_policy",
        &Report {
            scale: format!("{scale:?}"),
            n_learners: cfg.n_learners,
            max_actions: cfg.learner.max_actions,
            threads,
            train_seconds_total: train_seconds,
            eval_seconds_total: eval_seconds,
            domains: reports,
            speedup,
            acceptance_floor: floor,
        },
    );

    if let Some(floor) = floor {
        if speedup < floor {
            eprintln!("ERROR: adaptive speedup {speedup:.3} below floor {floor:.3}");
            std::process::exit(1);
        }
    }
}
