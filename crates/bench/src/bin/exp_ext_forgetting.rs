//! Extension experiment (paper §VII): skill decay after long breaks.
//!
//! Generates a synthetic scenario where users' true skill drops after long
//! inactivity gaps (Ebbinghaus-style), trains the standard monotone model,
//! then compares skill recovery between:
//!
//! 1. the **monotone DP** (the paper's base assumption, which cannot
//!    represent decay), and
//! 2. the **forgetting-aware DP** (`upskill_core::forgetting`), which
//!    allows one-level drops across gaps with a retention-curve
//!    probability.
//!
//! Expected shape: on decay-free data the two agree; on decaying data the
//! forgetting DP recovers the non-monotone truth better.

use serde::Serialize;
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::assign::assign_sequence;
use upskill_core::forgetting::{assign_sequence_with_forgetting, ForgettingConfig};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::forgetting::{generate, ForgettingScenarioConfig};
use upskill_eval::{pearson, rmse};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_decays: usize,
    monotone_r: f64,
    monotone_rmse: f64,
    forgetting_r: f64,
    forgetting_rmse: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner("Extension (§VII): forgetting-aware skill assignment");

    let cfg = match scale {
        Scale::Quick => ForgettingScenarioConfig {
            n_users: 60,
            n_items: 250,
            ..ForgettingScenarioConfig::default_scale(42)
        },
        _ => ForgettingScenarioConfig::default_scale(42),
    };
    let scenario = generate(&cfg).expect("scenario generation");
    println!(
        "scenario: {} users, {} items, {} actions, {} decay events",
        scenario.dataset.n_users(),
        scenario.dataset.n_items(),
        scenario.dataset.n_actions(),
        scenario.n_decays
    );

    // Train the standard model (it still learns what each level looks
    // like; only the *assignment* differs between the two DPs).
    let result = train(
        &scenario.dataset,
        &TrainConfig::new(cfg.n_levels).with_min_init_actions(40),
    )
    .expect("training");

    let truth = scenario.flat_true_skills();
    let fcfg = ForgettingConfig {
        halflife: cfg.break_length as f64 / 5.0,
        max_decay: 0.45,
        advance_prob: 0.3,
    };

    let mut monotone_pred = Vec::with_capacity(truth.len());
    let mut forgetting_pred = Vec::with_capacity(truth.len());
    for seq in scenario.dataset.sequences() {
        let mono =
            assign_sequence(&result.model, &scenario.dataset, seq).expect("monotone assignment");
        let forg = assign_sequence_with_forgetting(&result.model, &fcfg, &scenario.dataset, seq)
            .expect("forgetting assignment");
        monotone_pred.extend(mono.levels.iter().map(|&s| s as f64));
        forgetting_pred.extend(forg.levels.iter().map(|&s| s as f64));
    }

    let monotone_r = pearson(&monotone_pred, &truth).expect("r");
    let forgetting_r = pearson(&forgetting_pred, &truth).expect("r");
    let monotone_rmse = rmse(&monotone_pred, &truth).expect("rmse");
    let forgetting_rmse = rmse(&forgetting_pred, &truth).expect("rmse");

    let mut table = TextTable::new(&["Assignment DP", "Pearson r", "RMSE"]);
    table.row(vec![
        "monotone (paper base)".into(),
        f3(monotone_r),
        f3(monotone_rmse),
    ]);
    table.row(vec![
        "forgetting-aware (§VII)".into(),
        f3(forgetting_r),
        f3(forgetting_rmse),
    ]);
    table.print();

    println!("\nShape check (extension):");
    println!(
        "  forgetting DP recovers decaying skills better: {} (r {:.3} vs {:.3})",
        forgetting_r > monotone_r,
        forgetting_r,
        monotone_r
    );
    write_report(
        "ext_forgetting",
        &Report {
            scale: format!("{scale:?}"),
            n_decays: scenario.n_decays,
            monotone_r,
            monotone_rmse,
            forgetting_r,
            forgetting_rmse,
        },
    );
}
