//! Ablation: the initialization threshold `N` (minimum actions for a user
//! to join the uniform-segmentation initialization; the paper uses 50,
//! following Shin et al.).
//!
//! Expected shape: very small `N` pollutes the initial parameters with
//! short sequences that cannot have traversed all levels; very large `N`
//! starves the initializer of data; a broad middle plateau contains 50.

use serde::Serialize;
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::pearson;

#[derive(Serialize)]
struct Report {
    scale: String,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    min_init_actions: usize,
    pearson_r: Option<f64>,
    n_init_users: usize,
    error: Option<String>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation: initialization threshold N");

    let cfg = SyntheticConfig::scaled(scale.synthetic_factor() * 2, false, 42);
    let data = generate(&cfg).expect("synthetic generation");
    let truth = data.flat_true_skills();

    let mut rows = Vec::new();
    let mut table = TextTable::new(&["N", "#init users", "Pearson r", "note"]);
    for n in [1usize, 5, 10, 25, 40, 50, 60, 80, 200] {
        let n_init = data
            .dataset
            .sequences()
            .iter()
            .filter(|s| s.len() >= n)
            .count();
        let train_cfg = TrainConfig::new(cfg.n_levels).with_min_init_actions(n);
        match train(&data.dataset, &train_cfg) {
            Ok(result) => {
                let pred: Vec<f64> = result
                    .assignments
                    .per_user
                    .iter()
                    .flat_map(|s| s.iter().map(|&x| x as f64))
                    .collect();
                let r = pearson(&pred, &truth).unwrap_or(f64::NAN);
                table.row(vec![
                    n.to_string(),
                    n_init.to_string(),
                    f3(r),
                    String::new(),
                ]);
                rows.push(Row {
                    min_init_actions: n,
                    pearson_r: Some(r),
                    n_init_users: n_init,
                    error: None,
                });
            }
            Err(e) => {
                table.row(vec![
                    n.to_string(),
                    n_init.to_string(),
                    "-".into(),
                    e.to_string(),
                ]);
                rows.push(Row {
                    min_init_actions: n,
                    pearson_r: None,
                    n_init_users: n_init,
                    error: Some(e.to_string()),
                });
            }
        }
    }
    table.print();

    let r_at = |n: usize| {
        rows.iter()
            .find(|r| r.min_init_actions == n)
            .and_then(|r| r.pearson_r)
            .unwrap_or(f64::NAN)
    };
    println!("\nShape check (ablation):");
    println!(
        "  paper's N = 50 within 0.05 of the sweep's best: {}",
        rows.iter()
            .filter_map(|r| r.pearson_r)
            .fold(f64::NEG_INFINITY, f64::max)
            - r_at(50)
            < 0.05
    );
    write_report(
        "ablation_init_threshold",
        &Report {
            scale: format!("{scale:?}"),
            rows,
        },
    );
}
