//! Figure 5 — model components learned for the cooking domain.
//!
//! Trains the S = 5 multi-faceted model on the Cooking data and reports
//! the per-level cooking-time class distributions and step-count means.
//! Expected shape (paper §VI-C): levels 2–4 show increasing complexity,
//! while the *lowest* level resembles the mid levels — novices over-reach.

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::analysis::level_means;
use upskill_core::dist::FeatureDistribution;
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::cooking::{self, features, generate, CookingConfig, TIME_CLASSES};

#[derive(Serialize)]
struct Report {
    scale: String,
    /// `time_probs[s-1][class]` = P(time class | level s).
    time_probs: Vec<Vec<f64>>,
    step_means: Vec<f64>,
    ingredient_means: Vec<f64>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 5: cooking-domain model components");

    let cfg = match scale {
        Scale::Quick => CookingConfig::test_scale(42),
        _ => CookingConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("cooking generation");
    let train_cfg = TrainConfig::new(cooking::COOKING_LEVELS).with_min_init_actions(50);
    let result = train(&data.dataset, &train_cfg).expect("training");

    // Fig. 5a: time-class distributions per level.
    let mut time_probs = Vec::new();
    println!("Fig. 5a — cooking-time class probabilities per level:");
    let mut ta = TextTable::new(
        &std::iter::once("Level")
            .chain(TIME_CLASSES.iter().copied())
            .collect::<Vec<_>>(),
    );
    for s in result.model.levels() {
        let cell = result.model.cell(s, features::TIME).expect("cell");
        let FeatureDistribution::Categorical(dist) = cell else {
            panic!("time feature should be categorical")
        };
        let probs: Vec<f64> = dist.probs().to_vec();
        let mut row = vec![format!("s={s}")];
        row.extend(probs.iter().map(|p| format!("{p:.3}")));
        ta.row(row);
        time_probs.push(probs);
    }
    ta.print();

    let step_means = level_means(&result.model, features::N_STEPS).expect("means");
    let ingredient_means = level_means(&result.model, features::N_INGREDIENTS).expect("means");
    println!("\nFig. 5b — step-count mean per level:");
    println!(
        "  {:?}",
        step_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );
    println!("      — ingredient-count mean per level:");
    println!(
        "  {:?}",
        ingredient_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );

    // Shape checks. (1) Complexity increases from s=2 upward. (2) The
    // over-reach anomaly: in the *data*, ground-truth novices select more
    // complex recipes than level-2 users; in the *learned model*, the
    // lowest level inherits a heavy tail of long-cooking-time recipes
    // (the paper reports the full level-1 distributions resembling the
    // mid levels; on our simulator the residue shows up as the tail —
    // see EXPERIMENTS.md for the discussion).
    let increasing_2_to_5 = step_means.windows(2).skip(1).all(|w| w[1] >= w[0] - 0.5);
    let mut complexity_by_level = [(0.0f64, 0usize); cooking::COOKING_LEVELS];
    for (seq, skills) in data.dataset.sequences().iter().zip(&data.true_skills) {
        for (action, &s) in seq.actions().iter().zip(skills) {
            let cell = &mut complexity_by_level[s as usize - 1];
            cell.0 += data.recipe_complexity[action.item as usize] as f64;
            cell.1 += 1;
        }
    }
    let mean_complexity =
        |lvl: usize| complexity_by_level[lvl].0 / complexity_by_level[lvl].1.max(1) as f64;
    let data_overreach = mean_complexity(0) > mean_complexity(1);
    let long_tail = |row: &[f64]| row[4..].iter().sum::<f64>(); // ≥ ~2 hours
    let model_tail = long_tail(&time_probs[0]) > long_tail(&time_probs[1]);
    println!("\nShape check vs. paper Fig. 5:");
    println!("  complexity increases from s=2 to s=5: {increasing_2_to_5}");
    println!(
        "  data-level over-reach (true novices select above true level-2 \
         users): {data_overreach} (mean complexity {:.2} vs {:.2})",
        mean_complexity(0),
        mean_complexity(1)
    );
    println!(
        "  learned level 1 carries a heavier long-cooking-time tail than \
         level 2: {model_tail} ({:.3} vs {:.3} mass at >= ~2 hours)",
        long_tail(&time_probs[0]),
        long_tail(&time_probs[1])
    );

    write_report(
        "fig05_cooking",
        &Report {
            scale: format!("{scale:?}"),
            time_probs,
            step_means,
            ingredient_means,
        },
    );
}
