//! Figure 3 — selecting the number of skill levels for the cooking domain.
//!
//! Runs the paper's §VI-B procedure: split the Cooking data 90/10, train a
//! model per candidate `S`, and report the held-out log-likelihood per
//! action. The paper's curve peaks at S = 5.

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::model_selection::{best_skill_count, sweep_skill_counts};
use upskill_core::train::TrainConfig;
use upskill_datasets::cooking::{generate, CookingConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    candidates: Vec<Candidate>,
    best: Option<usize>,
}

#[derive(Serialize)]
struct Candidate {
    n_levels: usize,
    heldout_ll: f64,
    heldout_ll_per_action: f64,
    n_scored: usize,
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 3: held-out log-likelihood vs number of skill levels (Cooking)");

    let cfg = match scale {
        Scale::Quick => CookingConfig::test_scale(42),
        _ => CookingConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("cooking generation");
    eprintln!(
        "cooking data: {} users, {} recipes, {} actions",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );
    let base = TrainConfig::new(5).with_min_init_actions(50);
    let candidates: Vec<usize> = (2..=8).collect();
    let sweep = sweep_skill_counts(&data.dataset, &candidates, &base, 0.1, 7).expect("sweep");

    let mut table = TextTable::new(&["S", "held-out LL", "LL per action", "#scored"]);
    for c in &sweep {
        table.row(vec![
            c.n_levels.to_string(),
            format!("{:.1}", c.heldout_ll),
            format!("{:.4}", c.heldout_ll_per_action),
            c.n_scored.to_string(),
        ]);
    }
    table.print();
    let best = best_skill_count(&sweep);
    println!("\nSelected S = {best:?} (paper: the curve peaks at S = 5)");

    write_report(
        "fig03_skill_count",
        &Report {
            scale: format!("{scale:?}"),
            candidates: sweep
                .iter()
                .map(|c| Candidate {
                    n_levels: c.n_levels,
                    heldout_ll: c.heldout_ll,
                    heldout_ll_per_action: c.heldout_ll_per_action,
                    n_scored: c.n_scored,
                })
                .collect(),
            best,
        },
    );
}
