//! Table VII — accuracy of item-difficulty estimation on the Synthetic
//! dataset, plus the rare-item robustness analysis (§VI-D).
//!
//! Combines the Uniform/ID/Multi-faceted skill models with the
//! Assignment/Uniform/Empirical difficulty estimators (Uniform × generation
//! combinations are undefined, as in the paper) and scores against the
//! ground-truth difficulty. Also reports RMSE restricted to rare items
//! (selected fewer than 3 times), where the generation-based estimators
//! should be markedly more robust than the assignment-based one.

use serde::Serialize;
use upskill_bench::synthetic_eval::{
    difficulty_accuracy_table, train_variant, DifficultyAccuracyRow, SkillVariant,
};
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    rare_threshold: u32,
    n_rare_items: usize,
    rows: Vec<DifficultyAccuracyRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Table VII: difficulty-estimation accuracy (Synthetic)");

    let cfg = SyntheticConfig::scaled(scale.synthetic_factor(), false, 42);
    eprintln!(
        "generating synthetic data ({} users, {} items)...",
        cfg.n_users, cfg.n_items
    );
    let data = generate(&cfg).expect("synthetic generation");
    let train_cfg = TrainConfig::new(cfg.n_levels).with_min_init_actions(50);

    let trained: Vec<_> = SkillVariant::difficulty_trio()
        .into_iter()
        .map(|v| {
            eprintln!("  training {} ...", v.name());
            train_variant(&data, v, &train_cfg).expect("training")
        })
        .collect();

    let rare_threshold = 3;
    let rows = difficulty_accuracy_table(&data, &trained, rare_threshold).expect("evaluation");
    let n_rare = data
        .dataset
        .item_support()
        .iter()
        .filter(|&&s| s < rare_threshold)
        .count();

    let mut table = TextTable::new(&[
        "Skill",
        "Difficulty",
        "Pearson r",
        "95% CI",
        "Spearman",
        "Kendall",
        "RMSE",
        "Rare RMSE",
    ]);
    for r in &rows {
        table.row(vec![
            r.skill_model.clone(),
            r.difficulty_model.clone(),
            f3(r.pearson),
            format!("[{}, {}]", f3(r.pearson_ci.0), f3(r.pearson_ci.1)),
            f3(r.spearman),
            f3(r.kendall),
            f3(r.rmse),
            r.rare_rmse.map(f3).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.print();
    println!("\n({n_rare} rare items with support < {rare_threshold})");

    let find = |s: &str, d: &str| {
        rows.iter()
            .find(|r| r.skill_model == s && r.difficulty_model == d)
            .expect("row")
    };
    let mf_assign = find("Multi-faceted", "Assignment");
    let mf_emp = find("Multi-faceted", "Empirical");
    let id_emp = find("ID", "Empirical");
    let uni = find("Uniform", "Assignment");
    println!("\nShape check vs. paper Table VII:");
    println!(
        "  Uniform < ID < Multi-faceted (Pearson): {} ({:.3} < {:.3} < {:.3})",
        uni.pearson < id_emp.pearson && id_emp.pearson < mf_emp.pearson,
        uni.pearson,
        id_emp.pearson,
        mf_emp.pearson
    );
    println!(
        "  MF+Empirical beats MF+Assignment (RMSE): {} ({:.3} vs {:.3})",
        mf_emp.rmse < mf_assign.rmse,
        mf_emp.rmse,
        mf_assign.rmse
    );
    if let (Some(ra), Some(re)) = (mf_assign.rare_rmse, mf_emp.rare_rmse) {
        println!(
            "  Rare items: generation-based more robust than assignment-based: {} \
             ({:.3} vs {:.3})",
            re < ra,
            re,
            ra
        );
    }
    write_report(
        "table07_difficulty_accuracy",
        &Report {
            scale: format!("{scale:?}"),
            rare_threshold,
            n_rare_items: n_rare,
            rows,
        },
    );
}
