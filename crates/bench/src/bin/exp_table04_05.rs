//! Tables IV & V — top-10 frequent movies for the extreme skill levels,
//! without (Table IV) and with (Table V) the lastness-effect preprocessing.
//!
//! Expected shape (paper §VI-C): without preprocessing, the model confuses
//! temporal drift with skill — the "high skill" list fills with recently
//! released movies. With the fix (drop movies released after the earliest
//! action), the lists separate by appeal instead: light blockbusters at
//! the lowest level, classics at the highest.

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::predict::top_items_for_level;
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::film::{self, features, generate, FilmConfig, FilmData, MovieClass};

#[derive(Serialize)]
struct Report {
    scale: String,
    without_fix: Lists,
    with_fix: Lists,
}

#[derive(Serialize)]
struct Lists {
    lowest: Vec<(String, i32)>,
    highest: Vec<(String, i32)>,
    mean_year_lowest: f64,
    mean_year_highest: f64,
    classic_fraction_highest: f64,
}

fn top_lists(data: &FilmData, label: &str) -> Lists {
    // The lastness preprocessing can shorten sequences dramatically at
    // small scales; adapt the initialization threshold so at least the
    // longest sequences qualify.
    let max_len = data
        .dataset
        .sequences()
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1);
    let train_cfg = TrainConfig::new(film::FILM_LEVELS).with_min_init_actions(50.min(max_len));
    let result = train(&data.dataset, &train_cfg).expect("training");
    let top = |level: u8| -> Vec<(String, i32)> {
        top_items_for_level(&result.model, features::ID, level, 10)
            .expect("ranking")
            .into_iter()
            .map(|(item, _)| {
                (
                    data.titles[item as usize].clone(),
                    data.release_years[item as usize],
                )
            })
            .collect()
    };
    let lowest = top(1);
    let highest = top(film::FILM_LEVELS as u8);
    let mean_year = |list: &[(String, i32)]| {
        list.iter().map(|(_, y)| *y as f64).sum::<f64>() / list.len().max(1) as f64
    };
    let classic_fraction = {
        let ids: Vec<u32> =
            top_items_for_level(&result.model, features::ID, film::FILM_LEVELS as u8, 10)
                .expect("ranking")
                .into_iter()
                .map(|(i, _)| i)
                .collect();
        ids.iter()
            .filter(|&&i| data.classes[i as usize] == MovieClass::Classic)
            .count() as f64
            / ids.len().max(1) as f64
    };

    println!("\n--- {label} ---");
    println!("Top 10 movies, lowest skill level:");
    let mut ta = TextTable::new(&["Title", "Year"]);
    for (t, y) in &lowest {
        ta.row(vec![t.clone(), y.to_string()]);
    }
    ta.print();
    println!("\nTop 10 movies, highest skill level:");
    let mut tb = TextTable::new(&["Title", "Year"]);
    for (t, y) in &highest {
        tb.row(vec![t.clone(), y.to_string()]);
    }
    tb.print();

    Lists {
        mean_year_lowest: mean_year(&lowest),
        mean_year_highest: mean_year(&highest),
        classic_fraction_highest: classic_fraction,
        lowest,
        highest,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Tables IV & V: top movies per skill level, lastness effect");

    let mut cfg = match scale {
        Scale::Quick => FilmConfig::test_scale(42),
        _ => FilmConfig::default_scale(42),
    };

    cfg.apply_lastness_fix = false;
    let raw = generate(&cfg).expect("film generation");
    let without_fix = top_lists(&raw, "Table IV: WITHOUT lastness preprocessing");

    cfg.apply_lastness_fix = true;
    // The preprocessing removes every post-window movie and with it a large
    // share of each user's actions; relax the support filter accordingly so
    // the surviving data stays comparable (the paper's MovieLens snapshot
    // had a decade of pre-window history, ours is fully simulated).
    cfg.support.min_unique_items_per_user = (cfg.support.min_unique_items_per_user / 3).max(3);
    cfg.support.min_unique_users_per_item = (cfg.support.min_unique_users_per_item / 3).max(2);
    let fixed = generate(&cfg).expect("film generation");
    let with_fix = top_lists(&fixed, "Table V: WITH lastness preprocessing");

    println!("\nShape check vs. paper Tables IV/V:");
    println!(
        "  without fix, high-skill list skews to recent releases: {} \
         (mean year {:.0} vs {:.0} at the lowest level)",
        without_fix.mean_year_highest > without_fix.mean_year_lowest,
        without_fix.mean_year_highest,
        without_fix.mean_year_lowest
    );
    println!(
        "  with fix, the recency skew collapses: {} (mean year gap {:.1} vs {:.1})",
        (with_fix.mean_year_highest - with_fix.mean_year_lowest)
            < (without_fix.mean_year_highest - without_fix.mean_year_lowest),
        with_fix.mean_year_highest - with_fix.mean_year_lowest,
        without_fix.mean_year_highest - without_fix.mean_year_lowest
    );
    println!(
        "  with fix, classics dominate the high-skill list: {} \
         ({:.0}% classics vs {:.0}% without the fix)",
        with_fix.classic_fraction_highest >= without_fix.classic_fraction_highest,
        100.0 * with_fix.classic_fraction_highest,
        100.0 * without_fix.classic_fraction_highest
    );

    write_report(
        "table04_05_film",
        &Report {
            scale: format!("{scale:?}"),
            without_fix,
            with_fix,
        },
    );
}
