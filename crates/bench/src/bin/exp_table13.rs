//! Table XIII — running time of skill-model training under different
//! parallelization conditions on the Film dataset (§IV-C, §VI-F).
//!
//! Trains the ID and Multi-faceted models with every combination of the
//! three parallelization techniques (user-parallel assignment,
//! feature-parallel update, skill-parallel update) on 5 worker threads,
//! mirroring the paper's Table XIII rows. Note: this host has a single
//! CPU core, so wall-clock speedups are bounded; the *relative* ordering
//! (Multi-faceted ≫ ID sequentially; user-parallel the most effective
//! technique on multicore hardware) is the property under test, and the
//! iteration counts are reported so runs can be compared per-iteration.

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::baselines::to_id_dataset;
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_datasets::film::{generate, FilmConfig, FILM_LEVELS};

#[derive(Serialize)]
struct Report {
    scale: String,
    threads: usize,
    host_cores: usize,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    users: bool,
    features: bool,
    skills: bool,
    emission: bool,
    incremental: bool,
    id_seconds: f64,
    multi_seconds: f64,
    id_iterations: usize,
    multi_iterations: usize,
}

fn main() {
    let scale = Scale::from_env();
    banner("Table XIII: training time vs parallelization (Film)");

    let cfg = match scale {
        Scale::Quick => FilmConfig::test_scale(42),
        _ => FilmConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("film generation");
    let id_view = to_id_dataset(&data.dataset).expect("projection");
    eprintln!(
        "film data: {} users, {} movies, {} actions",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );
    let train_cfg = TrainConfig::new(FILM_LEVELS).with_min_init_actions(50);
    let threads = 5;

    // (users, features, skills, emission, incremental) rows in the paper's
    // order. The paper's "feature-parallel ID" cell is N/A (one feature);
    // we run it anyway (it degenerates to sequential). The first row
    // disables both single-core optimizations (shared emission table,
    // incremental statistics); rows 2–3 enable them one at a time so each
    // contribution is quantified independent of thread count (they are the
    // only techniques that pay off on one core).
    let conditions = [
        (false, false, false, false, false),
        (false, false, false, true, false),
        (false, false, false, true, true),
        (true, false, false, true, true),
        (false, true, false, true, true),
        (false, false, true, true, true),
        (true, true, true, true, true),
    ];

    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "User",
        "Feature",
        "Skill",
        "Emission",
        "Incr",
        "ID (s)",
        "Multi-faceted (s)",
        "iters (ID/MF)",
    ]);
    for (users, features, skills, emission, incremental) in conditions {
        let pc = ParallelConfig::sequential()
            .with_users(users)
            .with_skills(skills)
            .with_features(features)
            .with_threads(threads)
            .with_emission(emission)
            .with_incremental(incremental);
        eprintln!(
            "  condition users={users} features={features} skills={skills} \
             emission={emission} incremental={incremental} ..."
        );
        let t0 = Instant::now();
        let id_result = train_with_parallelism(&id_view, &train_cfg, &pc).expect("ID");
        let id_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let multi_result = train_with_parallelism(&data.dataset, &train_cfg, &pc).expect("multi");
        let multi_secs = t1.elapsed().as_secs_f64();
        let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
        table.row(vec![
            mark(users),
            mark(features),
            mark(skills),
            mark(emission),
            mark(incremental),
            format!("{id_secs:.2}"),
            format!("{multi_secs:.2}"),
            format!("{}/{}", id_result.trace.len(), multi_result.trace.len()),
        ]);
        rows.push(Row {
            users,
            features,
            skills,
            emission,
            incremental,
            id_seconds: id_secs,
            multi_seconds: multi_secs,
            id_iterations: id_result.trace.len(),
            multi_iterations: multi_result.trace.len(),
        });
    }
    table.print();

    let seq = &rows[0];
    println!("\nShape check vs. paper Table XIII:");
    println!(
        "  Multi-faceted costs more than ID sequentially: {} ({:.2}s vs {:.2}s — \
         the paper reports 9.56h vs 0.94h at full scale)",
        seq.multi_seconds > seq.id_seconds,
        seq.multi_seconds,
        seq.id_seconds
    );
    let cached = &rows[1];
    println!(
        "  Shared emission table speeds up sequential Multi-faceted training: \
         {} ({:.2}s direct vs {:.2}s cached)",
        cached.multi_seconds < seq.multi_seconds,
        seq.multi_seconds,
        cached.multi_seconds
    );
    let incr = &rows[2];
    println!(
        "  Incremental statistics speed it up further: \
         {} ({:.2}s full-rescan vs {:.2}s incremental)",
        incr.multi_seconds < cached.multi_seconds,
        cached.multi_seconds,
        incr.multi_seconds
    );
    println!(
        "  (single-core host: parallel rows measure overhead, not speedup; \
         see EXPERIMENTS.md)"
    );
    write_report(
        "table13_parallel_training",
        &Report {
            scale: format!("{scale:?}"),
            threads,
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rows,
        },
    );
}
