//! Ablation: the categorical smoothing pseudo-count λ (paper default 0.01,
//! following Shin et al.). Sweeps λ and reports Table VI-style skill
//! accuracy on the Synthetic dataset.
//!
//! Findings on the synthetic benchmark: λ = 0 fails outright (the
//! zero-frequency problem smoothing exists to fix — the trainer reports a
//! clean error), and *heavier* smoothing actually improves skill recovery
//! on sparse data: large λ pushes the high-cardinality item-ID feature's
//! per-level distributions toward uniform, muting its noise and letting
//! the informative shared features dominate — an independent confirmation
//! of the paper's data-sparsity argument for multi-faceted features.

use serde::Serialize;
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::pearson;

#[derive(Serialize)]
struct Report {
    scale: String,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    lambda: f64,
    pearson_r: Option<f64>,
    iterations: Option<usize>,
    error: Option<String>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation: categorical smoothing pseudo-count lambda");

    let cfg = SyntheticConfig::scaled(scale.synthetic_factor() * 2, false, 42);
    let data = generate(&cfg).expect("synthetic generation");
    let truth = data.flat_true_skills();

    let mut rows = Vec::new();
    let mut table = TextTable::new(&["lambda", "Pearson r", "iterations", "note"]);
    for lambda in [0.0, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0] {
        let train_cfg = TrainConfig::new(cfg.n_levels)
            .with_min_init_actions(40)
            .with_lambda(lambda);
        match train(&data.dataset, &train_cfg) {
            Ok(result) => {
                let pred: Vec<f64> = result
                    .assignments
                    .per_user
                    .iter()
                    .flat_map(|s| s.iter().map(|&x| x as f64))
                    .collect();
                let r = pearson(&pred, &truth).unwrap_or(f64::NAN);
                table.row(vec![
                    format!("{lambda}"),
                    f3(r),
                    result.trace.len().to_string(),
                    String::new(),
                ]);
                rows.push(Row {
                    lambda,
                    pearson_r: Some(r),
                    iterations: Some(result.trace.len()),
                    error: None,
                });
            }
            Err(e) => {
                table.row(vec![
                    format!("{lambda}"),
                    "-".into(),
                    "-".into(),
                    e.to_string(),
                ]);
                rows.push(Row {
                    lambda,
                    pearson_r: None,
                    iterations: None,
                    error: Some(e.to_string()),
                });
            }
        }
    }
    table.print();

    let r_at = |l: f64| {
        rows.iter()
            .find(|r| r.lambda == l)
            .and_then(|r| r.pearson_r)
            .unwrap_or(f64::NAN)
    };
    println!("\nShape check (ablation):");
    println!(
        "  lambda = 0 fails with a clean zero-frequency error: {}",
        rows.iter()
            .any(|r| upskill_core::float_cmp::is_zero(r.lambda) && r.error.is_some())
    );
    println!(
        "  heavier smoothing damps the noisy ID feature and *helps* on \
         sparse data: {} (r {:.3} at 10 vs {:.3} at the paper default 0.01) \
         — an independent confirmation of the sparsity argument for \
         multi-faceted features",
        r_at(10.0) > r_at(0.01),
        r_at(10.0),
        r_at(0.01)
    );
    write_report(
        "ablation_smoothing",
        &Report {
            scale: format!("{scale:?}"),
            rows,
        },
    );
}
