//! Streaming-ingestion benchmark — folding a fresh batch of actions into
//! a trained model via `StreamingSession::ingest_batch` + one refit, vs.
//! retraining from scratch on the concatenated dataset.
//!
//! Workload: 500 users × 100 mean actions over 200 items, S=5. Each
//! user's sequence is split 90/10; the model is trained on the 90%
//! prefixes and the remaining 10% of actions (globally time-ordered)
//! arrive as the streamed batch. Retraining re-runs the full coordinate
//! ascent; the session extends each user's monotone path with O(1) work
//! per action, applies exact `+1` histogram deltas, and refits only the
//! dirty skill levels once at the end.
//!
//! The two paths answer the same question differently — retraining may
//! re-segment history, streaming commits its past — so besides the
//! speedup the report records an exactness check (the streamed model must
//! equal the closed-form fit of the streamed assignments bitwise) and the
//! per-action log-likelihood gap between the two solutions.

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::emission::EmissionTable;
use upskill_core::incremental::StatsGrid;
use upskill_core::parallel::ParallelConfig;
use upskill_core::streaming::{RefitPolicy, StreamingSession};
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::types::{Action, ActionSequence, Dataset};
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    n_actions: usize,
    n_suffix_actions: usize,
    prefix_fraction: f64,
    repeats: usize,
    full_retrain_seconds_median: f64,
    streaming_fold_seconds_median: f64,
    speedup_fold_vs_retrain: f64,
    refit_exact: bool,
    assignments_monotone: bool,
    levels_refit: usize,
    full_ll_per_action: f64,
    streaming_ll_per_action: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Splits each user's sequence into a 90% prefix dataset and the
/// remaining actions as one globally time-ordered batch.
fn split_prefix(dataset: &Dataset, fraction: f64) -> (Dataset, Vec<Action>) {
    let items: Vec<_> = (0..dataset.n_items())
        .map(|i| dataset.item_features(i as u32).to_vec())
        .collect();
    let mut prefixes = Vec::with_capacity(dataset.n_users());
    let mut suffix = Vec::new();
    for seq in dataset.sequences() {
        let n = seq.actions().len();
        let cut = (((n as f64) * fraction).ceil() as usize).clamp(1, n);
        prefixes
            .push(ActionSequence::new(seq.user, seq.actions()[..cut].to_vec()).expect("prefix"));
        suffix.extend_from_slice(&seq.actions()[cut..]);
    }
    // Stable by-time sort preserves each user's internal order.
    suffix.sort_by_key(|a| a.time);
    let prefix_ds =
        Dataset::new(dataset.schema().clone(), items, prefixes).expect("prefix dataset");
    (prefix_ds, suffix)
}

fn main() {
    let scale = Scale::from_env();
    banner("Streaming ingestion: fold a batch vs retrain from scratch");

    let (n_users, mean_len, min_init, repeats) = match scale {
        Scale::Quick => (50, 30.0, 20, 3),
        _ => (500, 100.0, 30, 9),
    };
    let cfg = SyntheticConfig {
        n_users,
        n_items: 200,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    };
    let data = generate(&cfg).expect("generation");
    let train_cfg = TrainConfig::new(5).with_min_init_actions(min_init);
    let pc = ParallelConfig::sequential();
    let (prefix_ds, suffix) = split_prefix(&data.dataset, 0.9);
    eprintln!(
        "workload: {} users, {} items, {} actions ({} streamed), S=5",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions(),
        suffix.len()
    );

    let prefix_result =
        train_with_parallelism(&prefix_ds, &train_cfg, &pc).expect("prefix training");
    let base_session = StreamingSession::resume(
        prefix_ds,
        &prefix_result,
        train_cfg,
        pc,
        RefitPolicy::EveryBatch,
    )
    .expect("session");

    // Correctness pass (untimed): fold once under Manual so the explicit
    // refit reports how many levels were dirty, then check invariants.
    let mut session = base_session.clone();
    session.set_policy(RefitPolicy::Manual);
    session.ingest_batch(&suffix).expect("ingest");
    let levels_refit = session.refit().expect("refit");
    let monotone = session.assignments().is_monotone();
    let fresh_model = StatsGrid::build(session.dataset(), session.assignments(), 5)
        .expect("grid")
        .fit_model(session.dataset(), train_cfg.lambda)
        .expect("fit");
    // Bitwise parameter equality shows itself as emission-table equality.
    let refit_exact = EmissionTable::build(session.model(), session.dataset())
        == EmissionTable::build(&fresh_model, session.dataset());
    let full_result =
        train_with_parallelism(&data.dataset, &train_cfg, &pc).expect("full retraining");
    let streaming_ll = upskill_core::update::log_likelihood(
        session.dataset(),
        session.assignments(),
        session.model(),
    )
    .expect("log-likelihood");
    let per_action = |ll: f64| ll / data.dataset.n_actions() as f64;

    let mut retrain_s = Vec::with_capacity(repeats);
    let mut fold_s = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = train_with_parallelism(&data.dataset, &train_cfg, &pc).expect("full");
        retrain_s.push(t0.elapsed().as_secs_f64());
        assert!(r.assignments.is_monotone());

        let mut s = base_session.clone();
        let t1 = Instant::now();
        s.ingest_batch(&suffix).expect("fold");
        fold_s.push(t1.elapsed().as_secs_f64());
    }
    // Median of per-repeat ratios: the paths run back-to-back within a
    // repeat, so machine-load drift cancels out of each ratio.
    let mut ratios: Vec<f64> = retrain_s.iter().zip(&fold_s).map(|(f, s)| f / s).collect();
    let speedup = median(&mut ratios);
    let retrain_med = median(&mut retrain_s);
    let fold_med = median(&mut fold_s);

    let mut out = TextTable::new(&["Path", "Seconds", "LL / action"]);
    out.row(vec![
        "full retrain (coordinate ascent)".into(),
        format!("{retrain_med:.4}"),
        format!("{:.4}", per_action(full_result.log_likelihood)),
    ]);
    out.row(vec![
        "streaming fold (ingest + refit)".into(),
        format!("{fold_med:.4}"),
        format!("{:.4}", per_action(streaming_ll)),
    ]);
    out.print();
    println!("\nSpeedup (fold vs retrain): {speedup:.2}x (acceptance floor: 5x)");
    println!("Refit exact: {refit_exact}; assignments monotone: {monotone}");
    if !refit_exact || !monotone {
        eprintln!("ERROR: streaming fold diverged from the closed-form refit");
        std::process::exit(1);
    }

    write_report(
        "BENCH_streaming",
        &Report {
            scale: format!("{scale:?}"),
            n_users: data.dataset.n_users(),
            n_items: data.dataset.n_items(),
            n_levels: 5,
            mean_sequence_len: mean_len,
            n_actions: data.dataset.n_actions(),
            n_suffix_actions: suffix.len(),
            prefix_fraction: 0.9,
            repeats,
            full_retrain_seconds_median: retrain_med,
            streaming_fold_seconds_median: fold_med,
            speedup_fold_vs_retrain: speedup,
            refit_exact,
            assignments_monotone: monotone,
            levels_refit,
            full_ll_per_action: per_action(full_result.log_likelihood),
            streaming_ll_per_action: per_action(streaming_ll),
        },
    );
}
