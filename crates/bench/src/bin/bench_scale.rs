//! Out-of-core scale benchmark — the million-user path.
//!
//! Trains the hard coordinate-ascent model over the generate-and-fold
//! synthetic stream (`ChunkedSyntheticSource` + `train_chunked` with
//! `Recompute` storage) at a scale whose materialized corpus would not
//! fit comfortably in memory, and records:
//!
//! - **throughput** (actions × iterations / wall seconds) with an
//!   enforceable `acceptance_floor`;
//! - **peak RSS** (`VmHWM` from `/proc/self/status`) with an enforceable
//!   `rss_ceiling_bytes` — the flat-memory claim, checked against an
//!   estimate of what materializing the corpus would cost;
//! - a **bitwise cross-check** at a small scale where the in-memory
//!   sequential trainer is feasible: the chunked result must match it
//!   exactly (model, log-likelihood), or the binary exits non-zero.
//!
//! Scales: `UPSKILL_SCALE=quick` runs 10k users (the CI smoke); the
//! default and paper scales run the full 1M users × 100 mean actions.

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::chunked::{materialize, train_chunked, AssignmentStorage, ChunkSource};
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_datasets::chunked::ChunkedSyntheticSource;
use upskill_datasets::synthetic::SyntheticConfig;

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    chunk_size: usize,
    threads: usize,
    n_actions: usize,
    n_chunks: usize,
    iterations: usize,
    converged: bool,
    log_likelihood: f64,
    train_seconds: f64,
    throughput_actions_per_second: f64,
    /// Floor on `throughput_actions_per_second` (enforced by
    /// `xtask bench-floors`); null at quick scale.
    acceptance_floor: Option<f64>,
    peak_rss_bytes: Option<u64>,
    /// Ceiling on `peak_rss_bytes` (enforced by `xtask bench-floors`);
    /// null at quick scale.
    rss_ceiling_bytes: Option<u64>,
    /// What the action columns alone would cost if materialized
    /// (time + item per action) — the number the stream never pays.
    materialized_action_bytes_estimate: u64,
    crosscheck_users: usize,
    results_identical: bool,
}

/// High-water-mark resident set size from `/proc/self/status` (Linux);
/// `None` elsewhere.
fn peak_rss_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn synth(n_users: usize, n_items: usize, mean_len: f64, seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        n_users,
        n_items,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed,
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Out-of-core chunked training at scale");

    // quick = the CI smoke (10k users, seconds); default/paper = the
    // million-user acceptance workload.
    let (n_users, mean_len, n_items, chunk_size, max_iterations) = match scale {
        Scale::Quick => (10_000, 30.0, 2_500, 1_024, 3),
        _ => (1_000_000, 100.0, 50_000, 4_096, 4),
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let train_cfg = TrainConfig::new(5)
        .with_min_init_actions(30)
        .with_max_iterations(max_iterations)
        .with_lambda(0.01);
    let parallel = if threads > 1 {
        ParallelConfig::all(threads)
    } else {
        ParallelConfig::sequential()
    };

    // Small-scale bitwise cross-check first: same generator family, a
    // size where materializing is cheap. Chunked (parallel, Recompute)
    // must equal in-memory sequential exactly.
    let crosscheck_users = if scale == Scale::Quick { 1_000 } else { 2_000 };
    let small = synth(crosscheck_users, n_items.min(2_500), 40.0, 17);
    let small_source = ChunkedSyntheticSource::new(&small, 257).expect("small stream");
    let small_data = materialize(&small_source).expect("materialize");
    let expect = train_with_parallelism(&small_data, &train_cfg, &ParallelConfig::sequential())
        .expect("in-memory train");
    let got = train_chunked(
        &small_source,
        &train_cfg,
        &parallel,
        AssignmentStorage::Recompute,
    )
    .expect("chunked train");
    let identical = got.model == expect.model && got.log_likelihood == expect.log_likelihood;
    eprintln!("cross-check @ {crosscheck_users} users: chunked == in-memory: {identical}");

    // The scale run: the corpus exists only as per-chunk buffers.
    let cfg = synth(n_users, n_items, mean_len, 41);
    let t0 = Instant::now();
    let source = ChunkedSyntheticSource::new(&cfg, chunk_size).expect("stream");
    eprintln!(
        "stream ready in {:.1}s: {} users, {} actions, {} chunks of {chunk_size}",
        t0.elapsed().as_secs_f64(),
        source.n_users(),
        source.n_actions(),
        source.n_chunks()
    );
    let t1 = Instant::now();
    let result = train_chunked(&source, &train_cfg, &parallel, AssignmentStorage::Recompute)
        .expect("scale train");
    let train_seconds = t1.elapsed().as_secs_f64();
    let iterations = result.trace.len();
    let throughput = (result.n_actions as f64 * iterations as f64) / train_seconds.max(1e-9);
    let peak = peak_rss_bytes();
    let corpus_bytes = result.n_actions as u64 * 12; // i64 time + u32 item

    // Floors only bind at the acceptance scale: quick runs on tiny CI
    // boxes where neither number is meaningful.
    let (floor, ceiling) = match scale {
        Scale::Quick => (None, None),
        // 1M actions/s is ~10x below what a release build sustains here;
        // 1.5 GiB is ~8x below the ~12 GiB a materialized 100M-action
        // corpus (plus training state) would need.
        _ => (Some(1.0e6), Some(1_610_612_736u64)),
    };

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(vec!["users".into(), format!("{}", result.n_users)]);
    table.row(vec!["actions".into(), format!("{}", result.n_actions)]);
    table.row(vec!["chunks".into(), format!("{}", source.n_chunks())]);
    table.row(vec!["threads".into(), format!("{threads}")]);
    table.row(vec!["iterations".into(), format!("{iterations}")]);
    table.row(vec!["train (s)".into(), format!("{train_seconds:.2}")]);
    table.row(vec![
        "throughput (actions/s)".into(),
        format!("{throughput:.0}"),
    ]);
    table.row(vec![
        "peak RSS".into(),
        peak.map(|b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "materialized actions (est.)".into(),
        format!("{:.1} MiB", corpus_bytes as f64 / (1024.0 * 1024.0)),
    ]);
    table.print();
    println!("\nResults identical at cross-check scale: {identical}");

    write_report(
        "BENCH_scale",
        &Report {
            scale: format!("{scale:?}"),
            n_users: result.n_users,
            n_items,
            n_levels: 5,
            mean_sequence_len: mean_len,
            chunk_size,
            threads,
            n_actions: result.n_actions,
            n_chunks: source.n_chunks(),
            iterations,
            converged: result.converged,
            log_likelihood: result.log_likelihood,
            train_seconds,
            throughput_actions_per_second: throughput,
            acceptance_floor: floor,
            peak_rss_bytes: peak,
            rss_ceiling_bytes: ceiling,
            materialized_action_bytes_estimate: corpus_bytes,
            crosscheck_users,
            results_identical: identical,
        },
    );

    if !identical {
        eprintln!("ERROR: chunked training diverged from the in-memory path");
        std::process::exit(1);
    }
    if let (Some(floor), t) = (floor, throughput) {
        if t < floor {
            eprintln!("ERROR: throughput {t:.0} below floor {floor:.0}");
            std::process::exit(1);
        }
    }
    if let (Some(ceiling), Some(peak)) = (ceiling, peak) {
        if peak > ceiling {
            eprintln!("ERROR: peak RSS {peak} above ceiling {ceiling}");
            std::process::exit(1);
        }
    }
}
