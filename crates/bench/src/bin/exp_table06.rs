//! Table VI — accuracy of skill assignment on the Synthetic dataset.
//!
//! Trains the Uniform, ID, ID+categorical, ID+gamma, ID+Poisson, and
//! Multi-faceted skill models and scores their hard assignments against
//! the generator's ground-truth skill levels with Pearson's r (with 95%
//! Fisher-z CI), Spearman's ρ, Kendall's τ, and RMSE, plus the Wilcoxon
//! signed-rank test (Bonferroni-adjusted) on per-action squared errors
//! against the Multi-faceted model.
//!
//! Expected shape (paper Table VI): Uniform < ID < ID+feature <
//! Multi-faceted on every measure.

use serde::Serialize;
use upskill_bench::synthetic_eval::{skill_accuracy_table, SkillAccuracyRow};
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    config: String,
    rows: Vec<SkillAccuracyRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Table VI: skill-assignment accuracy (Synthetic)");

    let cfg = SyntheticConfig::scaled(scale.synthetic_factor(), false, 42);
    eprintln!(
        "generating synthetic data ({} users, {} items)...",
        cfg.n_users, cfg.n_items
    );
    let data = generate(&cfg).expect("synthetic generation");
    let train_cfg = TrainConfig::new(cfg.n_levels).with_min_init_actions(50);

    let (rows, _) = skill_accuracy_table(&data, &train_cfg).expect("evaluation");

    let mut table = TextTable::new(&[
        "Model",
        "Pearson r",
        "95% CI",
        "Spearman rho",
        "Kendall tau",
        "RMSE",
        "p (vs MF)",
    ]);
    for r in &rows {
        table.row(vec![
            r.model.clone(),
            f3(r.pearson),
            format!("[{}, {}]", f3(r.pearson_ci.0), f3(r.pearson_ci.1)),
            f3(r.spearman),
            f3(r.kendall),
            f3(r.rmse),
            r.p_vs_multifaceted
                .map(|p| {
                    if p < 0.01 {
                        "<0.01".to_string()
                    } else {
                        format!("{p:.3}")
                    }
                })
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.print();

    // Shape assertions mirroring the paper's findings.
    let by_name = |n: &str| rows.iter().find(|r| r.model == n).expect("row");
    let uniform = by_name("Uniform");
    let id = by_name("ID");
    let multi = by_name("Multi-faceted");
    println!("\nShape check vs. paper Table VI:");
    println!(
        "  Uniform < ID on Pearson r: {} ({:.3} vs {:.3})",
        uniform.pearson < id.pearson,
        uniform.pearson,
        id.pearson
    );
    println!(
        "  ID < Multi-faceted on Pearson r: {} ({:.3} vs {:.3})",
        id.pearson < multi.pearson,
        id.pearson,
        multi.pearson
    );
    println!(
        "  Multi-faceted lowest RMSE: {}",
        rows.iter().all(|r| multi.rmse <= r.rmse)
    );
    write_report(
        "table06_skill_accuracy",
        &Report {
            scale: format!("{scale:?}"),
            config: format!("{cfg:?}"),
            rows,
        },
    );
}
