//! Incremental-training benchmark — full coordinate-ascent training with
//! the persistent `StatsGrid` delta path vs. the legacy full-rescan
//! update, at the acceptance workload: 200 items, 500 users × 100 mean
//! actions, S=5, mixed feature kinds (ID + categorical + gamma + count).
//!
//! The interesting number is the **post-first-iteration** portion: both
//! paths pay the same first iteration (the grid must be built once), but
//! from iteration 2 onward the incremental path applies `O(n_changed)`
//! integer deltas and refits from the `O(S · n_items)` histogram, while
//! the legacy path re-accumulates all `|A| · F` feature pushes. The
//! per-iteration wall times come from `IterationStats::seconds`, so the
//! split needs no instrumented re-runs. The report records medians over
//! several training runs, the speedups, and a result-equality check
//! (assignments and churn must agree exactly; objectives to 1e-12
//! relative).

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig, TrainResult};
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    n_actions: usize,
    repeats: usize,
    iterations: usize,
    converged: bool,
    full_total_seconds_median: f64,
    incremental_total_seconds_median: f64,
    full_post_first_seconds_median: f64,
    incremental_post_first_seconds_median: f64,
    speedup_total: f64,
    speedup_post_first_iteration: f64,
    results_identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Seconds spent after the first iteration (where the two paths diverge).
fn post_first_seconds(result: &TrainResult) -> f64 {
    result.trace.iter().skip(1).map(|s| s.seconds).sum()
}

/// Equality of the two training paths: assignments, convergence, and
/// per-iteration churn exactly; objectives to tight relative tolerance
/// (the histogram replay sums continuous moments in item order rather
/// than action order, which can differ by ulps).
fn results_identical(a: &TrainResult, b: &TrainResult) -> bool {
    let ll_close = |x: f64, y: f64| (x - y).abs() <= 1e-12 * x.abs().max(y.abs()).max(1.0);
    a.assignments == b.assignments
        && a.converged == b.converged
        && a.trace.len() == b.trace.len()
        && a.trace.iter().zip(&b.trace).all(|(x, y)| {
            x.iteration == y.iteration
                && x.n_changed == y.n_changed
                && ll_close(x.log_likelihood, y.log_likelihood)
        })
        && ll_close(a.log_likelihood, b.log_likelihood)
}

fn main() {
    let scale = Scale::from_env();
    banner("Incremental training: delta statistics vs full rescan");

    let (n_users, mean_len, repeats) = match scale {
        Scale::Quick => (50, 30.0, 3),
        _ => (500, 100.0, 9),
    };
    let cfg = SyntheticConfig {
        n_users,
        n_items: 200,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    };
    let data = generate(&cfg).expect("generation");
    let train_cfg = TrainConfig::new(5).with_min_init_actions(30);
    let incremental_pc = ParallelConfig::sequential();
    let full_pc = ParallelConfig::sequential().with_incremental(false);
    eprintln!(
        "workload: {} users, {} items, {} actions, S=5",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    // Warm-up plus result-equality check.
    let incr_result =
        train_with_parallelism(&data.dataset, &train_cfg, &incremental_pc).expect("incremental");
    let full_result = train_with_parallelism(&data.dataset, &train_cfg, &full_pc).expect("full");
    let identical = results_identical(&incr_result, &full_result);
    eprintln!(
        "trained: {} iterations, converged={}",
        incr_result.trace.len(),
        incr_result.converged
    );

    let mut full_total = Vec::with_capacity(repeats);
    let mut full_post = Vec::with_capacity(repeats);
    let mut incr_total = Vec::with_capacity(repeats);
    let mut incr_post = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        let r = train_with_parallelism(&data.dataset, &train_cfg, &full_pc).expect("full");
        full_total.push(t0.elapsed().as_secs_f64());
        full_post.push(post_first_seconds(&r));

        let t1 = Instant::now();
        let r = train_with_parallelism(&data.dataset, &train_cfg, &incremental_pc)
            .expect("incremental");
        incr_total.push(t1.elapsed().as_secs_f64());
        incr_post.push(post_first_seconds(&r));
    }
    // Pair each repeat's full/incremental timings and take the median of the
    // per-repeat ratios: the two paths run back-to-back within a repeat, so
    // machine-load drift across the run cancels out of each ratio.
    let mut total_ratios: Vec<f64> = full_total
        .iter()
        .zip(&incr_total)
        .map(|(f, i)| f / i)
        .collect();
    let mut post_ratios: Vec<f64> = full_post
        .iter()
        .zip(&incr_post)
        .map(|(f, i)| f / i)
        .collect();
    let speedup_total = median(&mut total_ratios);
    let speedup_post = median(&mut post_ratios);
    let full_total_s = median(&mut full_total);
    let full_post_s = median(&mut full_post);
    let incr_total_s = median(&mut incr_total);
    let incr_post_s = median(&mut incr_post);

    let mut out = TextTable::new(&["Path", "Train (s)", "Post-iter-1 (s)"]);
    out.row(vec![
        "full rescan (legacy accumulate)".into(),
        format!("{full_total_s:.4}"),
        format!("{full_post_s:.4}"),
    ]);
    out.row(vec![
        "incremental (StatsGrid deltas)".into(),
        format!("{incr_total_s:.4}"),
        format!("{incr_post_s:.4}"),
    ]);
    out.print();
    println!("\nSpeedup (whole training): {speedup_total:.2}x");
    println!("Speedup (post-first-iteration): {speedup_post:.2}x (acceptance floor: 2x)");
    println!("Results identical: {identical}");
    if !identical {
        eprintln!("ERROR: incremental training diverged from the full-rescan path");
        std::process::exit(1);
    }

    write_report(
        "BENCH_incremental",
        &Report {
            scale: format!("{scale:?}"),
            n_users: data.dataset.n_users(),
            n_items: data.dataset.n_items(),
            n_levels: 5,
            mean_sequence_len: mean_len,
            n_actions: data.dataset.n_actions(),
            repeats,
            iterations: incr_result.trace.len(),
            converged: incr_result.converged,
            full_total_seconds_median: full_total_s,
            incremental_total_seconds_median: incr_total_s,
            full_post_first_seconds_median: full_post_s,
            incremental_post_first_seconds_median: incr_post_s,
            speedup_total,
            speedup_post_first_iteration: speedup_post,
            results_identical: identical,
        },
    );
}
