//! Tables X & XI — item prediction at random and last positions.
//!
//! For Cooking, Beer, and Film: hold out one action per user (random
//! position for Table X, the last action for Table XI), train the Uniform,
//! ID, and Multi-faceted models on the rest, infer each held-out action's
//! skill level from the chronologically nearest training action, rank all
//! items by the level's item-ID distribution, and report mean Acc@10 and
//! reciprocal rank. Expected shape: Multi-faceted ≥ ID ≥ Uniform, with the
//! largest margin on the domain with the most items (Cooking).

use serde::Serialize;
use upskill_bench::{banner, f4, write_report, Scale, TextTable};
use upskill_core::baselines::{to_id_dataset, uniform_baseline};
use upskill_core::predict::{
    evaluate_item_prediction, holdout_split, HoldoutPosition, PredictionSplit,
};
use upskill_core::train::{train, TrainConfig};
use upskill_core::types::Dataset;
use upskill_eval::ranking::{random_acc_at_k, random_reciprocal_rank};
use upskill_eval::{mean_acc_at_k, mean_reciprocal_rank};

#[derive(Serialize)]
struct Report {
    scale: String,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    position: String,
    domain: String,
    model: String,
    acc_at_10: f64,
    rr: f64,
    n_predictions: usize,
}

fn ranks_for_model(split: &PredictionSplit, model_kind: &str, n_levels: usize) -> Vec<usize> {
    let train_cfg = TrainConfig::new(n_levels).with_min_init_actions(50);
    let (model, assignments, dataset) = match model_kind {
        "Uniform" => {
            let (a, m) = uniform_baseline(&split.train, n_levels, 0.01).expect("uniform");
            (m, a, split.train.clone())
        }
        "ID" => {
            let view = to_id_dataset(&split.train).expect("projection");
            let r = train(&view, &train_cfg).expect("training");
            (r.model, r.assignments, view)
        }
        "Multi-faceted" => {
            let r = train(&split.train, &train_cfg).expect("training");
            (r.model, r.assignments, split.train.clone())
        }
        other => panic!("unknown model kind {other}"),
    };
    let eval_split = PredictionSplit {
        train: dataset,
        test: split.test.clone(),
    };
    evaluate_item_prediction(&model, &eval_split, &assignments, 0)
        .expect("evaluation")
        .into_iter()
        .map(|o| o.rank)
        .collect()
}

fn run_domain(
    rows: &mut Vec<Row>,
    table: &mut TextTable,
    domain: &str,
    dataset: &Dataset,
    n_levels: usize,
    position: HoldoutPosition,
    pos_label: &str,
) {
    let split = holdout_split(dataset, position).expect("split");
    for model in ["Uniform", "ID", "Multi-faceted"] {
        eprintln!("  {pos_label}/{domain}/{model} ...");
        let ranks = ranks_for_model(&split, model, n_levels);
        let acc = mean_acc_at_k(&ranks, 10).unwrap_or(f64::NAN);
        let rr = mean_reciprocal_rank(&ranks).unwrap_or(f64::NAN);
        table.row(vec![
            pos_label.to_string(),
            domain.to_string(),
            model.to_string(),
            f4(acc),
            f4(rr),
        ]);
        rows.push(Row {
            position: pos_label.to_string(),
            domain: domain.to_string(),
            model: model.to_string(),
            acc_at_10: acc,
            rr,
            n_predictions: ranks.len(),
        });
    }
    println!(
        "  [{pos_label}/{domain}] random guessing: Acc@10 = {:.4}, RR = {:.4}",
        random_acc_at_k(10, dataset.n_items()),
        random_reciprocal_rank(dataset.n_items())
    );
}

fn main() {
    let scale = Scale::from_env();
    banner("Tables X & XI: item prediction at random/last positions");

    let seed = 42;
    let (cook, beer, film) = match scale {
        Scale::Quick => (
            upskill_datasets::cooking::generate(
                &upskill_datasets::cooking::CookingConfig::test_scale(seed),
            )
            .expect("cooking"),
            upskill_datasets::beer::generate(&upskill_datasets::beer::BeerConfig::test_scale(seed))
                .expect("beer"),
            upskill_datasets::film::generate(&upskill_datasets::film::FilmConfig::test_scale(seed))
                .expect("film"),
        ),
        _ => (
            upskill_datasets::cooking::generate(
                &upskill_datasets::cooking::CookingConfig::default_scale(seed),
            )
            .expect("cooking"),
            upskill_datasets::beer::generate(&upskill_datasets::beer::BeerConfig::default_scale(
                seed,
            ))
            .expect("beer"),
            upskill_datasets::film::generate(&upskill_datasets::film::FilmConfig::default_scale(
                seed,
            ))
            .expect("film"),
        ),
    };

    let mut rows = Vec::new();
    let mut table = TextTable::new(&["Position", "Domain", "Model", "Acc@10", "RR"]);
    for (position, label) in [
        (HoldoutPosition::Random { seed: 7 }, "random"),
        (HoldoutPosition::Last, "last"),
    ] {
        run_domain(
            &mut rows,
            &mut table,
            "Cooking",
            &cook.dataset,
            5,
            position,
            label,
        );
        run_domain(
            &mut rows,
            &mut table,
            "Beer",
            &beer.dataset,
            5,
            position,
            label,
        );
        run_domain(
            &mut rows,
            &mut table,
            "Film",
            &film.dataset,
            5,
            position,
            label,
        );
    }
    table.print();

    // Shape checks.
    let get = |pos: &str, dom: &str, model: &str| {
        rows.iter()
            .find(|r| r.position == pos && r.domain == dom && r.model == model)
            .expect("row")
    };
    println!("\nShape check vs. paper Tables X/XI:");
    for pos in ["random", "last"] {
        for dom in ["Cooking", "Beer", "Film"] {
            let u = get(pos, dom, "Uniform");
            let m = get(pos, dom, "Multi-faceted");
            if pos == "last" && dom == "Film" {
                // Paper Table XI: "all models performed comparably in terms
                // of RR" on Film at the last position.
                println!(
                    "  [{pos}/{dom}] models comparable on RR (paper's finding): {} \
                     ({:.4} vs {:.4})",
                    (m.rr - u.rr).abs() < 0.25 * u.rr.max(m.rr),
                    m.rr,
                    u.rr
                );
            } else {
                println!(
                    "  [{pos}/{dom}] Multi-faceted beats Uniform on RR: {} ({:.4} vs {:.4})",
                    m.rr > u.rr,
                    m.rr,
                    u.rr
                );
            }
        }
    }
    let cook_gain = |pos: &str| {
        get(pos, "Cooking", "Multi-faceted").rr / get(pos, "Cooking", "ID").rr.max(1e-12)
    };
    println!(
        "  Largest relative gain on the item-rich domain (Cooking), as in the \
         paper: x{:.2} (random), x{:.2} (last)",
        cook_gain("random"),
        cook_gain("last")
    );
    write_report(
        "table10_11_item_prediction",
        &Report {
            scale: format!("{scale:?}"),
            rows,
        },
    );
}
