//! Serving-layer load benchmark — concurrent mixed traffic at the
//! million-tenant scale.
//!
//! Trains a base model on a synthetic population, moves it behind an
//! `upskill-serve` [`SkillService`], and hammers it from `T` OS threads
//! with a mixed open-loop workload over **disjoint per-thread user
//! ranges** (so per-user time stays monotone without coordination):
//! ingests (admitting most users live), O(1) and DP-backed predictions,
//! and recommendations, under an auto-tuned `EveryNActions` refit policy
//! — so emission-table epochs swap continually underneath the readers.
//!
//! Recorded per op class and overall: throughput plus p50/p95/p99 tail
//! latencies from log-scaled histograms (16 sub-buckets per power of
//! two: ≤ ~6% bucket width, no per-sample storage). The report carries
//! an enforceable throughput `acceptance_floor` and a
//! `latency_ceiling_seconds` on the overall p99 (both null at quick
//! scale), checked by `xtask bench-floors`.
//!
//! Before the load run, a small-scale **bitwise cross-check** replays
//! identical traffic through the service and a single-owner
//! `StreamingSession`: the snapshot JSON must match byte for byte, or
//! the binary exits non-zero.
//!
//! Scales: `UPSKILL_SCALE=quick` is the CI smoke (10k users);
//! default/paper drive ≥ 1M simulated users.

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::parallel::ParallelConfig;
use upskill_core::streaming::{RefitPolicy, RefitTuner, StreamingSession};
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_core::types::{Action, ItemId, UserId};
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_serve::{PredictMode, ServeConfig, SkillService};

/// Log-scaled latency histogram: 16 sub-buckets per power of two of
/// nanoseconds — worst-case bucket width ~6%, constant memory.
#[derive(Clone)]
struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
}

const SUB: usize = 16;

impl LatencyHist {
    fn new() -> Self {
        Self {
            counts: vec![0; 64 * SUB],
            total: 0,
        }
    }

    fn record_ns(&mut self, ns: u64) {
        let idx = if ns < SUB as u64 {
            ns as usize
        } else {
            let log2 = 63 - ns.leading_zeros() as usize;
            let frac = ((ns >> (log2 - 4)) & 0xF) as usize;
            log2 * SUB + frac
        };
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += 1;
        self.total += 1;
    }

    fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Upper edge of the bucket holding quantile `q`, in seconds.
    fn quantile_seconds(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ns = if idx < SUB {
                    idx as u64 + 1
                } else {
                    let (log2, frac) = (idx / SUB, (idx % SUB) as u64);
                    (16 + frac + 1) << (log2 - 4)
                };
                return ns as f64 * 1e-9;
            }
        }
        0.0
    }
}

#[derive(Serialize)]
struct OpLatency {
    ops: u64,
    p50_seconds: f64,
    p95_seconds: f64,
    p99_seconds: f64,
}

impl OpLatency {
    fn from_hist(h: &LatencyHist) -> Self {
        Self {
            ops: h.total,
            p50_seconds: h.quantile_seconds(0.50),
            p95_seconds: h.quantile_seconds(0.95),
            p99_seconds: h.quantile_seconds(0.99),
        }
    }
}

#[derive(Serialize)]
struct Report {
    scale: String,
    n_base_users: usize,
    n_simulated_users: usize,
    n_items: usize,
    n_levels: usize,
    threads: usize,
    n_shards: usize,
    ops_total: u64,
    serve_seconds: f64,
    /// Mixed serving operations per wall second (the key reuses the
    /// floors contract of the other benches).
    throughput_actions_per_second: f64,
    /// Floor on `throughput_actions_per_second` (enforced by
    /// `xtask bench-floors`); null at quick scale.
    acceptance_floor: Option<f64>,
    p50_latency_seconds: f64,
    p95_latency_seconds: f64,
    p99_latency_seconds: f64,
    /// Ceiling on `p99_latency_seconds` (enforced by
    /// `xtask bench-floors`); null at quick scale.
    latency_ceiling_seconds: Option<f64>,
    ingest: OpLatency,
    predict: OpLatency,
    recommend: OpLatency,
    refits: u64,
    final_epoch: u64,
    final_refit_interval: Option<usize>,
    users_admitted_live: usize,
    peak_rss_bytes: Option<u64>,
    crosscheck_users: usize,
    results_identical: bool,
}

/// High-water-mark resident set size from `/proc/self/status` (Linux);
/// `None` elsewhere.
fn peak_rss_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// SplitMix64: tiny deterministic per-thread traffic generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn synth(n_users: usize, n_items: usize, mean_len: f64, seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        n_users,
        n_items,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed,
    }
}

/// One thread's slice of the mixed workload over its disjoint user range
/// `[lo, hi)`. Times start far above any base-dataset timestamp and only
/// move forward, so per-user monotonicity holds by construction.
#[allow(clippy::too_many_arguments)]
fn drive(
    service: &SkillService,
    lo: UserId,
    hi: UserId,
    n_items: usize,
    ops: u64,
    seed: u64,
    ingest_hist: &mut LatencyHist,
    predict_hist: &mut LatencyHist,
    recommend_hist: &mut LatencyHist,
) -> usize {
    let mut rng = Rng(seed);
    let mut touched: Vec<UserId> = Vec::new();
    let mut seen = vec![false; (hi - lo) as usize];
    let mut clock: i64 = 1_000_000_000;
    let mut admitted = 0usize;
    for _ in 0..ops {
        let dice = rng.next() % 100;
        if dice < 65 || touched.is_empty() {
            // Ingest: mostly-new users early, warming into a mixed
            // population; the service admits unknown users live.
            let user = lo + (rng.next() % (hi - lo) as u64) as UserId;
            let item = (rng.next() % n_items as u64) as ItemId;
            clock += 1;
            let t0 = Instant::now();
            service
                .ingest(Action::new(clock, user, item))
                .expect("valid ingest");
            ingest_hist.record_ns(t0.elapsed().as_nanos() as u64);
            if !seen[(user - lo) as usize] {
                seen[(user - lo) as usize] = true;
                touched.push(user);
                admitted += 1;
            }
        } else if dice < 90 {
            // Predict a user this thread has ingested: mostly the O(1)
            // estimators, a tail of DP-backed reads from the pools.
            let user = touched[(rng.next() % touched.len() as u64) as usize];
            let mode = match rng.next() % 20 {
                0 => PredictMode::Smoothed,
                1 => PredictMode::Posterior,
                n if n % 2 == 0 => PredictMode::Committed,
                _ => PredictMode::Filtered,
            };
            let t0 = Instant::now();
            service.predict(user, mode).expect("known user");
            predict_hist.record_ns(t0.elapsed().as_nanos() as u64);
        } else {
            let user = touched[(rng.next() % touched.len() as u64) as usize];
            let t0 = Instant::now();
            service.recommend(user, Some(10)).expect("known user");
            recommend_hist.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
    admitted
}

/// Small-scale hard gate: the same traffic through the service and a
/// single-owner session must produce byte-identical snapshots.
fn crosscheck(n_users: usize, n_items: usize) -> bool {
    let cfg = synth(n_users, n_items, 20.0, 23);
    let data = generate(&cfg).expect("crosscheck data");
    let train_cfg = TrainConfig::new(5)
        .with_min_init_actions(10)
        .with_max_iterations(3)
        .with_lambda(0.01);
    let result = train_with_parallelism(&data.dataset, &train_cfg, &ParallelConfig::sequential())
        .expect("crosscheck train");
    let policy = RefitPolicy::EveryNActions(64);
    let tuner = RefitTuner::new(2, 16, 4096).expect("tuner");
    let service = SkillService::resume(
        data.dataset.clone(),
        &result,
        train_cfg,
        ParallelConfig::sequential(),
        ServeConfig {
            n_shards: 5,
            policy,
            tuner: Some(tuner),
            ..ServeConfig::default()
        },
    )
    .expect("service");
    let mut session = StreamingSession::resume(
        data.dataset.clone(),
        &result,
        train_cfg,
        ParallelConfig::sequential(),
        policy,
    )
    .expect("session");
    session.set_tuner(Some(tuner));

    let mut rng = Rng(99);
    let mut clock: i64 = 1_000_000_000;
    for _ in 0..2_000u32 {
        // Half the traffic extends base users, half admits new ids.
        let user = if rng.next().is_multiple_of(2) {
            (rng.next() % n_users as u64) as UserId
        } else {
            (n_users as u64 + rng.next() % 500) as UserId
        };
        let item = (rng.next() % n_items as u64) as ItemId;
        clock += 1;
        let action = Action::new(clock, user, item);
        let a = session.ingest(action).expect("session ingest");
        let b = service.ingest(action).expect("service ingest");
        if a != b.level {
            eprintln!("cross-check: level diverged for user {user}");
            return false;
        }
    }
    let ours = service.snapshot("crosscheck").expect("snapshot");
    let theirs = session.snapshot("crosscheck");
    ours.to_json().expect("json") == theirs.to_json().expect("json")
}

fn main() {
    let scale = Scale::from_env();
    banner("Concurrent serving under mixed traffic");

    // quick = the CI smoke; default/paper = the million-tenant
    // acceptance workload.
    let (n_sim_users, n_base_users, n_items, ops_total) = match scale {
        Scale::Quick => (10_000usize, 2_000usize, 2_000usize, 200_000u64),
        _ => (1_000_000, 50_000, 20_000, 4_000_000),
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n_shards = (threads * 4).max(8);
    let train_cfg = TrainConfig::new(5)
        .with_min_init_actions(10)
        .with_max_iterations(3)
        .with_lambda(0.01);

    // Hard gate first: bitwise identity with the single-owner session.
    let crosscheck_users = 1_500;
    let identical = crosscheck(crosscheck_users, n_items.min(2_000));
    eprintln!("cross-check @ {crosscheck_users} users: service == session: {identical}");

    // Base population and model.
    let t0 = Instant::now();
    let base = generate(&synth(n_base_users, n_items, 20.0, 41)).expect("base data");
    let parallel = if threads > 1 {
        ParallelConfig::all(threads)
    } else {
        ParallelConfig::sequential()
    };
    let result = train_with_parallelism(&base.dataset, &train_cfg, &parallel).expect("base train");
    eprintln!(
        "base model ready in {:.1}s: {} users, {} actions",
        t0.elapsed().as_secs_f64(),
        base.dataset.n_users(),
        base.dataset.n_actions()
    );

    // The refit cadence scales with traffic so the epoch swaps keep
    // happening throughout the run, auto-tuned by dirty-level rate. The
    // tuner's floor is the configured cadence: under full mixed load
    // every level stays dirty, so a lower floor would just let the
    // interval halve to it and make the run refit-bound; the tuner's
    // job here is stretching the interval when drift subsides.
    let refit_every = (ops_total / 200).clamp(512, 100_000) as usize;
    let service = Arc::new(
        SkillService::resume(
            base.dataset,
            &result,
            train_cfg,
            parallel,
            ServeConfig {
                n_shards,
                policy: RefitPolicy::EveryNActions(refit_every),
                tuner: Some(RefitTuner::new(3, refit_every, 1_000_000).expect("tuner")),
                ..ServeConfig::default()
            },
        )
        .expect("service"),
    );

    // Mixed load from T threads over disjoint user ranges.
    let span = (n_sim_users / threads).max(1) as UserId;
    let ops_per_thread = ops_total / threads as u64;
    let t1 = Instant::now();
    let lanes: Vec<(LatencyHist, LatencyHist, LatencyHist, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|lane| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let (mut ih, mut ph, mut rh) =
                        (LatencyHist::new(), LatencyHist::new(), LatencyHist::new());
                    let lo = lane as UserId * span;
                    let admitted = drive(
                        &service,
                        lo,
                        lo + span,
                        n_items,
                        ops_per_thread,
                        1000 + lane as u64,
                        &mut ih,
                        &mut ph,
                        &mut rh,
                    );
                    (ih, ph, rh, admitted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lane"))
            .collect()
    });
    let serve_seconds = t1.elapsed().as_secs_f64();

    let (mut ingest_h, mut predict_h, mut recommend_h) =
        (LatencyHist::new(), LatencyHist::new(), LatencyHist::new());
    let mut admitted = 0usize;
    for (ih, ph, rh, a) in &lanes {
        ingest_h.merge(ih);
        predict_h.merge(ph);
        recommend_h.merge(rh);
        admitted += a;
    }
    let mut all = LatencyHist::new();
    all.merge(&ingest_h);
    all.merge(&predict_h);
    all.merge(&recommend_h);

    let stats = service.stats();
    let throughput = all.total as f64 / serve_seconds.max(1e-9);
    let (p50, p95, p99) = (
        all.quantile_seconds(0.50),
        all.quantile_seconds(0.95),
        all.quantile_seconds(0.99),
    );
    let final_interval = match stats.policy {
        RefitPolicy::EveryNActions(n) => Some(n),
        _ => None,
    };

    // Floors only bind at the acceptance scale: quick runs on tiny CI
    // boxes where neither number is meaningful.
    let (floor, ceiling) = match scale {
        Scale::Quick => (None, None),
        // 100k mixed ops/s is ~10x below what a release build sustains
        // here; a 50 ms p99 is ~50x above the observed tail.
        _ => (Some(1.0e5), Some(0.05)),
    };

    let mut table = TextTable::new(&["metric", "value"]);
    table.row(vec!["simulated users".into(), format!("{n_sim_users}")]);
    table.row(vec!["admitted live".into(), format!("{admitted}")]);
    table.row(vec![
        "threads / shards".into(),
        format!("{threads} / {n_shards}"),
    ]);
    table.row(vec!["ops".into(), format!("{}", all.total)]);
    table.row(vec!["serve (s)".into(), format!("{serve_seconds:.2}")]);
    table.row(vec![
        "throughput (ops/s)".into(),
        format!("{throughput:.0}"),
    ]);
    table.row(vec![
        "p50 / p95 / p99".into(),
        format!(
            "{:.1}µs / {:.1}µs / {:.1}µs",
            p50 * 1e6,
            p95 * 1e6,
            p99 * 1e6
        ),
    ]);
    table.row(vec![
        "refits / epoch".into(),
        format!("{} / {}", stats.refits, stats.epoch),
    ]);
    table.row(vec![
        "refit interval (tuned)".into(),
        final_interval
            .map(|n| n.to_string())
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.print();
    println!("\nResults identical at cross-check scale: {identical}");

    write_report(
        "BENCH_serve",
        &Report {
            scale: format!("{scale:?}"),
            n_base_users,
            n_simulated_users: n_sim_users,
            n_items,
            n_levels: 5,
            threads,
            n_shards,
            ops_total: all.total,
            serve_seconds,
            throughput_actions_per_second: throughput,
            acceptance_floor: floor,
            p50_latency_seconds: p50,
            p95_latency_seconds: p95,
            p99_latency_seconds: p99,
            latency_ceiling_seconds: ceiling,
            ingest: OpLatency::from_hist(&ingest_h),
            predict: OpLatency::from_hist(&predict_h),
            recommend: OpLatency::from_hist(&recommend_h),
            refits: stats.refits,
            final_epoch: stats.epoch,
            final_refit_interval: final_interval,
            users_admitted_live: admitted,
            peak_rss_bytes: peak_rss_bytes(),
            crosscheck_users,
            results_identical: identical,
        },
    );

    if !identical {
        eprintln!("ERROR: serving diverged from the single-owner session");
        std::process::exit(1);
    }
    if let Some(floor) = floor {
        if throughput < floor {
            eprintln!("ERROR: throughput {throughput:.0} below floor {floor:.0}");
            std::process::exit(1);
        }
    }
    if let Some(ceiling) = ceiling {
        if p99 > ceiling {
            eprintln!("ERROR: p99 {p99:.6}s above ceiling {ceiling:.6}s");
            std::process::exit(1);
        }
    }
}
