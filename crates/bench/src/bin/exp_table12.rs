//! Table XII — rating prediction on the Beer dataset with FFMs.
//!
//! Holds out one rating per user (random/last position), trains the
//! multi-faceted skill model on the remainder, derives per-action skill
//! levels and per-item difficulty levels, and trains four FFMs: `U+I`
//! (matrix factorization with biases), `U+I+S`, `U+I+D`, and `U+I+S+D`.
//! Expected shape (paper Table XII): adding skill or difficulty lowers
//! RMSE, and `U+I+S+D` is best.

use serde::Serialize;
use upskill_bench::{banner, f4, write_report, Scale, TextTable};
use upskill_core::difficulty::{generation_difficulty_all, SkillPrior};
use upskill_core::model_selection::nearest_skill;
use upskill_core::predict::{holdout_split, HoldoutPosition};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::beer::{generate, BeerConfig, BeerData, BEER_LEVELS};
use upskill_ffm::{FeatureLayout, FfmConfig, FfmModel, Instance, InstanceBuilder};

#[derive(Serialize)]
struct Report {
    scale: String,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    position: String,
    layout: String,
    rmse: f64,
    n_test: usize,
}

/// Ratings are attached per (user sequence, action index) in the original
/// dataset; rebuild a lookup keyed by (user, time).
fn rating_lookup(data: &BeerData) -> std::collections::HashMap<(u32, i64), f64> {
    let mut map = std::collections::HashMap::new();
    for (seq, ratings) in data.dataset.sequences().iter().zip(&data.ratings) {
        for (action, &r) in seq.actions().iter().zip(ratings) {
            map.insert((seq.user, action.time), r);
        }
    }
    map
}

fn run_position(
    data: &BeerData,
    position: HoldoutPosition,
    label: &str,
    rows: &mut Vec<Row>,
    table: &mut TextTable,
) {
    let ratings = rating_lookup(data);
    let split = holdout_split(&data.dataset, position).expect("split");
    eprintln!("  [{label}] training skill model ...");
    let train_cfg = TrainConfig::new(BEER_LEVELS).with_min_init_actions(50);
    let skill = train(&split.train, &train_cfg).expect("skill training");
    let difficulty = generation_difficulty_all(
        &skill.model,
        &split.train,
        SkillPrior::Empirical,
        Some(&skill.assignments),
    )
    .expect("difficulty");

    let n_users = split.train.n_users();
    let n_items = split.train.n_items();

    for layout in [
        FeatureLayout::ui(),
        FeatureLayout::uis(),
        FeatureLayout::uid(),
        FeatureLayout::uisd(),
    ] {
        let builder = InstanceBuilder::new(layout, n_users, n_items, BEER_LEVELS).expect("builder");
        // Training instances: every remaining action with its assigned
        // skill and its item's difficulty.
        let mut train_insts: Vec<Instance> = Vec::new();
        for (u, seq) in split.train.sequences().iter().enumerate() {
            let levels = &skill.assignments.per_user[u];
            for (action, &s) in seq.actions().iter().zip(levels) {
                let rating = ratings[&(seq.user, action.time)];
                train_insts.push(
                    builder
                        .instance(
                            u,
                            action.item as usize,
                            s,
                            difficulty[action.item as usize],
                            rating,
                        )
                        .expect("instance"),
                );
            }
        }
        // Deterministic 90/10 validation split for early stopping.
        let mut valid = Vec::new();
        let mut train_set = Vec::new();
        for (i, inst) in train_insts.into_iter().enumerate() {
            if i % 10 == 9 {
                valid.push(inst);
            } else {
                train_set.push(inst);
            }
        }
        // Test instances: inferred skill from the nearest training action.
        let mut test_insts = Vec::new();
        for &(u, action) in &split.test {
            let seq = &split.train.sequences()[u];
            let levels = &skill.assignments.per_user[u];
            let times: Vec<i64> = seq.actions().iter().map(|a| a.time).collect();
            let Some(s) = nearest_skill(&times, levels, action.time) else {
                continue;
            };
            let rating = ratings[&(seq.user, action.time)];
            test_insts.push(
                builder
                    .instance(
                        u,
                        action.item as usize,
                        s,
                        difficulty[action.item as usize],
                        rating,
                    )
                    .expect("instance"),
            );
        }

        let ffm_cfg = FfmConfig {
            k: 4,
            epochs: 25,
            patience: 3,
            seed: 11,
            ..FfmConfig::new(builder.n_features(), builder.n_fields())
        };
        eprintln!("  [{label}] training FFM {} ...", layout.name());
        let model = FfmModel::train(ffm_cfg, &train_set, &valid).expect("ffm");
        let rmse = model.rmse(&test_insts);
        table.row(vec![label.to_string(), layout.name().to_string(), f4(rmse)]);
        rows.push(Row {
            position: label.to_string(),
            layout: layout.name().to_string(),
            rmse,
            n_test: test_insts.len(),
        });
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Table XII: beer rating prediction (FFM)");

    let cfg = match scale {
        Scale::Quick => BeerConfig::test_scale(42),
        _ => BeerConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("beer generation");
    eprintln!(
        "beer data: {} users, {} beers, {} rated actions",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions()
    );

    let mut rows = Vec::new();
    let mut table = TextTable::new(&["Position", "Features", "RMSE"]);
    run_position(
        &data,
        HoldoutPosition::Random { seed: 7 },
        "random",
        &mut rows,
        &mut table,
    );
    run_position(&data, HoldoutPosition::Last, "last", &mut rows, &mut table);
    table.print();

    let get = |pos: &str, layout: &str| {
        rows.iter()
            .find(|r| r.position == pos && r.layout == layout)
            .expect("row")
            .rmse
    };
    println!("\nShape check vs. paper Table XII:");
    for pos in ["random", "last"] {
        let ui = get(pos, "U+I");
        let uisd = get(pos, "U+I+S+D");
        println!(
            "  [{pos}] U+I+S+D <= U+I: {} ({:.4} vs {:.4})",
            uisd <= ui + 1e-9,
            uisd,
            ui
        );
    }
    write_report(
        "table12_rating_prediction",
        &Report {
            scale: format!("{scale:?}"),
            rows,
        },
    );
}
