//! Figure 7 — training time vs number of worker threads (Film), for the
//! ID and Multi-faceted models with all parallelization techniques on.
//!
//! On multicore hardware the Multi-faceted curve drops faster with thread
//! count (it has more per-feature work to parallelize); on this single-core
//! host the curves are flat-to-increasing (thread overhead), which the
//! report records alongside the host core count.

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::baselines::to_id_dataset;
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train_with_parallelism, TrainConfig};
use upskill_datasets::film::{generate, FilmConfig, FILM_LEVELS};

#[derive(Serialize)]
struct Report {
    scale: String,
    host_cores: usize,
    series: Vec<Point>,
}

#[derive(Serialize)]
struct Point {
    threads: usize,
    id_seconds: f64,
    multi_seconds: f64,
    /// Multi-faceted with the shared emission table disabled — isolates
    /// how much of the curve is the table vs thread-level parallelism.
    multi_direct_seconds: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 7: training time vs worker threads (Film)");

    let cfg = match scale {
        Scale::Quick => FilmConfig::test_scale(42),
        _ => FilmConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("film generation");
    let id_view = to_id_dataset(&data.dataset).expect("projection");
    let train_cfg = TrainConfig::new(FILM_LEVELS).with_min_init_actions(50);

    let mut series = Vec::new();
    let mut table = TextTable::new(&["Threads", "ID (s)", "Multi-faceted (s)", "MF direct (s)"]);
    for threads in 1..=5 {
        let pc = ParallelConfig::all(threads);
        let pc_direct = pc.with_emission(false);
        eprintln!("  {threads} thread(s) ...");
        let t0 = Instant::now();
        train_with_parallelism(&id_view, &train_cfg, &pc).expect("ID");
        let id_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        train_with_parallelism(&data.dataset, &train_cfg, &pc).expect("multi");
        let multi_secs = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        train_with_parallelism(&data.dataset, &train_cfg, &pc_direct).expect("multi direct");
        let multi_direct_secs = t2.elapsed().as_secs_f64();
        table.row(vec![
            threads.to_string(),
            format!("{id_secs:.2}"),
            format!("{multi_secs:.2}"),
            format!("{multi_direct_secs:.2}"),
        ]);
        series.push(Point {
            threads,
            id_seconds: id_secs,
            multi_seconds: multi_secs,
            multi_direct_seconds: multi_direct_secs,
        });
    }
    table.print();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nHost has {cores} core(s). The paper's Fig. 7 shows both curves \
         decreasing with threads, Multi-faceted benefiting more; with a \
         single core, expect flat/increasing curves dominated by thread \
         overhead — the machinery (not the hardware) is what is reproduced."
    );
    write_report(
        "fig07_threads",
        &Report {
            scale: format!("{scale:?}"),
            host_cores: cores,
            series,
        },
    );
}
