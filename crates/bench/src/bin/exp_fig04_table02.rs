//! Figure 4 & Table II — model components learned for the language domain.
//!
//! Trains the S = 3 multi-faceted model on the Language data and reports:
//! - Fig. 4a: the per-level sentence-count Poisson means (paper: no clear
//!   trend — 10.8, 11.6, 10.3);
//! - Fig. 4b: the per-level corrections-per-corrector gamma means (paper:
//!   decreasing — 5.06, 4.85, 2.64);
//! - Table II: the top-10 correction rules dominated by unskilled and
//!   skilled learners via the dominance score
//!   `P(rule | θ(S)) − P(rule | θ(1))`.

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::analysis::{level_means, top_skilled, top_unskilled};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::language::{self, features, generate, LanguageConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    sentence_means: Vec<f64>,
    correction_means: Vec<f64>,
    pct_corrected_means: Vec<f64>,
    unskilled_rules: Vec<(String, f64)>,
    skilled_rules: Vec<(String, f64)>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 4 & Table II: language-domain model components");

    let cfg = match scale {
        Scale::Quick => LanguageConfig::test_scale(42),
        _ => LanguageConfig::default_scale(42),
    };
    let data = generate(&cfg).expect("language generation");
    eprintln!(
        "language data: {} users, {} articles",
        data.dataset.n_users(),
        data.dataset.n_items()
    );
    let train_cfg = TrainConfig::new(language::LANGUAGE_LEVELS).with_min_init_actions(50);
    let result = train(&data.dataset, &train_cfg).expect("training");

    let sentence_means = level_means(&result.model, features::SENTENCES).expect("means");
    let correction_means = level_means(&result.model, features::CORRECTIONS).expect("means");
    let pct_means = level_means(&result.model, features::PCT_CORRECTED).expect("means");

    println!("Fig. 4a — sentence-count mean per level (paper: 10.8, 11.6, 10.3):");
    println!(
        "  {:?}",
        sentence_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );
    println!("Fig. 4b — corrections-per-corrector mean per level (paper: 5.06, 4.85, 2.64):");
    println!(
        "  {:?}",
        correction_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );
    println!("      — pct-corrected mean per level (decreasing expected):");
    println!(
        "  {:?}",
        pct_means
            .iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
    );

    let unskilled = top_unskilled(&result.model, features::RULE, 10).expect("dominance");
    let skilled = top_skilled(&result.model, features::RULE, 10).expect("dominance");

    println!("\nTable IIa — rules dominated by the lowest skill level:");
    let mut ta = TextTable::new(&["Rule", "Score"]);
    for e in &unskilled {
        ta.row(vec![
            data.rule_names[e.value as usize].clone(),
            format!("{:+.4}", e.score),
        ]);
    }
    ta.print();

    println!("\nTable IIb — rules dominated by the highest skill level:");
    let mut tb = TextTable::new(&["Rule", "Score"]);
    for e in &skilled {
        tb.row(vec![
            data.rule_names[e.value as usize].clone(),
            format!("{:+.4}", e.score),
        ]);
    }
    tb.print();

    // Shape checks.
    let corrections_decreasing =
        correction_means.first().unwrap_or(&0.0) > correction_means.last().unwrap_or(&0.0);
    let novice_has_capitalization = unskilled
        .iter()
        .take(5)
        .any(|e| data.rule_names[e.value as usize].contains("\"i\" -> \"I\""));
    let skilled_has_article = skilled
        .iter()
        .take(5)
        .any(|e| data.rule_names[e.value as usize].contains("the"));
    println!("\nShape check vs. paper Fig. 4 / Table II:");
    println!("  corrections decrease with skill: {corrections_decreasing}");
    println!("  capitalization rule dominates novices: {novice_has_capitalization}");
    println!("  article-usage rules dominate experts: {skilled_has_article}");

    write_report(
        "fig04_table02_language",
        &Report {
            scale: format!("{scale:?}"),
            sentence_means,
            correction_means,
            pct_corrected_means: pct_means,
            unskilled_rules: unskilled
                .iter()
                .map(|e| (data.rule_names[e.value as usize].clone(), e.score))
                .collect(),
            skilled_rules: skilled
                .iter()
                .map(|e| (data.rule_names[e.value as usize].clone(), e.score))
                .collect(),
        },
    );
}
