//! Runs every experiment binary in sequence, regenerating all tables and
//! figures into `reports/`. Respects `UPSKILL_SCALE`.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table01",
    "exp_fig03",
    "exp_fig04_table02",
    "exp_fig05",
    "exp_fig06_table03",
    "exp_table04_05",
    "exp_table06",
    "exp_table07",
    "exp_table08_09",
    "exp_table10_11",
    "exp_table12",
    "exp_table13",
    "exp_fig07",
    "exp_ext_forgetting",
    "exp_ablation_smoothing",
    "exp_ablation_init",
    "exp_robustness",
    "make_summary",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} ################");
        let status = Command::new(bin_dir.join(exp)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("failed to launch {exp}: {e}");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed; reports are in reports/.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
