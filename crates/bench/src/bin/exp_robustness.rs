//! Robustness experiment (paper footnote 7): "we experimented with
//! multiple synthetic datasets generated with different settings, but we
//! obtained similar trends across these datasets."
//!
//! Re-runs the Table VI comparison (Uniform vs ID vs Multi-faceted skill
//! recovery) across several seeds *and* several generator settings
//! (different at-level probabilities, advance rates, category counts), and
//! reports per-setting Pearson r plus the across-run mean ± std. The trend
//! under test: Uniform < ID < Multi-faceted in every single run.

use serde::Serialize;
use upskill_bench::synthetic_eval::{train_variant, SkillVariant};
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};
use upskill_eval::pearson;

#[derive(Serialize)]
struct Report {
    scale: String,
    runs: Vec<Run>,
    trend_holds_in_every_run: bool,
    mean_gap_mf_vs_id: f64,
    std_gap_mf_vs_id: f64,
}

#[derive(Serialize)]
struct Run {
    label: String,
    seed: u64,
    uniform_r: f64,
    id_r: f64,
    multifaceted_r: f64,
}

fn recovery(data: &upskill_datasets::synthetic::SyntheticData, v: SkillVariant) -> f64 {
    // Adapt the initialization threshold to the setting's sequence lengths
    // (the "short sequences" variant has no 40-action users).
    let max_len = data
        .dataset
        .sequences()
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1);
    let cfg = TrainConfig::new(5).with_min_init_actions(40.min(max_len * 3 / 5));
    let trained = train_variant(data, v, &cfg).expect("training");
    let pred: Vec<f64> = trained
        .assignments
        .per_user
        .iter()
        .flat_map(|s| s.iter().map(|&x| x as f64))
        .collect();
    pearson(&pred, &data.flat_true_skills()).unwrap_or(f64::NAN)
}

fn main() {
    let scale = Scale::from_env();
    banner("Robustness (footnote 7): trends across settings and seeds");

    let factor = scale.synthetic_factor() * 2;
    let base = SyntheticConfig::scaled(factor, false, 0);
    // Varied settings: seeds, selection/advance probabilities, vocabulary.
    let settings: Vec<(String, SyntheticConfig)> = vec![
        (
            "baseline/seed 1".into(),
            SyntheticConfig { seed: 1, ..base },
        ),
        (
            "baseline/seed 2".into(),
            SyntheticConfig { seed: 2, ..base },
        ),
        (
            "baseline/seed 3".into(),
            SyntheticConfig { seed: 3, ..base },
        ),
        (
            "p_at_level 0.7".into(),
            SyntheticConfig {
                p_at_level: 0.7,
                seed: 4,
                ..base
            },
        ),
        (
            "p_at_level 0.3".into(),
            SyntheticConfig {
                p_at_level: 0.3,
                seed: 5,
                ..base
            },
        ),
        (
            "p_advance 0.05".into(),
            SyntheticConfig {
                p_advance: 0.05,
                seed: 6,
                ..base
            },
        ),
        (
            "p_advance 0.2".into(),
            SyntheticConfig {
                p_advance: 0.2,
                seed: 7,
                ..base
            },
        ),
        (
            "20 categories".into(),
            SyntheticConfig {
                n_categories: 20,
                seed: 8,
                ..base
            },
        ),
        (
            "short sequences".into(),
            SyntheticConfig {
                mean_sequence_len: 25.0,
                seed: 9,
                ..base
            },
        ),
    ];

    let mut runs = Vec::new();
    let mut table = TextTable::new(&["Setting", "Uniform r", "ID r", "Multi-faceted r", "trend"]);
    for (label, cfg) in &settings {
        eprintln!("  {label} ...");
        let data = generate(cfg).expect("generation");
        let u = recovery(&data, SkillVariant::Uniform);
        let i = recovery(&data, SkillVariant::Id);
        let m = recovery(&data, SkillVariant::MultiFaceted);
        let trend = u < i && i < m;
        table.row(vec![
            label.clone(),
            f3(u),
            f3(i),
            f3(m),
            if trend {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        runs.push(Run {
            label: label.clone(),
            seed: cfg.seed,
            uniform_r: u,
            id_r: i,
            multifaceted_r: m,
        });
    }
    table.print();

    let gaps: Vec<f64> = runs.iter().map(|r| r.multifaceted_r - r.id_r).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
    let all_hold = runs
        .iter()
        .all(|r| r.uniform_r < r.id_r && r.id_r < r.multifaceted_r);
    println!(
        "\nTrend Uniform < ID < Multi-faceted holds in {}/{} runs; \
         Multi-faceted − ID gap = {:.3} ± {:.3}",
        runs.iter()
            .filter(|r| r.uniform_r < r.id_r && r.id_r < r.multifaceted_r)
            .count(),
        runs.len(),
        mean,
        var.sqrt()
    );
    write_report(
        "robustness_settings",
        &Report {
            scale: format!("{scale:?}"),
            runs,
            trend_holds_in_every_run: all_hold,
            mean_gap_mf_vs_id: mean,
            std_gap_mf_vs_id: var.sqrt(),
        },
    );
}
