//! Incremental-EM benchmark — whole-training wall time of the
//! responsibility-delta incremental EM path (persistent `SoftStatsGrid`,
//! dirty-level weighted refits, column-refreshed emission table) vs. the
//! legacy from-scratch EM accumulation, at the acceptance workload:
//! 200 items, 500 users × 100 mean actions, S=5, mixed feature kinds.
//!
//! Both paths run the identical forward–backward E-step; the incremental
//! path replaces the `O(|A| · S · F)` per-action weighted accumulation of
//! the M-step with `O(|A| · S)` gated responsibility deltas plus an
//! `O(S_dirty · n_items · F)` item-major replay, and refreshes only dirty
//! emission-table columns instead of rebuilding the table. The report
//! records medians over several runs, the speedup (median of per-repeat
//! ratios), and a result-equality check: evidence traces within 1e-9
//! relative per iteration and final models scoring every item within 1e-9
//! relative (the replay sums responsibility mass in item order rather
//! than action order, so bitwise equality is not expected).

use serde::Serialize;
use std::time::Instant;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_core::em::{train_em_with_parallelism, EmConfig, EmResult};
use upskill_core::init::initialize_model;
use upskill_core::parallel::ParallelConfig;
use upskill_core::transition::TransitionModel;
use upskill_core::types::Dataset;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    n_users: usize,
    n_items: usize,
    n_levels: usize,
    mean_sequence_len: f64,
    n_actions: usize,
    repeats: usize,
    em_iterations: usize,
    converged: bool,
    full_total_seconds_median: f64,
    incremental_total_seconds_median: f64,
    speedup: f64,
    acceptance_floor: Option<f64>,
    results_identical: bool,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Equality of the two EM paths: trace length and convergence exactly,
/// per-iteration evidence and final per-item scores to 1e-9 relative.
fn results_identical(a: &EmResult, b: &EmResult, dataset: &Dataset) -> bool {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    a.converged == b.converged
        && a.evidence_trace.len() == b.evidence_trace.len()
        && a.evidence_trace
            .iter()
            .zip(&b.evidence_trace)
            .all(|(&x, &y)| close(x, y))
        && dataset.items().iter().all(|features| {
            (1..=a.model.n_levels() as u8).all(|s| {
                close(
                    a.model.item_log_likelihood(features, s),
                    b.model.item_log_likelihood(features, s),
                )
            })
        })
}

fn main() {
    let scale = Scale::from_env();
    banner("Incremental EM: responsibility deltas vs from-scratch accumulation");

    let (n_users, mean_len, repeats, max_iters) = match scale {
        Scale::Quick => (50, 30.0, 3, 8),
        _ => (500, 100.0, 5, 12),
    };
    let cfg = SyntheticConfig {
        n_users,
        n_items: 200,
        n_levels: 5,
        mean_sequence_len: mean_len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    };
    let data = generate(&cfg).expect("generation");
    let initial = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");
    let transitions = TransitionModel::uninformative(5).expect("transitions");
    let em_cfg = EmConfig::new(initial, transitions)
        .with_max_iterations(max_iters)
        .with_tolerance(1e-9);
    let incremental_pc = ParallelConfig::sequential();
    let full_pc = ParallelConfig::sequential().with_incremental(false);
    eprintln!(
        "workload: {} users, {} items, {} actions, S=5, {} EM iterations max",
        data.dataset.n_users(),
        data.dataset.n_items(),
        data.dataset.n_actions(),
        max_iters
    );

    // Warm-up plus the result-equality check.
    let incr_result =
        train_em_with_parallelism(&data.dataset, &em_cfg, &incremental_pc).expect("incremental");
    let full_result = train_em_with_parallelism(&data.dataset, &em_cfg, &full_pc).expect("full");
    let identical = results_identical(&incr_result, &full_result, &data.dataset);
    eprintln!(
        "trained: {} EM iterations, converged={}",
        incr_result.evidence_trace.len(),
        incr_result.converged
    );

    let mut full_total = Vec::with_capacity(repeats);
    let mut incr_total = Vec::with_capacity(repeats);
    let mut ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t0 = Instant::now();
        train_em_with_parallelism(&data.dataset, &em_cfg, &full_pc).expect("full");
        let full_s = t0.elapsed().as_secs_f64();
        full_total.push(full_s);

        let t1 = Instant::now();
        train_em_with_parallelism(&data.dataset, &em_cfg, &incremental_pc).expect("incremental");
        let incr_s = t1.elapsed().as_secs_f64();
        incr_total.push(incr_s);

        // Back-to-back ratio per repeat cancels machine-load drift.
        ratios.push(full_s / incr_s);
    }
    let full_s = median(&mut full_total);
    let incr_s = median(&mut incr_total);
    let speedup = median(&mut ratios);

    let mut out = TextTable::new(&["Path", "Train (s)"]);
    out.row(vec![
        "full (from-scratch accumulation)".into(),
        format!("{full_s:.4}"),
    ]);
    out.row(vec![
        "incremental (responsibility deltas)".into(),
        format!("{incr_s:.4}"),
    ]);
    out.print();
    println!("\nSpeedup (whole training): {speedup:.2}x (acceptance floor: 1.5x)");
    println!("Results identical: {identical}");
    if !identical {
        eprintln!("ERROR: incremental EM diverged from the from-scratch path");
        std::process::exit(1);
    }

    write_report(
        "BENCH_em_incremental",
        &Report {
            scale: format!("{scale:?}"),
            n_users: data.dataset.n_users(),
            n_items: data.dataset.n_items(),
            n_levels: 5,
            mean_sequence_len: mean_len,
            n_actions: data.dataset.n_actions(),
            repeats,
            em_iterations: incr_result.evidence_trace.len(),
            converged: incr_result.converged,
            full_total_seconds_median: full_s,
            incremental_total_seconds_median: incr_s,
            speedup,
            // Enforced by `xtask bench-floors` at the acceptance workload
            // only; quick-scale smoke runs are too noisy to gate on.
            acceptance_floor: if matches!(scale, Scale::Quick) {
                None
            } else {
                Some(1.5)
            },
            results_identical: identical,
        },
    );
}
