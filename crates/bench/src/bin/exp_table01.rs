//! Table I — dataset statistics after filtering.
//!
//! Generates all five datasets at the selected scale, applies each
//! domain's filtering (built into the builders), and prints the
//! users/items/actions counts the paper reports in Table I.

use serde::Serialize;
use upskill_bench::{banner, write_report, Scale, TextTable};
use upskill_datasets::{beer, cooking, film, language, synthetic, DatasetStats};

#[derive(Serialize)]
struct Report {
    scale: String,
    rows: Vec<Row>,
}

#[derive(Serialize)]
struct Row {
    dataset: String,
    n_users: usize,
    n_items: usize,
    n_actions: usize,
    actions_per_user: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner("Table I: dataset statistics after filtering");

    let seed = 42;
    let mut stats = Vec::new();

    let lang_cfg = match scale {
        Scale::Quick => language::LanguageConfig::test_scale(seed),
        _ => language::LanguageConfig::default_scale(seed),
    };
    let lang = language::generate(&lang_cfg).expect("language generation");
    stats.push(DatasetStats::of("Language", &lang.dataset));

    let cook_cfg = match scale {
        Scale::Quick => cooking::CookingConfig::test_scale(seed),
        _ => cooking::CookingConfig::default_scale(seed),
    };
    let cook = cooking::generate(&cook_cfg).expect("cooking generation");
    stats.push(DatasetStats::of("Cooking", &cook.dataset));

    let beer_cfg = match scale {
        Scale::Quick => beer::BeerConfig::test_scale(seed),
        _ => beer::BeerConfig::default_scale(seed),
    };
    let beer_data = beer::generate(&beer_cfg).expect("beer generation");
    stats.push(DatasetStats::of("Beer", &beer_data.dataset));

    let film_cfg = match scale {
        Scale::Quick => film::FilmConfig::test_scale(seed),
        _ => film::FilmConfig::default_scale(seed),
    };
    let film_data = film::generate(&film_cfg).expect("film generation");
    stats.push(DatasetStats::of("Film", &film_data.dataset));

    let syn_cfg = synthetic::SyntheticConfig::scaled(scale.synthetic_factor(), false, seed);
    let syn = synthetic::generate(&syn_cfg).expect("synthetic generation");
    stats.push(DatasetStats::of("Synthetic", &syn.dataset));

    let mut table = TextTable::new(&["Dataset", "#Users", "#Items", "#Actions", "Act/User"]);
    let mut rows = Vec::new();
    for s in &stats {
        table.row(vec![
            s.name.clone(),
            s.n_users.to_string(),
            s.n_items.to_string(),
            s.n_actions.to_string(),
            format!("{:.1}", s.actions_per_user()),
        ]);
        rows.push(Row {
            dataset: s.name.clone(),
            n_users: s.n_users,
            n_items: s.n_items,
            n_actions: s.n_actions,
            actions_per_user: s.actions_per_user(),
        });
    }
    table.print();
    println!(
        "\nShape check vs. paper Table I: Language items == actions (every \
         article written once: {}), Beer has the highest actions/user, \
         Film has fewer items than the others after filtering.",
        stats[0].n_items == stats[0].n_actions
    );
    write_report(
        "table01_datasets",
        &Report {
            scale: format!("{scale:?}"),
            rows,
        },
    );
}
