//! Tables VIII & IX — skill and difficulty accuracy on Synthetic_dense.
//!
//! Identical pipeline to Tables VI/VII but with 5× fewer items (each item
//! selected ~5× more often). The paper's data-sparsity finding: the gap
//! between Multi-faceted and ID shrinks on dense data, and the Assignment
//! difficulty estimator catches up with (or overtakes) the generation-based
//! ones — multi-faceted features matter most under sparsity.

use serde::Serialize;
use upskill_bench::synthetic_eval::{
    difficulty_accuracy_table, skill_accuracy_table, DifficultyAccuracyRow, SkillAccuracyRow,
    SkillVariant,
};
use upskill_bench::{banner, f3, write_report, Scale, TextTable};
use upskill_core::train::TrainConfig;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

#[derive(Serialize)]
struct Report {
    scale: String,
    skill_rows: Vec<SkillAccuracyRow>,
    difficulty_rows: Vec<DifficultyAccuracyRow>,
}

fn main() {
    let scale = Scale::from_env();
    banner("Tables VIII & IX: accuracy on Synthetic_dense");

    let cfg = SyntheticConfig::scaled(scale.synthetic_factor(), true, 42);
    eprintln!(
        "generating dense synthetic data ({} users, {} items)...",
        cfg.n_users, cfg.n_items
    );
    let data = generate(&cfg).expect("synthetic generation");
    let train_cfg = TrainConfig::new(cfg.n_levels).with_min_init_actions(50);

    let (skill_rows, trained) = skill_accuracy_table(&data, &train_cfg).expect("skill eval");

    println!("Table VIII (skill accuracy, dense):");
    let mut t8 = TextTable::new(&["Model", "Pearson r", "Spearman", "Kendall", "RMSE"]);
    for r in &skill_rows {
        t8.row(vec![
            r.model.clone(),
            f3(r.pearson),
            f3(r.spearman),
            f3(r.kendall),
            f3(r.rmse),
        ]);
    }
    t8.print();

    // Table IX uses only the Uniform/ID/Multi-faceted trio.
    let trio: Vec<_> = trained
        .into_iter()
        .filter(|t| SkillVariant::difficulty_trio().contains(&t.variant))
        .collect();
    let difficulty_rows = difficulty_accuracy_table(&data, &trio, 3).expect("difficulty eval");

    println!("\nTable IX (difficulty accuracy, dense):");
    let mut t9 = TextTable::new(&[
        "Skill",
        "Difficulty",
        "Pearson r",
        "Spearman",
        "Kendall",
        "RMSE",
    ]);
    for r in &difficulty_rows {
        t9.row(vec![
            r.skill_model.clone(),
            r.difficulty_model.clone(),
            f3(r.pearson),
            f3(r.spearman),
            f3(r.kendall),
            f3(r.rmse),
        ]);
    }
    t9.print();

    let by_name = |n: &str| skill_rows.iter().find(|r| r.model == n).expect("row");
    let gap_dense = by_name("Multi-faceted").pearson - by_name("ID").pearson;
    println!("\nShape check vs. paper Tables VIII/IX:");
    println!(
        "  Multi-faceted ~ ID on dense data (|gap| small): {} (gap {:.3}; \
         paper: 0.004)",
        gap_dense.abs() < 0.05,
        gap_dense
    );
    println!(
        "  Sparsity finding: this gap is far below the sparse Table VI gap \
         (~0.3 there — compare with the exp_table06 output), i.e. \
         multi-faceted features matter most when items are rare."
    );
    write_report(
        "table08_09_dense",
        &Report {
            scale: format!("{scale:?}"),
            skill_rows,
            difficulty_rows,
        },
    );
}
