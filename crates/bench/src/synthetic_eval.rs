//! Shared evaluation pipeline for the synthetic-accuracy experiments
//! (Tables VI–IX): trains every skill-model variant, scores skill
//! assignments against the ground truth, and scores all difficulty-model
//! combinations.

use serde::Serialize;
use upskill_core::baselines::{project_features, uniform_baseline};
use upskill_core::difficulty::{assignment_difficulty_all, generation_difficulty_all, SkillPrior};
use upskill_core::error::Result;
use upskill_core::train::{train, TrainConfig};
use upskill_core::types::{Dataset, SkillAssignments};
use upskill_core::SkillModel;
use upskill_datasets::synthetic::SyntheticData;
use upskill_eval::{bonferroni, fisher_z_ci, wilcoxon_signed_rank, ScoreRow};

/// The skill-model variants of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkillVariant {
    /// Equal-length segmentation baseline.
    Uniform,
    /// Yang et al.'s ID-only progression model.
    Id,
    /// ID plus the categorical feature.
    IdCategorical,
    /// ID plus the gamma feature.
    IdGamma,
    /// ID plus the Poisson feature.
    IdPoisson,
    /// The full multi-faceted model (ID + all three features).
    MultiFaceted,
}

impl SkillVariant {
    /// All variants in Table VI order.
    pub fn all() -> [SkillVariant; 6] {
        [
            SkillVariant::Uniform,
            SkillVariant::Id,
            SkillVariant::IdCategorical,
            SkillVariant::IdGamma,
            SkillVariant::IdPoisson,
            SkillVariant::MultiFaceted,
        ]
    }

    /// The three variants used in the difficulty comparison (Table VII).
    pub fn difficulty_trio() -> [SkillVariant; 3] {
        [
            SkillVariant::Uniform,
            SkillVariant::Id,
            SkillVariant::MultiFaceted,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SkillVariant::Uniform => "Uniform",
            SkillVariant::Id => "ID",
            SkillVariant::IdCategorical => "ID+categorical",
            SkillVariant::IdGamma => "ID+gamma",
            SkillVariant::IdPoisson => "ID+Poisson",
            SkillVariant::MultiFaceted => "Multi-faceted",
        }
    }

    /// Feature indices (into the synthetic schema `[id, cat, gamma,
    /// poisson]`) kept alongside the ID for this variant. `None` = the
    /// Uniform baseline, which trains no generative model.
    fn kept_features(self) -> Option<&'static [usize]> {
        match self {
            SkillVariant::Uniform => None,
            SkillVariant::Id => Some(&[]),
            SkillVariant::IdCategorical => Some(&[1]),
            SkillVariant::IdGamma => Some(&[2]),
            SkillVariant::IdPoisson => Some(&[3]),
            SkillVariant::MultiFaceted => Some(&[1, 2, 3]),
        }
    }
}

/// A trained variant with its assignments (and model, when one exists).
pub struct TrainedVariant {
    /// Which variant this is.
    pub variant: SkillVariant,
    /// The dataset view the variant was trained on.
    pub dataset: Dataset,
    /// Hard assignments for every action.
    pub assignments: SkillAssignments,
    /// The generative model (absent for Uniform in the difficulty sense —
    /// the paper does not combine Uniform with generation-based
    /// estimators; we still fit one for item prediction elsewhere).
    pub model: SkillModel,
    /// Training iterations used (0 for Uniform).
    pub iterations: usize,
}

/// Trains one variant on the synthetic dataset.
pub fn train_variant(
    data: &SyntheticData,
    variant: SkillVariant,
    config: &TrainConfig,
) -> Result<TrainedVariant> {
    match variant.kept_features() {
        None => {
            let (assignments, model) =
                uniform_baseline(&data.dataset, config.n_levels, config.lambda)?;
            Ok(TrainedVariant {
                variant,
                dataset: data.dataset.clone(),
                assignments,
                model,
                iterations: 0,
            })
        }
        Some(keep) => {
            let view = project_features(&data.dataset, keep, true)?;
            let result = train(&view, config)?;
            Ok(TrainedVariant {
                variant,
                dataset: view,
                assignments: result.assignments,
                model: result.model,
                iterations: result.trace.len(),
            })
        }
    }
}

/// One row of Table VI/VIII with its CI and per-action squared errors.
#[derive(Debug, Clone, Serialize)]
pub struct SkillAccuracyRow {
    /// Variant name.
    pub model: String,
    /// Pearson's r.
    pub pearson: f64,
    /// 95% CI of Pearson's r (Fisher-z).
    pub pearson_ci: (f64, f64),
    /// Spearman's ρ.
    pub spearman: f64,
    /// Kendall's τ-b.
    pub kendall: f64,
    /// RMSE of assigned vs. true skill.
    pub rmse: f64,
    /// Training iterations.
    pub iterations: usize,
    /// Bonferroni-adjusted Wilcoxon p-value of squared errors vs. the
    /// Multi-faceted model (None for Multi-faceted itself).
    pub p_vs_multifaceted: Option<f64>,
}

/// Flattens an assignment set into per-action f64 levels.
pub fn flatten(assignments: &SkillAssignments) -> Vec<f64> {
    assignments
        .per_user
        .iter()
        .flat_map(|seq| seq.iter().map(|&s| s as f64))
        .collect()
}

/// Runs the full Table VI/VIII pipeline: train every variant, score skill
/// accuracy, and test significance against the Multi-faceted model.
pub fn skill_accuracy_table(
    data: &SyntheticData,
    config: &TrainConfig,
) -> Result<(Vec<SkillAccuracyRow>, Vec<TrainedVariant>)> {
    let truth = data.flat_true_skills();
    let mut trained = Vec::new();
    for variant in SkillVariant::all() {
        eprintln!("  training {} ...", variant.name());
        trained.push(train_variant(data, variant, config)?);
    }
    let predictions: Vec<Vec<f64>> = trained.iter().map(|t| flatten(&t.assignments)).collect();
    let multi_idx = trained.len() - 1;
    let multi_se: Vec<f64> = predictions[multi_idx]
        .iter()
        .zip(&truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .collect();

    let mut raw_p = Vec::new();
    let mut rows = Vec::new();
    for (t, pred) in trained.iter().zip(&predictions) {
        let score = ScoreRow::compute(pred, &truth).map_err(|e| {
            upskill_core::CoreError::DegenerateFit {
                distribution: "skill accuracy",
                reason: match e {
                    upskill_eval::EvalError::ZeroVariance => "zero variance",
                    _ => "metric failure",
                },
            }
        })?;
        let ci = fisher_z_ci(score.pearson, truth.len(), 0.95)
            .map(|c| (c.lo, c.hi))
            .unwrap_or((f64::NAN, f64::NAN));
        let p = if t.variant == SkillVariant::MultiFaceted {
            None
        } else {
            let se: Vec<f64> = pred
                .iter()
                .zip(&truth)
                .map(|(&p, &t)| (p - t) * (p - t))
                .collect();
            let w = wilcoxon_signed_rank(&se, &multi_se).map(|r| r.p_value).ok();
            if let Some(p) = w {
                raw_p.push(p);
            }
            w
        };
        rows.push(SkillAccuracyRow {
            model: t.variant.name().to_string(),
            pearson: score.pearson,
            pearson_ci: ci,
            spearman: score.spearman,
            kendall: score.kendall,
            rmse: score.rmse,
            iterations: t.iterations,
            p_vs_multifaceted: p,
        });
    }
    // Bonferroni over the family of baseline-vs-multifaceted comparisons.
    let adjusted = bonferroni(&raw_p);
    let mut k = 0;
    for row in rows.iter_mut() {
        if row.p_vs_multifaceted.is_some() {
            row.p_vs_multifaceted = Some(adjusted[k]);
            k += 1;
        }
    }
    Ok((rows, trained))
}

/// The difficulty estimators of Table VII/IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifficultyVariant {
    /// Mean assigned skill of selecting users (Eq. 8).
    Assignment,
    /// Posterior-expected skill, uniform prior.
    Uniform,
    /// Posterior-expected skill, empirical prior.
    Empirical,
}

impl DifficultyVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DifficultyVariant::Assignment => "Assignment",
            DifficultyVariant::Uniform => "Uniform",
            DifficultyVariant::Empirical => "Empirical",
        }
    }
}

/// One row of Table VII/IX.
#[derive(Debug, Clone, Serialize)]
pub struct DifficultyAccuracyRow {
    /// Skill-model variant name.
    pub skill_model: String,
    /// Difficulty-model name.
    pub difficulty_model: String,
    /// Pearson's r.
    pub pearson: f64,
    /// 95% CI of Pearson's r.
    pub pearson_ci: (f64, f64),
    /// Spearman's ρ.
    pub spearman: f64,
    /// Kendall's τ-b.
    pub kendall: f64,
    /// RMSE vs. true difficulty.
    pub rmse: f64,
    /// RMSE restricted to rare items (support < 3).
    pub rare_rmse: Option<f64>,
}

/// Estimated difficulties for one (skill, difficulty) combination.
/// `None` entries are items the estimator cannot score.
pub fn estimate_difficulty(
    trained: &TrainedVariant,
    variant: DifficultyVariant,
) -> Result<Vec<Option<f64>>> {
    match variant {
        DifficultyVariant::Assignment => {
            assignment_difficulty_all(&trained.dataset, &trained.assignments)
        }
        DifficultyVariant::Uniform => Ok(generation_difficulty_all(
            &trained.model,
            &trained.dataset,
            SkillPrior::Uniform,
            None,
        )?
        .into_iter()
        .map(Some)
        .collect()),
        DifficultyVariant::Empirical => Ok(generation_difficulty_all(
            &trained.model,
            &trained.dataset,
            SkillPrior::Empirical,
            Some(&trained.assignments),
        )?
        .into_iter()
        .map(Some)
        .collect()),
    }
}

/// Runs the Table VII/IX pipeline over the given trained skill variants.
///
/// `rare_threshold` defines rare items (the paper uses support < 3).
pub fn difficulty_accuracy_table(
    data: &SyntheticData,
    trained: &[TrainedVariant],
    rare_threshold: u32,
) -> Result<Vec<DifficultyAccuracyRow>> {
    let support = data.dataset.item_support();
    let mut rows = Vec::new();
    for t in trained {
        let combos: &[DifficultyVariant] = if t.variant == SkillVariant::Uniform {
            &[DifficultyVariant::Assignment]
        } else {
            &[
                DifficultyVariant::Assignment,
                DifficultyVariant::Uniform,
                DifficultyVariant::Empirical,
            ]
        };
        for &d in combos {
            let est = estimate_difficulty(t, d)?;
            let mut pred = Vec::new();
            let mut truth = Vec::new();
            let mut rare_pred = Vec::new();
            let mut rare_truth = Vec::new();
            for (i, e) in est.iter().enumerate() {
                let Some(e) = e else { continue };
                pred.push(*e);
                truth.push(data.true_difficulty[i]);
                if support[i] < rare_threshold {
                    rare_pred.push(*e);
                    rare_truth.push(data.true_difficulty[i]);
                }
            }
            let score = ScoreRow::compute(&pred, &truth).map_err(|_| {
                upskill_core::CoreError::DegenerateFit {
                    distribution: "difficulty accuracy",
                    reason: "metric failure",
                }
            })?;
            let ci = fisher_z_ci(score.pearson, pred.len(), 0.95)
                .map(|c| (c.lo, c.hi))
                .unwrap_or((f64::NAN, f64::NAN));
            let rare_rmse = if rare_pred.len() >= 2 {
                upskill_eval::rmse(&rare_pred, &rare_truth).ok()
            } else {
                None
            };
            rows.push(DifficultyAccuracyRow {
                skill_model: t.variant.name().to_string(),
                difficulty_model: d.name().to_string(),
                pearson: score.pearson,
                pearson_ci: ci,
                spearman: score.spearman,
                kendall: score.kendall,
                rmse: score.rmse,
                rare_rmse,
            });
        }
    }
    Ok(rows)
}
