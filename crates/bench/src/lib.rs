//! # upskill-bench
//!
//! Experiment binaries and criterion benchmarks that regenerate every
//! table and figure of the paper's evaluation (see DESIGN.md §4 for the
//! experiment index). This library holds the shared plumbing: scale
//! selection, text-table rendering, and JSON report output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod synthetic_eval;

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Experiment scale, selected via the `UPSKILL_SCALE` environment variable
/// (`quick`, `default`, or `paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for smoke-testing the harness (seconds).
    Quick,
    /// Scaled-down sizes preserving the paper's shape (minutes).
    Default,
    /// The paper's full sizes where feasible (hours).
    Paper,
}

impl Scale {
    /// Reads `UPSKILL_SCALE` (defaults to [`Scale::Default`]).
    pub fn from_env() -> Self {
        match std::env::var("UPSKILL_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("paper") => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Division factor applied to the paper's synthetic sizes.
    pub fn synthetic_factor(self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Default => 10,
            Scale::Paper => 1,
        }
    }
}

/// Directory where experiment reports are written (`reports/` under the
/// workspace root, falling back to the current directory).
pub fn report_dir() -> PathBuf {
    // The bench binaries are run via `cargo run` from the workspace, where
    // CARGO_MANIFEST_DIR points at crates/bench.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("reports")
}

/// Serializes a report as pretty JSON under `reports/<name>.json`.
pub fn write_report<T: Serialize>(name: &str, value: &T) {
    let dir = report_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[report] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize report {name}: {e}"),
    }
}

/// Minimal fixed-width text-table renderer for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths = vec![0usize; n_cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float to 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float to 4 decimals for table cells.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults() {
        // Cannot mutate env safely in parallel tests; just exercise the
        // mapping logic.
        assert_eq!(Scale::Quick.synthetic_factor(), 100);
        assert_eq!(Scale::Default.synthetic_factor(), 10);
        assert_eq!(Scale::Paper.synthetic_factor(), 1);
    }

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(&["model", "score"]);
        t.row(vec!["uniform".into(), "0.1".into()]);
        t.row(vec!["id".into(), "0.25".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].starts_with("uniform"));
        // All data lines have the score column starting at the same offset.
        let col = lines[2].find("0.1").unwrap();
        assert_eq!(lines[3].find("0.25").unwrap(), col);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f4(0.12345), "0.1235");
    }
}
