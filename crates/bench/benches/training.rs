//! End-to-end training benchmarks backing Table XIII / Fig. 7: full
//! alternating training of the ID vs Multi-faceted models, sequential vs
//! all-parallel, plus the EM-vs-hard-assignment ablation the paper cites
//! (§IV-B: hard assignments were reported ~1000× faster than EM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use upskill_core::baselines::to_id_dataset;
use upskill_core::em::{train_em_with_parallelism, EmConfig};
use upskill_core::init::initialize_model;
use upskill_core::parallel::ParallelConfig;
use upskill_core::train::{train, train_with_parallelism, TrainConfig};
use upskill_core::transition::TransitionModel;
use upskill_datasets::synthetic::{generate, SyntheticConfig};

fn data(n_users: usize) -> upskill_datasets::synthetic::SyntheticData {
    generate(&SyntheticConfig {
        n_users,
        n_items: 400,
        n_levels: 5,
        mean_sequence_len: 40.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 4,
    })
    .expect("generation")
}

fn bench_id_vs_multifaceted(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/model");
    let data = data(60);
    let id_view = to_id_dataset(&data.dataset).expect("projection");
    let cfg = TrainConfig::new(5)
        .with_min_init_actions(30)
        .with_max_iterations(10);
    group.bench_function("ID", |b| {
        b.iter(|| train(&id_view, &cfg).expect("training"))
    });
    group.bench_function("Multi-faceted", |b| {
        b.iter(|| train(&data.dataset, &cfg).expect("training"))
    });
    group.finish();
}

fn bench_parallel_flags(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/parallel");
    let data = data(60);
    let cfg = TrainConfig::new(5)
        .with_min_init_actions(30)
        .with_max_iterations(5);
    for (label, pc) in [
        ("sequential", ParallelConfig::sequential()),
        ("users", ParallelConfig::sequential().with_users(true)),
        ("all@4", ParallelConfig::all(4)),
        (
            "full_rescan",
            ParallelConfig::sequential().with_incremental(false),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &pc, |b, pc| {
            b.iter(|| train_with_parallelism(&data.dataset, &cfg, pc).expect("training"))
        });
    }
    group.finish();
}

fn bench_hard_vs_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("train/hard_vs_em");
    group.sample_size(10);
    let data = data(30);
    let cfg = TrainConfig::new(5)
        .with_min_init_actions(30)
        .with_max_iterations(5);
    group.bench_function("hard", |b| {
        b.iter(|| train(&data.dataset, &cfg).expect("training"))
    });
    group.bench_function("em", |b| {
        b.iter(|| {
            let initial = initialize_model(&data.dataset, 5, 30, 0.01).expect("initialization");
            let transitions = TransitionModel::uninformative(5).expect("transitions");
            let em_cfg = EmConfig::new(initial, transitions).with_max_iterations(5);
            train_em_with_parallelism(&data.dataset, &em_cfg, &ParallelConfig::sequential())
                .expect("EM")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_id_vs_multifaceted, bench_parallel_flags, bench_hard_vs_em
}
criterion_main!(benches);
