//! Benchmarks for the evaluation metrics, including the Kendall τ
//! O(n log n) vs O(n²) ablation (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use upskill_eval::correlation::{kendall_tau, kendall_tau_naive};
use upskill_eval::{pearson, rmse, spearman, wilcoxon_signed_rank};

fn series(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 100.0
    };
    let x: Vec<f64> = (0..n).map(|_| next()).collect();
    let y: Vec<f64> = x.iter().map(|&v| v * 0.7 + next() * 0.5).collect();
    (x, y)
}

fn bench_correlations(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics/correlation");
    let (x, y) = series(10_000, 1);
    group.bench_function("pearson_10k", |b| b.iter(|| pearson(&x, &y).expect("r")));
    group.bench_function("spearman_10k", |b| {
        b.iter(|| spearman(&x, &y).expect("rho"))
    });
    group.bench_function("kendall_fast_10k", |b| {
        b.iter(|| kendall_tau(&x, &y).expect("tau"))
    });
    group.finish();
}

fn bench_kendall_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics/kendall_fast_vs_naive");
    for n in [200usize, 1000, 3000] {
        let (x, y) = series(n, 2);
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            b.iter(|| kendall_tau(&x, &y).expect("tau"))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| kendall_tau_naive(&x, &y).expect("tau"))
        });
    }
    group.finish();
}

fn bench_tests_and_errors(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics/other");
    let (x, y) = series(5_000, 3);
    group.bench_function("rmse_5k", |b| b.iter(|| rmse(&x, &y).expect("rmse")));
    group.bench_function("wilcoxon_5k", |b| {
        b.iter(|| wilcoxon_signed_rank(&x, &y).expect("test"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_correlations, bench_kendall_ablation, bench_tests_and_errors
}
criterion_main!(benches);
