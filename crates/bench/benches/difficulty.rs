//! Benchmarks for the difficulty estimators (§V-C): assignment-based is
//! O(|A|); generation-based is O(F·S) per item plus the prior cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use upskill_core::difficulty::{
    assignment_difficulty_all, empirical_prior, generation_difficulty_all,
    generation_difficulty_with_prior, SkillPrior,
};
use upskill_core::train::{train, TrainConfig};
use upskill_datasets::synthetic::{generate, SyntheticConfig};

fn trained() -> (
    upskill_datasets::synthetic::SyntheticData,
    upskill_core::TrainResult,
) {
    let data = generate(&SyntheticConfig {
        n_users: 100,
        n_items: 1_000,
        n_levels: 5,
        mean_sequence_len: 40.0,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 6,
    })
    .expect("generation");
    let result = train(
        &data.dataset,
        &TrainConfig::new(5).with_min_init_actions(30),
    )
    .expect("training");
    (data, result)
}

fn bench_estimators(c: &mut Criterion) {
    let (data, result) = trained();
    let mut group = c.benchmark_group("difficulty/all_items");
    group.bench_function("assignment", |b| {
        b.iter(|| {
            assignment_difficulty_all(&data.dataset, &result.assignments).expect("difficulty")
        })
    });
    group.bench_function("generation_uniform", |b| {
        b.iter(|| {
            generation_difficulty_all(&result.model, &data.dataset, SkillPrior::Uniform, None)
                .expect("difficulty")
        })
    });
    group.bench_function("generation_empirical", |b| {
        b.iter(|| {
            generation_difficulty_all(
                &result.model,
                &data.dataset,
                SkillPrior::Empirical,
                Some(&result.assignments),
            )
            .expect("difficulty")
        })
    });
    group.finish();
}

fn bench_single_item(c: &mut Criterion) {
    let (data, result) = trained();
    let prior = empirical_prior(&result.assignments, 5).expect("prior");
    let mut group = c.benchmark_group("difficulty/single_item");
    for item in [0u32, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(item), &item, |b, &item| {
            let features = data.dataset.item_features(item);
            b.iter(|| {
                generation_difficulty_with_prior(&result.model, features, &prior)
                    .expect("difficulty")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_estimators, bench_single_item
}
criterion_main!(benches);
