//! Microbenchmarks for the DP assignment step (Eq. 4) — the dominant cost
//! of training (complexity O(|A_u|·F·S)). Sweeps sequence length and the
//! number of skill levels, and measures the user-parallel variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use upskill_core::assign::{assign_all, assign_all_direct, assign_all_with_table, assign_sequence};
use upskill_core::emission::EmissionTable;
use upskill_core::init::initialize_model;
use upskill_core::parallel::{assign_all_parallel, ParallelConfig};
use upskill_datasets::synthetic::{generate, SyntheticConfig};

fn config(n_users: usize, len: f64, levels: usize) -> SyntheticConfig {
    SyntheticConfig {
        n_users,
        n_items: 500,
        n_levels: levels,
        mean_sequence_len: len,
        p_at_level: 0.5,
        p_advance: 0.1,
        n_categories: 10,
        seed: 9,
    }
}

fn bench_sequence_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_sequence/length");
    for len in [20usize, 50, 100, 200] {
        let data = generate(&config(4, len as f64, 5)).expect("generation");
        let model = initialize_model(&data.dataset, 5, 10, 0.01).expect("init");
        let seq = data
            .dataset
            .sequences()
            .iter()
            .max_by_key(|s| s.len())
            .expect("sequence")
            .clone();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| assign_sequence(&model, &data.dataset, &seq).expect("assignment"))
        });
    }
    group.finish();
}

fn bench_skill_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_all/levels");
    for levels in [2usize, 5, 10] {
        let data = generate(&config(50, 50.0, levels)).expect("generation");
        let model = initialize_model(&data.dataset, levels, 30, 0.01).expect("init");
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, _| {
            b.iter(|| assign_all(&model, &data.dataset).expect("assignment"))
        });
    }
    group.finish();
}

fn bench_parallel_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_all/threads");
    let data = generate(&config(100, 50.0, 5)).expect("generation");
    let model = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");
    for threads in [1usize, 2, 4] {
        let pc = ParallelConfig::sequential()
            .with_users(true)
            .with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| assign_all_parallel(&model, &data.dataset, &pc).expect("assignment"))
        });
    }
    group.finish();
}

/// Table-backed vs direct assignment at the acceptance workload: 200 items,
/// 500 users × 100 mean actions, S=5, mixed feature kinds. The table turns
/// O(total_actions) emission evaluations into O(n_items) per pass; with
/// ~50k actions over 200 items the direct path re-evaluates each item's
/// distributions ~250× per sweep.
fn bench_emission_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_all/emission");
    let cfg = SyntheticConfig {
        n_items: 200,
        ..config(500, 100.0, 5)
    };
    let data = generate(&cfg).expect("generation");
    let model = initialize_model(&data.dataset, 5, 30, 0.01).expect("init");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| assign_all_direct(&model, &data.dataset).expect("assignment"))
    });
    group.bench_function("table", |b| {
        b.iter(|| {
            let table = EmissionTable::build(&model, &data.dataset);
            assign_all_with_table(&table, &data.dataset).expect("assignment")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sequence_length, bench_skill_levels, bench_parallel_assignment,
        bench_emission_table
}
criterion_main!(benches);
