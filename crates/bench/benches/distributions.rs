//! Benchmarks for the distribution layer: log-likelihood scoring (the DP's
//! inner loop) and the per-cell MLE fits of the update step, including the
//! gamma Newton-vs-method-of-moments ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use upskill_core::dist::{Categorical, Gamma, LogNormal, Poisson};

fn samples(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 0.1 + (i as f64 * 0.7919).sin().abs() * 9.0 + (i % 7) as f64)
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist/log_likelihood");
    let cat = Categorical::fit_from_counts(&vec![3u64; 1000], 0.01).expect("fit");
    let poi = Poisson::new(6.5).expect("poisson");
    let gam = Gamma::new(3.0, 1.5).expect("gamma");
    let lgn = LogNormal::new(1.0, 0.6).expect("lognormal");
    group.bench_function("categorical", |b| {
        b.iter(|| (0..1000u32).map(|v| cat.log_prob(v % 1000)).sum::<f64>())
    });
    group.bench_function("poisson", |b| {
        b.iter(|| (0..1000u64).map(|k| poi.log_pmf(k % 40)).sum::<f64>())
    });
    group.bench_function("gamma", |b| {
        b.iter(|| (1..1000).map(|x| gam.log_pdf(x as f64 * 0.01)).sum::<f64>())
    });
    group.bench_function("lognormal", |b| {
        b.iter(|| (1..1000).map(|x| lgn.log_pdf(x as f64 * 0.01)).sum::<f64>())
    });
    group.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist/fit");
    let counts: Vec<u64> = (0..5000).map(|i| (i % 13) as u64).collect();
    let xs = samples(5000);
    let ks: Vec<u64> = (0..5000u64).map(|i| i % 23).collect();
    group.bench_function("categorical_5000", |b| {
        b.iter(|| Categorical::fit_from_counts(&counts, 0.01).expect("fit"))
    });
    group.bench_function("poisson_5000", |b| {
        b.iter(|| Poisson::fit(&ks).expect("fit"))
    });
    group.bench_function("gamma_newton_5000", |b| {
        b.iter(|| Gamma::fit(&xs).expect("fit"))
    });
    group.bench_function("gamma_moments_5000", |b| {
        b.iter(|| Gamma::fit_moments(&xs).expect("fit"))
    });
    group.bench_function("lognormal_5000", |b| {
        b.iter(|| LogNormal::fit(&xs).expect("fit"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scoring, bench_fitting
}
criterion_main!(benches);
