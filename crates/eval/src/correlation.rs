//! Correlation measures used throughout the paper's evaluation:
//! Pearson's `r`, Spearman's `ρ`, and Kendall's `τ` (the τ-b variant, which
//! handles ties — necessary because skill levels are small integers).
//!
//! Kendall's τ is computed in `O(n log n)` with a merge-sort inversion
//! count rather than the naive `O(n²)` pair scan; the naive version is kept
//! as [`kendall_tau_naive`] for the ablation bench and cross-checking.

use crate::float_cmp::{exact_eq, is_zero};
use crate::EvalError;

/// Pearson product-moment correlation coefficient.
///
/// Returns an error for mismatched lengths, fewer than 2 points, or
/// zero-variance inputs.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, EvalError> {
    check_paired(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if is_zero(sxx) || is_zero(syy) {
        return Err(EvalError::ZeroVariance);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Fractional ranks (average rank for ties), 1-based.
pub fn fractional_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && exact_eq(x[order[j + 1]], x[order[i]]) {
            j += 1;
        }
        // Average of ranks i+1 ..= j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation: Pearson on fractional ranks.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, EvalError> {
    check_paired(x, y)?;
    pearson(&fractional_ranks(x), &fractional_ranks(y))
}

/// Kendall's τ-b in `O(n log n)` (Knight's algorithm).
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64, EvalError> {
    check_paired(x, y)?;
    let n = x.len();

    // Sort by x, tie-break by y.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(y[a].partial_cmp(&y[b]).unwrap_or(std::cmp::Ordering::Equal))
    });
    let ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    let xs: Vec<f64> = order.iter().map(|&i| x[i]).collect();

    let n_pairs = n as f64 * (n as f64 - 1.0) / 2.0;

    // Ties in x (t1), joint ties (t3).
    let mut ties_x = 0.0;
    let mut ties_xy = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && exact_eq(xs[j + 1], xs[i]) {
                j += 1;
            }
            let run = (j - i + 1) as f64;
            ties_x += run * (run - 1.0) / 2.0;
            // Joint ties within the x-run.
            let mut k = i;
            while k <= j {
                let mut m = k;
                while m < j && exact_eq(ys[m + 1], ys[k]) {
                    m += 1;
                }
                let jr = (m - k + 1) as f64;
                ties_xy += jr * (jr - 1.0) / 2.0;
                k = m + 1;
            }
            i = j + 1;
        }
    }

    // Ties in y (t2).
    let mut sorted_y: Vec<f64> = y.to_vec();
    sorted_y.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut ties_y = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && exact_eq(sorted_y[j + 1], sorted_y[i]) {
                j += 1;
            }
            let run = (j - i + 1) as f64;
            ties_y += run * (run - 1.0) / 2.0;
            i = j + 1;
        }
    }

    // Discordant pairs = inversions of ys via merge sort.
    let mut buf = ys.clone();
    let mut tmp = vec![0.0; n];
    let swaps = merge_count(&mut buf, &mut tmp);

    let concordant_minus_discordant = n_pairs - ties_x - ties_y + ties_xy - 2.0 * swaps as f64;
    let denom = ((n_pairs - ties_x) * (n_pairs - ties_y)).sqrt();
    if is_zero(denom) {
        return Err(EvalError::ZeroVariance);
    }
    Ok(concordant_minus_discordant / denom)
}

/// Counts inversions while merge-sorting `a` in place.
fn merge_count(a: &mut [f64], tmp: &mut [f64]) -> u64 {
    let n = a.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut inv = merge_count(left, &mut tmp[..mid]) + merge_count(right, &mut tmp[mid..]);
    // Merge.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            tmp[k] = left[i];
            i += 1;
        } else {
            tmp[k] = right[j];
            inv += (left.len() - i) as u64;
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        tmp[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        tmp[k] = right[j];
        j += 1;
        k += 1;
    }
    a.copy_from_slice(&tmp[..n]);
    inv
}

/// Naive `O(n²)` Kendall τ-b, for verification and the ablation bench.
pub fn kendall_tau_naive(x: &[f64], y: &[f64]) -> Result<f64, EvalError> {
    check_paired(x, y)?;
    let n = x.len();
    let (mut concordant, mut discordant) = (0f64, 0f64);
    let (mut ties_x, mut ties_y) = (0f64, 0f64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if is_zero(dx) && is_zero(dy) {
                // joint tie: counts in neither
            } else if is_zero(dx) {
                ties_x += 1.0;
            } else if is_zero(dy) {
                ties_y += 1.0;
            } else if dx * dy > 0.0 {
                concordant += 1.0;
            } else {
                discordant += 1.0;
            }
        }
    }
    let n0 = n as f64 * (n as f64 - 1.0) / 2.0;
    // Joint ties subtract from both tie totals in τ-b's denominator terms.
    let mut joint = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            if exact_eq(x[i], x[j]) && exact_eq(y[i], y[j]) {
                joint += 1.0;
            }
        }
    }
    let tx = ties_x + joint;
    let ty = ties_y + joint;
    let denom = ((n0 - tx) * (n0 - ty)).sqrt();
    if is_zero(denom) {
        return Err(EvalError::ZeroVariance);
    }
    Ok((concordant - discordant) / denom)
}

fn check_paired(x: &[f64], y: &[f64]) -> Result<(), EvalError> {
    if x.len() != y.len() {
        return Err(EvalError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(EvalError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(EvalError::NonFiniteInput);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed: x=[1,2,3], y=[1,3,2] → r = 0.5
        let r = pearson(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_error_cases() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(EvalError::TooFewSamples { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(EvalError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(EvalError::ZeroVariance)
        ));
        assert!(matches!(
            pearson(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(EvalError::NonFiniteInput)
        ));
    }

    #[test]
    fn fractional_ranks_handle_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r2 = fractional_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r2, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transform leaves ρ = 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // Classic example: x=[1..5], y=[2,1,4,3,5] → ρ = 0.8? Compute:
        // ranks equal values; d = [1,-1,1,-1,0], Σd² = 4, ρ = 1 − 24/(5·24) = 0.8
        let rho = spearman(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 1.0, 4.0, 3.0, 5.0]).unwrap();
        assert!((rho - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let fwd = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &fwd).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_fast_matches_naive_with_ties() {
        // Deterministic pseudo-random data with many ties.
        let mut state = 12345u64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % m
        };
        for trial in 0..20 {
            let n = 30 + trial;
            let x: Vec<f64> = (0..n).map(|_| next(5) as f64).collect();
            let y: Vec<f64> = (0..n).map(|_| next(7) as f64).collect();
            let fast = kendall_tau(&x, &y);
            let naive = kendall_tau_naive(&x, &y);
            match (fast, naive) {
                (Ok(a), Ok(b)) => {
                    assert!((a - b).abs() < 1e-10, "trial {trial}: {a} vs {b}")
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("trial {trial}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn kendall_known_value() {
        // x=[1,2,3,4], y=[1,3,2,4]: 5 concordant, 1 discordant → τ = 4/6.
        let tau = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 3.0, 2.0, 4.0]).unwrap();
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_all_tied_is_error() {
        assert!(matches!(
            kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(EvalError::ZeroVariance)
        ));
    }

    #[test]
    fn correlations_are_symmetric() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0];
        assert!((pearson(&x, &y).unwrap() - pearson(&y, &x).unwrap()).abs() < 1e-12);
        assert!((kendall_tau(&x, &y).unwrap() - kendall_tau(&y, &x).unwrap()).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - spearman(&y, &x).unwrap()).abs() < 1e-12);
    }
}
