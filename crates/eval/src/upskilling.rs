//! Closed-loop upskilling evaluation: adaptive policy vs static
//! recommendation.
//!
//! The paper's recommendation layer (§VII) is scored offline; this
//! harness scores it **in the loop**: simulated learners (see
//! [`upskill_datasets::upskilling`]) repeatedly ask a live
//! [`SkillService`] what to attempt next, succeed or fail as a function
//! of the recommended item's stretch above their true skill, and
//! advance when stretch work succeeds. Two arms run over the *same*
//! trained model:
//!
//! - **static** — the paper's band recommendation
//!   ([`SkillService::recommend`]): best difficulty-fit/interest blend
//!   at the committed level;
//! - **adaptive** — the policy re-ranking
//!   ([`SkillService::recommend_policy`]): teach/motivate/hybrid
//!   objectives over the same band, driven by the learner's recorded
//!   outcomes (successful attempts are ingested; failures are recorded
//!   via [`SkillService::record_outcome`] and never enter the action
//!   sequence).
//!
//! The headline metric is **actions to reach the target level**
//! (censored at the attempt budget); `speedup` is the ratio of static
//! to adaptive median. Everything is seeded and bitwise deterministic
//! for any `threads` value: learner RNG streams are keyed by `(seed,
//! user)`, learner user ids are disjoint, and the services run
//! [`RefitPolicy::Manual`], so partitioning learners across threads
//! cannot change any trace.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use upskill_core::error::CoreError;
use upskill_core::parallel::ParallelConfig;
use upskill_core::policy::{PolicyConfig, PolicyMode};
use upskill_core::recommend::RecommendConfig;
use upskill_core::rng::SplitMix64;
use upskill_core::streaming::RefitPolicy;
use upskill_core::train::{train, TrainConfig};
use upskill_core::types::{Action, Dataset, ItemId, SkillLevel, UserId};
use upskill_datasets::upskilling::{simulate_learner, LearnerConfig, LearnerEnv, LearnerTrace};
use upskill_serve::{ServeConfig, ServeError, SkillService};

/// First simulated learner id — far above any base-dataset user, so
/// learners never collide with trained users.
pub const LEARNER_BASE: UserId = 1_000_000;

/// Configuration of one adaptive-vs-static evaluation run.
#[derive(Debug, Clone)]
pub struct UpskillEvalConfig {
    /// How many fresh learners to simulate per arm.
    pub n_learners: usize,
    /// The level every learner starts from.
    pub start: SkillLevel,
    /// The level learners work toward.
    pub target: SkillLevel,
    /// Result-list length requested per step (the learner attempts the
    /// top item).
    pub k: usize,
    /// Worker threads for the learner population (any value produces
    /// bitwise identical results).
    pub threads: usize,
    /// The item every learner bootstraps with (one ingest to admit the
    /// user and commit a starting level); pick an easiest-level item.
    pub bootstrap_item: ItemId,
    /// Stochastic learner model.
    pub learner: LearnerConfig,
    /// The adaptive arm's policy.
    pub policy: PolicyConfig,
    /// Band construction shared by both arms.
    pub recommend: RecommendConfig,
    /// Training configuration for the base model.
    pub train: TrainConfig,
}

impl UpskillEvalConfig {
    /// A hybrid-policy evaluation over `n_levels` with sensible
    /// defaults; tune per domain.
    pub fn hybrid(n_levels: usize) -> Self {
        Self {
            n_learners: 40,
            start: 1,
            target: n_levels as SkillLevel,
            k: 3,
            threads: 1,
            bootstrap_item: 0,
            learner: LearnerConfig {
                n_levels,
                ..LearnerConfig::default()
            },
            // Aptitude-forward hybrid: the success-rate-weighted reach
            // term probes upward while its own failures pull it back,
            // so the pick tracks the learner's frontier. A heavy
            // static blend would anchor picks to the committed level
            // and erase exactly that adaptivity.
            policy: PolicyConfig {
                w_aptitude: 0.55,
                w_expected: 0.25,
                w_gap: 0.2,
                static_weight: 0.1,
                ..PolicyConfig::hybrid()
            },
            // A wide band matters: the committed level can overrun the
            // learner's true skill (stretch successes advance it fast),
            // and only a generous lower slack leaves the policy's
            // expected-performance objective room to steer back to
            // difficulties the learner actually lands.
            recommend: RecommendConfig {
                lower_slack: 2.0,
                upper_slack: 2.0,
                ..RecommendConfig::default()
            },
            train: TrainConfig::new(n_levels),
        }
    }
}

/// Aggregate outcome of one arm over the learner population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmReport {
    /// Median actions to reach the target (censored runs count the
    /// full budget).
    pub median_actions: f64,
    /// Mean actions to reach the target (same censoring).
    pub mean_actions: f64,
    /// Learners that reached the target within the budget.
    pub reached: usize,
    /// Learners simulated.
    pub n_learners: usize,
    /// Order-sensitive digest over every learner trace — the bitwise
    /// fingerprint the determinism tests compare across thread counts.
    pub digest: u64,
}

/// Adaptive-vs-static outcome on one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainReport {
    /// Domain label (e.g. `"synthetic-sparse"`).
    pub name: String,
    /// Items in the domain.
    pub n_items: usize,
    /// Skill levels in the domain.
    pub n_levels: usize,
    /// The target level learners worked toward.
    pub target: SkillLevel,
    /// The adaptive arm's policy mode.
    pub mode: PolicyMode,
    /// The static band-recommendation arm.
    pub static_arm: ArmReport,
    /// The policy re-ranking arm.
    pub adaptive_arm: ArmReport,
    /// `static_arm.median_actions / adaptive_arm.median_actions` —
    /// above 1.0 means the adaptive policy upskills faster.
    pub speedup: f64,
}

/// Which recommendation surface an arm drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Static,
    Adaptive(PolicyMode),
}

/// [`LearnerEnv`] over a live service: recommendations come from the
/// requested arm, successful attempts are ingested as completed
/// actions, failures are recorded as policy evidence (adaptive arm).
struct ServiceEnv<'a> {
    svc: &'a SkillService,
    arm: Arm,
    k: usize,
    clock: i64,
    error: Option<ServeError>,
}

impl ServiceEnv<'_> {
    fn note(&mut self, e: ServeError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

impl LearnerEnv for ServiceEnv<'_> {
    fn next_item(&mut self, user: UserId, _step: usize) -> Option<(ItemId, f64)> {
        if self.error.is_some() {
            return None;
        }
        match self.arm {
            Arm::Static => match self.svc.recommend(user, Some(self.k)) {
                Ok(recs) => recs.first().map(|r| (r.item, r.difficulty)),
                Err(e) => {
                    self.note(e);
                    None
                }
            },
            Arm::Adaptive(mode) => match self.svc.recommend_policy(user, Some(self.k), mode) {
                Ok(recs) => recs.first().map(|r| (r.item, r.difficulty)),
                // A drained band is a legitimate end of supply, not a
                // harness bug.
                Err(ServeError::EmptyBand { .. }) => None,
                Err(e) => {
                    self.note(e);
                    None
                }
            },
        }
    }

    fn observe(
        &mut self,
        user: UserId,
        _step: usize,
        item: ItemId,
        _difficulty: f64,
        correct: bool,
    ) {
        if self.error.is_some() {
            return;
        }
        if correct {
            // A successful attempt is a completed action — the paper's
            // action-sequence semantics; ingest admits it (and, on the
            // adaptive service, auto-records the policy success).
            let t = self.clock;
            self.clock += 1;
            if let Err(e) = self.svc.ingest(Action::new(t, user, item)) {
                self.note(e);
            }
        } else if let Arm::Adaptive(_) = self.arm {
            // Failures never enter the action sequence; they only feed
            // the policy state.
            if let Err(e) = self.svc.record_outcome(user, item, false) {
                self.note(e);
            }
        }
    }
}

/// Runs one arm's learner population against `svc`, partitioned over
/// `threads` workers; results are ordered by learner index regardless
/// of partitioning.
fn run_arm(
    svc: &SkillService,
    arm: Arm,
    cfg: &UpskillEvalConfig,
) -> Result<Vec<LearnerTrace>, ServeError> {
    let n = cfg.n_learners;
    let threads = cfg.threads.max(1).min(n.max(1));
    let mut slots: Vec<Option<Result<LearnerTrace, ServeError>>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move || {
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let i = base + off;
                    let user = LEARNER_BASE + i as UserId;
                    *slot = Some(simulate_one(svc, arm, user, cfg));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.unwrap_or(Err(ServeError::Core(CoreError::EmptyDataset))))
        .collect()
}

/// One learner's full closed loop: bootstrap ingest, then simulate.
fn simulate_one(
    svc: &SkillService,
    arm: Arm,
    user: UserId,
    cfg: &UpskillEvalConfig,
) -> Result<LearnerTrace, ServeError> {
    let mut env = ServiceEnv {
        svc,
        arm,
        k: cfg.k,
        clock: 1,
        error: None,
    };
    // Admit the learner with one easy completed action, so the service
    // has a committed level to recommend from.
    svc.ingest(Action::new(0, user, cfg.bootstrap_item))?;
    let trace = simulate_learner(user, cfg.start, cfg.target, &cfg.learner, &mut env)
        .map_err(ServeError::Core)?;
    match env.error {
        Some(e) => Err(e),
        None => Ok(trace),
    }
}

/// Collapses a population of traces into an [`ArmReport`].
fn summarize(traces: &[LearnerTrace], budget: usize) -> ArmReport {
    let mut actions: Vec<usize> = traces.iter().map(|t| t.actions_to_target(budget)).collect();
    actions.sort_unstable();
    let n = actions.len();
    let median = if n == 0 {
        0.0
    } else if n % 2 == 1 {
        actions[n / 2] as f64
    } else {
        (actions[n / 2 - 1] + actions[n / 2]) as f64 / 2.0
    };
    let mean = if n == 0 {
        0.0
    } else {
        actions.iter().sum::<usize>() as f64 / n as f64
    };
    let mut digest = SplitMix64::new(0x6576_616c).next_u64();
    for t in traces {
        digest = digest.rotate_left(11) ^ t.digest();
    }
    ArmReport {
        median_actions: median,
        mean_actions: mean,
        reached: traces.iter().filter(|t| t.reached_at.is_some()).count(),
        n_learners: n,
        digest,
    }
}

/// Trains one model on `dataset` and runs both arms' learner
/// populations against fresh services resumed from it.
///
/// Both services pin [`RefitPolicy::Manual`], so the emission table
/// (and every difficulty estimate) stays at the trained epoch for the
/// whole run — the re-ranking layer, not model drift, is what differs
/// between arms.
pub fn evaluate_upskilling(
    dataset: &Dataset,
    name: &str,
    cfg: &UpskillEvalConfig,
) -> Result<DomainReport, ServeError> {
    evaluate_upskilling_traced(dataset, name, cfg).map(|(report, _, _)| report)
}

/// [`evaluate_upskilling`], additionally returning the raw learner
/// traces of both arms (static first) for diagnostics.
pub fn evaluate_upskilling_traced(
    dataset: &Dataset,
    name: &str,
    cfg: &UpskillEvalConfig,
) -> Result<(DomainReport, Vec<LearnerTrace>, Vec<LearnerTrace>), ServeError> {
    if cfg.n_learners == 0 {
        return Err(ServeError::BadRequest {
            what: "n_learners",
            detail: "need at least one simulated learner",
        });
    }
    let result = train(dataset, &cfg.train)?;
    let serve_static = ServeConfig {
        n_shards: 4,
        policy: RefitPolicy::Manual,
        recommend: cfg.recommend,
        ..ServeConfig::default()
    };
    let serve_adaptive = ServeConfig {
        adaptive: Some(cfg.policy),
        ..serve_static
    };
    let static_svc = SkillService::resume(
        dataset.clone(),
        &result,
        cfg.train,
        ParallelConfig::default(),
        serve_static,
    )?;
    let adaptive_svc = SkillService::resume(
        dataset.clone(),
        &result,
        cfg.train,
        ParallelConfig::default(),
        serve_adaptive,
    )?;

    let static_traces = run_arm(&static_svc, Arm::Static, cfg)?;
    let adaptive_traces = run_arm(&adaptive_svc, Arm::Adaptive(cfg.policy.mode), cfg)?;
    let budget = cfg.learner.max_actions;
    let static_arm = summarize(&static_traces, budget);
    let adaptive_arm = summarize(&adaptive_traces, budget);
    let speedup = if adaptive_arm.median_actions > 0.0 {
        static_arm.median_actions / adaptive_arm.median_actions
    } else {
        1.0
    };
    let report = DomainReport {
        name: name.to_string(),
        n_items: dataset.items().len(),
        n_levels: cfg.train.n_levels,
        target: cfg.target,
        mode: cfg.policy.mode,
        static_arm,
        adaptive_arm,
        speedup,
    };
    Ok((report, static_traces, adaptive_traces))
}

/// Per-level attempt histogram of a trace population — a diagnostic
/// for tuning learner/policy parameters.
pub fn attempts_by_skill(traces: &[LearnerTrace]) -> HashMap<SkillLevel, usize> {
    let mut h = HashMap::new();
    for t in traces {
        let mut skill = t.start;
        for s in &t.steps {
            *h.entry(skill).or_insert(0) += 1;
            skill = s.skill_after;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use upskill_datasets::synthetic::{generate, SyntheticConfig};

    fn tiny_domain() -> Dataset {
        let config = SyntheticConfig {
            n_users: 60,
            n_items: 60,
            n_levels: 3,
            mean_sequence_len: 30.0,
            p_at_level: 0.5,
            p_advance: 0.1,
            n_categories: 6,
            seed: 11,
        };
        generate(&config).unwrap().dataset
    }

    fn tiny_eval() -> UpskillEvalConfig {
        let mut cfg = UpskillEvalConfig::hybrid(3);
        cfg.n_learners = 6;
        cfg.learner.max_actions = 60;
        cfg.learner.seed = 5;
        cfg.train = TrainConfig::new(3)
            .with_max_iterations(3)
            .with_min_init_actions(10);
        cfg
    }

    #[test]
    fn evaluation_runs_and_reports_both_arms() {
        let dataset = tiny_domain();
        let report = evaluate_upskilling(&dataset, "tiny", &tiny_eval()).unwrap();
        assert_eq!(report.name, "tiny");
        assert_eq!(report.static_arm.n_learners, 6);
        assert_eq!(report.adaptive_arm.n_learners, 6);
        assert!(report.static_arm.median_actions > 0.0);
        assert!(report.speedup.is_finite());
    }

    #[test]
    fn thread_count_does_not_change_any_bit() {
        let dataset = tiny_domain();
        let mut one = tiny_eval();
        one.threads = 1;
        let mut three = tiny_eval();
        three.threads = 3;
        let a = evaluate_upskilling(&dataset, "tiny", &one).unwrap();
        let b = evaluate_upskilling(&dataset, "tiny", &three).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_learners_is_rejected() {
        let dataset = tiny_domain();
        let mut cfg = tiny_eval();
        cfg.n_learners = 0;
        assert!(matches!(
            evaluate_upskilling(&dataset, "tiny", &cfg),
            Err(ServeError::BadRequest {
                what: "n_learners",
                ..
            })
        ));
    }
}
