//! # upskill-eval
//!
//! Evaluation metrics and statistical machinery for the upskill workspace:
//! the correlation measures (Pearson/Spearman/Kendall), error measures
//! (RMSE/MAE), ranking metrics (Acc@k, reciprocal rank), significance tests
//! (Wilcoxon signed-rank + Bonferroni), and confidence intervals
//! (bootstrap, Fisher-z) used by the paper's Tables VI–XII — plus the
//! [`upskilling`] closed-loop harness scoring the adaptive
//! recommendation policy against the paper's static band recommender.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod correlation;
pub mod error_metrics;
pub mod float_cmp;
pub mod goodness;
pub mod ranking;
pub mod significance;
pub mod upskilling;

use std::fmt;

pub use bootstrap::{bootstrap_ci, fisher_z_ci, pearson_ci, ConfidenceInterval};
pub use correlation::{kendall_tau, pearson, spearman};
pub use error_metrics::{mae, mse, rmse};
pub use goodness::{chi_square_gof, ks_statistic, ChiSquareResult};
pub use ranking::{mean_acc_at_k, mean_reciprocal_rank};
pub use significance::{bonferroni, wilcoxon_signed_rank, WilcoxonResult};

/// Errors produced by metric computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// Paired inputs had different lengths.
    LengthMismatch {
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// Not enough samples for the statistic.
    TooFewSamples {
        /// Minimum required.
        needed: usize,
        /// Actually provided.
        got: usize,
    },
    /// An input contained NaN or infinity.
    NonFiniteInput,
    /// A statistic is undefined because an input has no variation.
    ZeroVariance,
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch { left, right } => {
                write!(f, "paired inputs have different lengths: {left} vs {right}")
            }
            EvalError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            EvalError::NonFiniteInput => write!(f, "input contains NaN or infinity"),
            EvalError::ZeroVariance => {
                write!(f, "statistic undefined: an input has zero variance")
            }
            EvalError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A row of correlation + error scores, as reported in Tables VI–IX.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreRow {
    /// Pearson's r.
    pub pearson: f64,
    /// Spearman's ρ.
    pub spearman: f64,
    /// Kendall's τ-b.
    pub kendall: f64,
    /// Root mean squared error.
    pub rmse: f64,
}

impl ScoreRow {
    /// Computes all four measures between predictions and ground truth.
    pub fn compute(pred: &[f64], truth: &[f64]) -> Result<Self, EvalError> {
        Ok(Self {
            pearson: pearson(pred, truth)?,
            spearman: spearman(pred, truth)?,
            kendall: kendall_tau(pred, truth)?,
            rmse: rmse(pred, truth)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_row_computes_all_measures() {
        let truth: Vec<f64> = (0..50).map(|i| (i % 5) as f64 + 1.0).collect();
        let pred: Vec<f64> = truth.iter().map(|&t| t + 0.1).collect();
        let row = ScoreRow::compute(&pred, &truth).unwrap();
        assert!((row.pearson - 1.0).abs() < 1e-9);
        assert!((row.spearman - 1.0).abs() < 1e-9);
        assert!((row.kendall - 1.0).abs() < 1e-9);
        assert!((row.rmse - 0.1).abs() < 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = EvalError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        assert!(EvalError::ZeroVariance.to_string().contains("variance"));
    }
}
