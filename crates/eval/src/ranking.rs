//! Ranking metrics for the item-prediction task (Tables X–XI):
//! top-`k` accuracy and (mean) reciprocal rank, computed from the 1-based
//! rank of the true item.

use crate::EvalError;

/// Acc@k for a single prediction: 1 if the true item ranked in the top `k`.
pub fn acc_at_k(rank: usize, k: usize) -> f64 {
    if rank == 0 {
        return 0.0; // ranks are 1-based; 0 is invalid input
    }
    if rank <= k {
        1.0
    } else {
        0.0
    }
}

/// Reciprocal rank of a single prediction.
pub fn reciprocal_rank(rank: usize) -> f64 {
    if rank == 0 {
        0.0
    } else {
        1.0 / rank as f64
    }
}

/// Mean Acc@k over many predictions.
pub fn mean_acc_at_k(ranks: &[usize], k: usize) -> Result<f64, EvalError> {
    if ranks.is_empty() {
        return Err(EvalError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(ranks.iter().map(|&r| acc_at_k(r, k)).sum::<f64>() / ranks.len() as f64)
}

/// Mean reciprocal rank over many predictions.
pub fn mean_reciprocal_rank(ranks: &[usize]) -> Result<f64, EvalError> {
    if ranks.is_empty() {
        return Err(EvalError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(ranks.iter().map(|&r| reciprocal_rank(r)).sum::<f64>() / ranks.len() as f64)
}

/// Expected Acc@k of random guessing over `n_items` items: `k / n`.
pub fn random_acc_at_k(k: usize, n_items: usize) -> f64 {
    if n_items == 0 {
        return 0.0;
    }
    (k.min(n_items) as f64) / n_items as f64
}

/// Expected RR of random guessing: `H(n) / n` (harmonic number over n).
pub fn random_reciprocal_rank(n_items: usize) -> f64 {
    if n_items == 0 {
        return 0.0;
    }
    let h: f64 = (1..=n_items).map(|i| 1.0 / i as f64).sum();
    h / n_items as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_at_k_boundaries() {
        assert_eq!(acc_at_k(1, 10), 1.0);
        assert_eq!(acc_at_k(10, 10), 1.0);
        assert_eq!(acc_at_k(11, 10), 0.0);
        assert_eq!(acc_at_k(0, 10), 0.0);
    }

    #[test]
    fn reciprocal_rank_values() {
        assert_eq!(reciprocal_rank(1), 1.0);
        assert_eq!(reciprocal_rank(4), 0.25);
        assert_eq!(reciprocal_rank(0), 0.0);
    }

    #[test]
    fn means_over_many() {
        let ranks = [1usize, 5, 20, 2];
        assert!((mean_acc_at_k(&ranks, 10).unwrap() - 0.75).abs() < 1e-12);
        let want_rr = (1.0 + 0.2 + 0.05 + 0.5) / 4.0;
        assert!((mean_reciprocal_rank(&ranks).unwrap() - want_rr).abs() < 1e-12);
        assert!(mean_acc_at_k(&[], 10).is_err());
        assert!(mean_reciprocal_rank(&[]).is_err());
    }

    #[test]
    fn random_baselines() {
        assert!((random_acc_at_k(10, 100) - 0.1).abs() < 1e-12);
        assert_eq!(random_acc_at_k(10, 5), 1.0);
        assert_eq!(random_acc_at_k(10, 0), 0.0);
        // H(4)/4 = (1 + 1/2 + 1/3 + 1/4)/4
        let want = (1.0 + 0.5 + 1.0 / 3.0 + 0.25) / 4.0;
        assert!((random_reciprocal_rank(4) - want).abs() < 1e-12);
    }
}
