//! Goodness-of-fit tests: Pearson's chi-square for discrete distributions
//! and the one-sample Kolmogorov–Smirnov statistic for continuous ones.
//! Used by the dataset simulators' validation tests (does the sampled data
//! actually follow the configured distribution?) and available to users
//! for checking a trained model's per-cell fit against held-out data.

use crate::significance::normal_cdf;
use crate::EvalError;

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The test statistic `Σ (O − E)² / E`.
    pub statistic: f64,
    /// Degrees of freedom (categories − 1, after pooling).
    pub dof: usize,
    /// Approximate p-value (Wilson–Hilferty normal approximation).
    pub p_value: f64,
}

/// Pearson chi-square test of observed counts against expected
/// probabilities. Categories with expected count < 5 are pooled into the
/// smallest-expectation bucket (the classical validity rule).
pub fn chi_square_gof(
    observed: &[u64],
    expected_probs: &[f64],
) -> Result<ChiSquareResult, EvalError> {
    if observed.len() != expected_probs.len() {
        return Err(EvalError::LengthMismatch {
            left: observed.len(),
            right: expected_probs.len(),
        });
    }
    if observed.len() < 2 {
        return Err(EvalError::TooFewSamples {
            needed: 2,
            got: observed.len(),
        });
    }
    let total: f64 = observed.iter().map(|&o| o as f64).sum();
    if total <= 0.0 {
        return Err(EvalError::ZeroVariance);
    }
    let psum: f64 = expected_probs.iter().sum();
    if expected_probs
        .iter()
        .any(|&p| !(0.0..=1.0 + 1e-9).contains(&p))
        || (psum - 1.0).abs() > 1e-6
    {
        return Err(EvalError::InvalidParameter {
            what: "expected probabilities",
        });
    }

    // Pool low-expectation categories.
    let mut cells: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut pooled = (0.0f64, 0.0f64);
    for (&o, &p) in observed.iter().zip(expected_probs) {
        let e = p * total;
        if e < 5.0 {
            pooled.0 += o as f64;
            pooled.1 += e;
        } else {
            cells.push((o as f64, e));
        }
    }
    if pooled.1 > 0.0 {
        cells.push(pooled);
    }
    if cells.len() < 2 {
        return Err(EvalError::TooFewSamples {
            needed: 2,
            got: cells.len(),
        });
    }
    let statistic: f64 = cells
        .iter()
        .map(|&(o, e)| (o - e) * (o - e) / e.max(1e-12))
        .sum();
    let dof = cells.len() - 1;
    // Wilson–Hilferty: (X²/k)^(1/3) ≈ Normal(1 − 2/(9k), 2/(9k)).
    let k = dof as f64;
    let z = ((statistic / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    let p_value = 1.0 - normal_cdf(z);
    Ok(ChiSquareResult {
        statistic,
        dof,
        p_value: p_value.clamp(0.0, 1.0),
    })
}

/// One-sample Kolmogorov–Smirnov statistic `D_n = sup |F_n(x) − F(x)|`
/// against an arbitrary CDF, plus the asymptotic p-value
/// (Kolmogorov distribution, two-term series).
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<(f64, f64), EvalError> {
    if samples.len() < 5 {
        return Err(EvalError::TooFewSamples {
            needed: 5,
            got: samples.len(),
        });
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(EvalError::NonFiniteInput);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    // Kolmogorov asymptotic p-value: 2 Σ (−1)^{k−1} exp(−2 k² λ²).
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let mut p = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        p += if k % 2 == 1 { 2.0 * term } else { -2.0 * term };
        if term < 1e-12 {
            break;
        }
    }
    Ok((d, p.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_accepts_matching_distribution() {
        // 1000 draws perfectly proportional to the expectation.
        let observed = [250u64, 250, 250, 250];
        let expected = [0.25; 4];
        let r = chi_square_gof(&observed, &expected).unwrap();
        assert!(r.statistic < 1e-9);
        assert!(r.p_value > 0.9);
        assert_eq!(r.dof, 3);
    }

    #[test]
    fn chi_square_rejects_wrong_distribution() {
        let observed = [700u64, 100, 100, 100];
        let expected = [0.25; 4];
        let r = chi_square_gof(&observed, &expected).unwrap();
        assert!(r.statistic > 100.0);
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn chi_square_pools_sparse_cells() {
        // Last two categories expect < 5 counts and get pooled.
        let observed = [50u64, 45, 3, 2];
        let expected = [0.5, 0.45, 0.03, 0.02];
        let r = chi_square_gof(&observed, &expected).unwrap();
        assert_eq!(r.dof, 2); // 2 full cells + 1 pooled − 1
        assert!(r.p_value > 0.1);
    }

    #[test]
    fn chi_square_error_cases() {
        assert!(chi_square_gof(&[1, 2], &[0.5]).is_err());
        assert!(chi_square_gof(&[0, 0], &[0.5, 0.5]).is_err());
        assert!(chi_square_gof(&[5, 5], &[0.9, 0.3]).is_err());
        assert!(chi_square_gof(&[5], &[1.0]).is_err());
    }

    #[test]
    fn ks_accepts_uniform_samples_from_uniform_cdf() {
        // Deterministic stratified uniform sample.
        let samples: Vec<f64> = (0..200).map(|i| (i as f64 + 0.5) / 200.0).collect();
        let (d, p) = ks_statistic(&samples, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(d < 0.01, "D = {d}");
        assert!(p > 0.9, "p = {p}");
    }

    #[test]
    fn ks_rejects_shifted_distribution() {
        let samples: Vec<f64> = (0..200).map(|i| 0.5 + (i as f64 + 0.5) / 400.0).collect();
        let (d, p) = ks_statistic(&samples, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(d > 0.4, "D = {d}");
        assert!(p < 0.001, "p = {p}");
    }

    #[test]
    fn ks_error_cases() {
        assert!(ks_statistic(&[1.0], |x| x).is_err());
        assert!(ks_statistic(&[f64::NAN; 10], |x| x).is_err());
    }
}
