//! Confidence intervals: percentile bootstrap for arbitrary paired
//! statistics and the Fisher-z analytic CI for Pearson's `r` (the paper
//! reports 95% CIs for its correlation scores).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::correlation::pearson;
use crate::EvalError;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

/// Percentile-bootstrap CI for any paired statistic.
///
/// Resamples index pairs with replacement `n_resamples` times and takes the
/// empirical `(1±level)/2` quantiles of the statistic. Resamples where the
/// statistic is undefined (e.g. zero variance) are skipped.
pub fn bootstrap_ci<F>(
    x: &[f64],
    y: &[f64],
    statistic: F,
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval, EvalError>
where
    F: Fn(&[f64], &[f64]) -> Result<f64, EvalError>,
{
    if x.len() != y.len() {
        return Err(EvalError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(EvalError::TooFewSamples {
            needed: 2,
            got: x.len(),
        });
    }
    if !(0.0..1.0).contains(&level) {
        return Err(EvalError::InvalidParameter {
            what: "confidence level",
        });
    }
    if n_resamples < 10 {
        return Err(EvalError::InvalidParameter {
            what: "bootstrap resamples",
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = x.len();
    let mut stats = Vec::with_capacity(n_resamples);
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    for _ in 0..n_resamples {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            bx[i] = x[j];
            by[i] = y[j];
        }
        if let Ok(s) = statistic(&bx, &by) {
            stats.push(s);
        }
    }
    if stats.len() < n_resamples / 2 {
        return Err(EvalError::ZeroVariance);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 * alpha).floor() as usize).min(stats.len() - 1);
    let hi_idx = ((stats.len() as f64 * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(stats.len() - 1);
    Ok(ConfidenceInterval {
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    })
}

/// Analytic Fisher-z CI for Pearson's `r`.
pub fn fisher_z_ci(r: f64, n: usize, level: f64) -> Result<ConfidenceInterval, EvalError> {
    if !(-1.0..=1.0).contains(&r) {
        return Err(EvalError::InvalidParameter {
            what: "correlation r",
        });
    }
    if n < 4 {
        return Err(EvalError::TooFewSamples { needed: 4, got: n });
    }
    if !(0.0..1.0).contains(&level) {
        return Err(EvalError::InvalidParameter {
            what: "confidence level",
        });
    }
    let z = 0.5 * ((1.0 + r) / (1.0 - r)).ln();
    let se = 1.0 / ((n as f64) - 3.0).sqrt();
    let crit = normal_quantile((1.0 + level) / 2.0);
    let lo = ((z - crit * se) * 2.0).tanh_half();
    let hi = ((z + crit * se) * 2.0).tanh_half();
    Ok(ConfidenceInterval { lo, hi, level })
}

trait TanhHalf {
    /// `tanh(self / 2)` — inverse of the doubled Fisher transform.
    fn tanh_half(self) -> f64;
}

impl TanhHalf for f64 {
    fn tanh_half(self) -> f64 {
        (self / 2.0).tanh()
    }
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e−9).
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_969,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Convenience: Fisher-z 95% CI computed directly from paired data.
pub fn pearson_ci(x: &[f64], y: &[f64], level: f64) -> Result<ConfidenceInterval, EvalError> {
    let r = pearson(x, y)?;
    fisher_z_ci(r, x.len(), level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.0013) + 3.011).abs() < 1e-2);
    }

    #[test]
    fn quantile_inverts_cdf() {
        use crate::significance::normal_cdf;
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn fisher_ci_contains_r_and_shrinks_with_n() {
        let narrow = fisher_z_ci(0.8, 10_000, 0.95).unwrap();
        let wide = fisher_z_ci(0.8, 20, 0.95).unwrap();
        assert!(narrow.lo <= 0.8 && 0.8 <= narrow.hi);
        assert!(wide.lo <= 0.8 && 0.8 <= wide.hi);
        assert!(narrow.hi - narrow.lo < wide.hi - wide.lo);
    }

    #[test]
    fn fisher_ci_error_cases() {
        assert!(fisher_z_ci(1.5, 100, 0.95).is_err());
        assert!(fisher_z_ci(0.5, 3, 0.95).is_err());
        assert!(fisher_z_ci(0.5, 100, 1.0).is_err());
    }

    #[test]
    fn bootstrap_ci_brackets_true_statistic() {
        // Strongly correlated data; bootstrap CI of r should contain r.
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| i as f64 + ((i * 7) % 13) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        let ci = bootstrap_ci(&x, &y, pearson, 200, 0.95, 42).unwrap();
        assert!(
            ci.lo <= r && r <= ci.hi,
            "r={r} not in [{}, {}]",
            ci.lo,
            ci.hi
        );
        assert!(ci.lo > 0.9, "lower bound {}", ci.lo);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let a = bootstrap_ci(&x, &y, pearson, 100, 0.9, 7).unwrap();
        let b = bootstrap_ci(&x, &y, pearson, 100, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_validates_parameters() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0];
        assert!(bootstrap_ci(&x, &y, pearson, 5, 0.95, 0).is_err());
        assert!(bootstrap_ci(&x, &y, pearson, 100, 1.5, 0).is_err());
        assert!(bootstrap_ci(&x, &y[..2], pearson, 100, 0.95, 0).is_err());
    }

    #[test]
    fn pearson_ci_convenience_matches_manual() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| 2.0 * i as f64 + ((i % 5) as f64))
            .collect();
        let r = pearson(&x, &y).unwrap();
        let a = pearson_ci(&x, &y, 0.95).unwrap();
        let b = fisher_z_ci(r, 100, 0.95).unwrap();
        assert_eq!(a, b);
    }
}
