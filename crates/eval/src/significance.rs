//! Statistical significance: the Wilcoxon signed-rank test (used by the
//! paper to compare per-item squared errors between models) with a normal
//! approximation and tie correction, plus Bonferroni adjustment.

use crate::correlation::fractional_ranks;
use crate::EvalError;

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (`W+`).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (`W−`).
    pub w_minus: f64,
    /// Standardized test statistic (z-score, continuity-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
}

/// Wilcoxon signed-rank test on paired samples (two-sided).
///
/// Zero differences are dropped (Wilcoxon's original procedure); tied
/// absolute differences share fractional ranks with the variance corrected
/// accordingly. Uses the normal approximation, adequate for `n ≳ 20`
/// (the paper's comparisons have hundreds of pairs).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult, EvalError> {
    if a.len() != b.len() {
        return Err(EvalError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.iter().chain(b).any(|v| !v.is_finite()) {
        return Err(EvalError::NonFiniteInput);
    }
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x - y)
        .filter(|&d| !crate::float_cmp::is_zero(d))
        .collect();
    let n = diffs.len();
    if n < 5 {
        return Err(EvalError::TooFewSamples { needed: 5, got: n });
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = fractional_ranks(&abs);
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    // Tie correction: subtract Σ(t³ − t)/48 from the variance.
    let mut tie_term = 0.0;
    {
        let mut sorted = abs.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_term += t * t * t - t;
            i = j + 1;
        }
    }
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
    if var <= 0.0 {
        return Err(EvalError::ZeroVariance);
    }
    let w = w_plus.min(w_minus);
    // Continuity correction toward the mean.
    let z = (w - mean + 0.5) / var.sqrt();
    let p = 2.0 * normal_cdf(z);
    Ok(WilcoxonResult {
        w_plus,
        w_minus,
        z,
        p_value: p.min(1.0),
        n_used: n,
    })
}

/// Standard normal CDF via `erfc` (Abramowitz–Stegun 7.1.26 rational
/// approximation, |error| < 1.5e−7 — ample for reporting p-values).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

/// Bonferroni-adjusted p-values for `m` simultaneous comparisons.
pub fn bonferroni(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len() as f64;
    p_values.iter().map(|&p| (p * m).min(1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(-6.0) < 1e-8);
        assert!(normal_cdf(6.0) > 1.0 - 1e-8);
    }

    #[test]
    fn wilcoxon_detects_consistent_difference() {
        // b consistently larger than a by a varying amount.
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| i as f64 + 1.0 + (i % 3) as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert!(r.w_plus < r.w_minus);
    }

    #[test]
    fn wilcoxon_no_difference_is_insignificant() {
        // Symmetric differences around zero.
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..40)
            .map(|i| i as f64 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_drops_zero_differences() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = [1.0, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.n_used, 6); // first pair tied at zero difference
    }

    #[test]
    fn wilcoxon_error_cases() {
        assert!(wilcoxon_signed_rank(&[1.0], &[2.0, 3.0]).is_err());
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // all zero diffs
        assert!(wilcoxon_signed_rank(&[f64::NAN; 6], &[0.0; 6]).is_err());
    }

    #[test]
    fn wilcoxon_symmetry() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos() + 2.1).collect();
        let ab = wilcoxon_signed_rank(&a, &b).unwrap();
        let ba = wilcoxon_signed_rank(&b, &a).unwrap();
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.w_plus - ba.w_minus).abs() < 1e-9);
    }

    #[test]
    fn bonferroni_scales_and_caps() {
        let adjusted = bonferroni(&[0.01, 0.04, 0.5]);
        assert!((adjusted[0] - 0.03).abs() < 1e-12);
        assert!((adjusted[1] - 0.12).abs() < 1e-12);
        assert_eq!(adjusted[2], 1.0);
        assert!(bonferroni(&[]).is_empty());
    }
}
