//! Error measures: RMSE and MAE.

use crate::EvalError;

/// Root mean squared error between predictions and ground truth.
pub fn rmse(pred: &[f64], truth: &[f64]) -> Result<f64, EvalError> {
    Ok(mse(pred, truth)?.sqrt())
}

/// Mean squared error.
pub fn mse(pred: &[f64], truth: &[f64]) -> Result<f64, EvalError> {
    check(pred, truth)?;
    let n = pred.len() as f64;
    Ok(pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n)
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> Result<f64, EvalError> {
    check(pred, truth)?;
    let n = pred.len() as f64;
    Ok(pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / n)
}

/// Per-pair squared errors (input to significance tests on SE).
pub fn squared_errors(pred: &[f64], truth: &[f64]) -> Result<Vec<f64>, EvalError> {
    check(pred, truth)?;
    Ok(pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .collect())
}

fn check(pred: &[f64], truth: &[f64]) -> Result<(), EvalError> {
    if pred.len() != truth.len() {
        return Err(EvalError::LengthMismatch {
            left: pred.len(),
            right: truth.len(),
        });
    }
    if pred.is_empty() {
        return Err(EvalError::TooFewSamples { needed: 1, got: 0 });
    }
    if pred.iter().chain(truth).any(|v| !v.is_finite()) {
        return Err(EvalError::NonFiniteInput);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_values() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        // errors [1, -1] → mse 1 → rmse 1
        assert!((rmse(&[2.0, 1.0], &[1.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        // errors [3, 4] → mse 12.5 → rmse √12.5
        assert!((rmse(&[3.0, 4.0], &[0.0, 0.0]).unwrap() - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_known_values() {
        assert!((mae(&[2.0, 0.0], &[0.0, 1.0]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mae_bounded_by_rmse() {
        let pred = [1.0, 5.0, 2.0, 8.0];
        let truth = [2.0, 2.0, 2.0, 2.0];
        assert!(mae(&pred, &truth).unwrap() <= rmse(&pred, &truth).unwrap() + 1e-12);
    }

    #[test]
    fn error_cases() {
        assert!(rmse(&[], &[]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[f64::INFINITY], &[0.0]).is_err());
    }

    #[test]
    fn squared_errors_elementwise() {
        let se = squared_errors(&[1.0, 4.0], &[0.0, 2.0]).unwrap();
        assert_eq!(se, vec![1.0, 4.0]);
    }
}
