//! Approved exact float comparisons, local to `upskill-eval`.
//!
//! The workspace lint (`xtask lint`, rule `float-eq`) forbids raw
//! `==`/`!=` between floats; intentional exact comparisons go through
//! named helpers instead. `upskill-eval` deliberately has no dependency
//! on `upskill-core`, so it carries its own copy of the helpers it needs
//! rather than importing `upskill_core::float_cmp`.

/// Exactly zero (positive or negative zero). Used for variance and
/// tie-difference guards where a tolerance would misclassify genuinely
/// distinct samples as ties.
#[inline]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Bit-for-value exact equality (`NaN != NaN`, `-0.0 == 0.0`). Used for
/// tie detection in rank statistics, where the inputs are finite scores
/// and "tie" means exactly equal by IEEE comparison.
#[inline]
pub fn exact_eq(a: f64, b: f64) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_equality_semantics() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(1e-300));
        assert!(exact_eq(1.5, 1.5));
        assert!(exact_eq(-0.0, 0.0));
        assert!(!exact_eq(f64::NAN, f64::NAN));
    }
}
