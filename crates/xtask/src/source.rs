//! Lexical model of one Rust source file.
//!
//! The lint rules are token-level, so before any rule runs the file is
//! *masked*: string/char-literal contents and comments are blanked out
//! (byte-for-byte, newlines preserved) so that rule tokens inside them
//! can never fire and brace matching is reliable. On top of the masked
//! text we compute line starts, `#[cfg(test)]` item spans, and the
//! `lint:allow` suppression markers found in comments.

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::Diagnostic;

/// A `lint:allow` marker extracted from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// `// lint:allow(rule): reason` — suppresses `rule` on the next
    /// non-blank code line (comment-only lines are skipped).
    Line {
        /// Rule being allowed.
        rule: String,
        /// 1-based line the marker sits on.
        line: usize,
    },
    /// `// lint:allow-block(rule): reason`.
    BlockStart {
        /// Rule being allowed.
        rule: String,
        /// 1-based line the marker sits on.
        line: usize,
    },
    /// `// lint:end-allow-block(rule)`.
    BlockEnd {
        /// Rule whose block ends here.
        rule: String,
        /// 1-based line the marker sits on.
        line: usize,
    },
}

/// A parsed, masked source file plus everything the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path, used in diagnostics.
    pub path: PathBuf,
    /// Masked text: literals and comments blanked, offsets preserved.
    pub masked: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items (their `{ … }` bodies).
    test_spans: Vec<Range<usize>>,
    /// Suppression markers found in comments.
    pub markers: Vec<Marker>,
    /// Diagnostics for malformed markers (rule `lint-marker`).
    pub marker_diags: Vec<Diagnostic>,
    /// Per-marker resolved suppressions: (rule, suppressed line).
    suppressed: Vec<(String, usize)>,
}

impl SourceFile {
    /// Parses `text` as the contents of `path` (root-relative).
    pub fn from_source(path: &Path, text: &str) -> Self {
        let (masked, comments) = mask(text);
        let line_starts = line_starts(text);
        let mut file = SourceFile {
            path: path.to_path_buf(),
            masked,
            line_starts,
            test_spans: Vec::new(),
            markers: Vec::new(),
            marker_diags: Vec::new(),
            suppressed: Vec::new(),
        };
        file.test_spans = find_test_spans(&file.masked);
        file.collect_markers(&comments);
        file.resolve_suppressions();
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` item body.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(&offset))
    }

    /// Whether `rule` is suppressed by a marker on `line`.
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressed.iter().any(|(r, l)| r == rule && *l == line)
    }

    /// Emits a diagnostic at `offset` unless tests or markers exempt it.
    pub fn report(
        &self,
        out: &mut Vec<Diagnostic>,
        offset: usize,
        rule: &'static str,
        message: String,
    ) {
        if self.in_test(offset) {
            return;
        }
        let line = self.line_of(offset);
        if self.is_suppressed(rule, line) {
            return;
        }
        out.push(Diagnostic {
            path: self.path.clone(),
            line,
            rule,
            message,
        });
    }

    fn collect_markers(&mut self, comments: &[(usize, String)]) {
        for (offset, text) in comments {
            // Markers live in plain comments only; doc comments are rendered
            // prose and may legitimately *describe* the marker syntax.
            let is_doc = ["///", "//!", "/**", "/*!"]
                .iter()
                .any(|p| text.starts_with(p));
            if is_doc {
                continue;
            }
            let line = self.line_of(*offset);
            // One comment may be a multi-line block; scan each line of it.
            for (i, comment_line) in text.lines().enumerate() {
                self.collect_markers_on_line(comment_line, line + i);
            }
        }
    }

    fn collect_markers_on_line(&mut self, text: &str, line: usize) {
        let Some(pos) = text.find("lint:") else {
            return;
        };
        let marker = &text[pos..];
        let bad = |msg: &str| Diagnostic {
            path: self.path.clone(),
            line,
            rule: "lint-marker",
            message: msg.to_string(),
        };
        let parse = |rest: &str, needs_reason: bool| -> Result<String, Diagnostic> {
            let Some(rest) = rest.strip_prefix('(') else {
                return Err(bad("malformed marker: expected `(rule-id)`"));
            };
            let Some(close) = rest.find(')') else {
                return Err(bad("malformed marker: unclosed `(`"));
            };
            let rule = &rest[..close];
            if !crate::rules::RULE_IDS.contains(&rule) {
                return Err(bad(&format!("unknown rule id {rule:?} in marker")));
            }
            if needs_reason {
                let after = rest[close + 1..].trim_start();
                let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
                if reason.is_empty() {
                    return Err(bad("marker needs a `: reason` after the rule id"));
                }
            }
            Ok(rule.to_string())
        };
        // Longest prefix first: `allow-block` contains `allow`.
        let result = if let Some(rest) = marker.strip_prefix("lint:end-allow-block") {
            parse(rest, false).map(|rule| Marker::BlockEnd { rule, line })
        } else if let Some(rest) = marker.strip_prefix("lint:allow-block") {
            parse(rest, true).map(|rule| Marker::BlockStart { rule, line })
        } else if let Some(rest) = marker.strip_prefix("lint:allow") {
            parse(rest, true).map(|rule| Marker::Line { rule, line })
        } else {
            // The prefix matched but no verb did — likely a typo such as
            // a misspelled `allow`.
            Err(bad("unrecognized marker verb after the marker prefix"))
        };
        match result {
            Ok(marker) => self.markers.push(marker),
            Err(diag) => self.marker_diags.push(diag),
        }
    }

    fn resolve_suppressions(&mut self) {
        let mut open: Vec<(String, usize)> = Vec::new();
        for marker in self.markers.clone() {
            match marker {
                Marker::Line { rule, line } => {
                    if let Some(target) = self.next_code_line(line) {
                        self.suppressed.push((rule, target));
                    }
                }
                Marker::BlockStart { rule, line } => open.push((rule, line)),
                Marker::BlockEnd { rule, line } => {
                    match open.iter().rposition(|(r, _)| *r == rule) {
                        Some(i) => {
                            let (rule, start) = open.remove(i);
                            for l in start..=line {
                                self.suppressed.push((rule.clone(), l));
                            }
                        }
                        None => self.marker_diags.push(Diagnostic {
                            path: self.path.clone(),
                            line,
                            rule: "lint-marker",
                            message: format!("end-allow-block({rule}) without a matching start"),
                        }),
                    }
                }
            }
        }
        for (rule, line) in open {
            self.marker_diags.push(Diagnostic {
                path: self.path.clone(),
                line,
                rule: "lint-marker",
                message: format!("allow-block({rule}) is never closed"),
            });
        }
    }

    /// First line after `line` with non-blank masked content (skips lines
    /// that were comment-only before masking).
    fn next_code_line(&self, line: usize) -> Option<usize> {
        (line + 1..=self.line_starts.len()).find(|&l| !self.line_text(l).trim().is_empty())
    }

    /// Masked text of a 1-based line.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.masked.len());
        self.masked[start..end].trim_end_matches('\n')
    }
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks out string/char-literal contents and comments, preserving byte
/// offsets and newlines. Returns the masked text plus the comments (start
/// offset + original text) for marker extraction.
fn mask(text: &str) -> (String, Vec<(usize, String)>) {
    let bytes = text.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let blank = |masked: &mut [u8], range: Range<usize>| {
        for b in &mut masked[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    let mut i = 0;
    let mut prev_ident = false;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push((start, text[start..i].to_string()));
                blank(&mut masked, start..i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push((start, text[start..i].to_string()));
                blank(&mut masked, start..i);
            }
            b'"' => {
                i = skip_string(bytes, i, &mut masked);
            }
            b'r' | b'b' if !prev_ident => {
                i = skip_prefixed_literal(bytes, i, &mut masked);
            }
            b'\'' => {
                i = skip_char_or_lifetime(text, bytes, i, &mut masked);
            }
            _ => i += 1,
        }
        prev_ident = i > 0
            && i <= bytes.len()
            && matches!(bytes[i - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
    }
    (
        String::from_utf8(masked).expect("masking preserves UTF-8"),
        comments,
    )
}

/// Skips a normal `"…"` string starting at `i`, blanking its contents.
fn skip_string(bytes: &[u8], start: usize, masked: &mut [u8]) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    for b in &mut masked[start + 1..i.saturating_sub(1).max(start + 1)] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at the
/// prefix byte; falls through (no-op) if it is a plain identifier.
fn skip_prefixed_literal(bytes: &[u8], start: usize, masked: &mut [u8]) -> usize {
    let mut i = start + 1;
    if bytes[start] == b'b' && bytes.get(i) == Some(&b'r') {
        i += 1;
    }
    if bytes[start] == b'b' && bytes.get(i) == Some(&b'\'') {
        // Byte char literal b'x' / b'\n'.
        let mut j = i + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        for b in &mut masked[i + 1..j.saturating_sub(1).max(i + 1)] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        return j;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return start + 1; // identifier starting with r/b, not a literal
    }
    if hashes == 0 && bytes[start] != b'r' && bytes.get(start + 1) != Some(&b'r') {
        // b"…" — ordinary escapes apply.
        let end = skip_string(bytes, i, masked);
        return end;
    }
    // Raw string: ends at `"` + hashes `#`s, no escapes.
    let body_start = i + 1;
    let mut j = body_start;
    'scan: while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = 0;
            while k < hashes {
                if bytes.get(j + 1 + k) != Some(&b'#') {
                    j += 1;
                    continue 'scan;
                }
                k += 1;
            }
            for b in &mut masked[body_start..j] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// Distinguishes `'x'` / `'\n'` char literals from `'lifetime` markers.
fn skip_char_or_lifetime(text: &str, bytes: &[u8], start: usize, masked: &mut [u8]) -> usize {
    if bytes.get(start + 1) == Some(&b'\\') {
        // Escaped char literal: scan to the closing quote.
        let mut i = start + 2;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => {
                    i += 1;
                    for b in &mut masked[start + 1..i - 1] {
                        *b = b' ';
                    }
                    return i;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Unescaped: a char literal is exactly `'` + one char + `'`.
    if let Some(c) = text[start + 1..].chars().next() {
        let after = start + 1 + c.len_utf8();
        if bytes.get(after) == Some(&b'\'') {
            for b in &mut masked[start + 1..after] {
                *b = b' ';
            }
            return after + 1;
        }
    }
    start + 1 // lifetime or label: leave as-is
}

/// Byte ranges of the `{ … }` bodies of `#[cfg(test)]` items.
fn find_test_spans(masked: &str) -> Vec<Range<usize>> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0;
    while let Some(pos) = masked[from..].find("#[cfg(test)]") {
        let attr_start = from + pos;
        let mut i = attr_start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The item body is the first `{ … }` before any `;`.
        while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
            i += 1;
        }
        if bytes.get(i) == Some(&b'{') {
            if let Some(end) = match_brace(bytes, i) {
                spans.push(i..end);
                from = end;
                continue;
            }
        }
        from = attr_start + 1;
    }
    spans
}

/// Offset one past the `}` matching the `{` at `open` (masked text).
pub fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::from_source(Path::new("crates/core/src/assign.rs"), text)
    }

    #[test]
    fn masking_blanks_strings_comments_and_chars() {
        let f = parse(concat!(
            "let s = \"a[0].unwrap()\"; // x[1] trailing\n",
            "let c = 'x'; let lt: &'static str = \"\";\n",
            "/* block [2]\n   still comment */ let after = 1;\n",
            "let r = r#\"raw [3] \"quote\" \"#;\n",
        ));
        assert!(!f.masked.contains("a[0]"), "{}", f.masked);
        assert!(!f.masked.contains("x[1]"), "{}", f.masked);
        assert!(!f.masked.contains("[2]"), "{}", f.masked);
        assert!(!f.masked.contains("[3]"), "{}", f.masked);
        assert!(f.masked.contains("let after = 1;"));
        assert!(f.masked.contains("&'static str"));
        // Offsets preserved: same length, same newline positions.
        assert_eq!(f.masked.len(), f.masked.len());
        assert_eq!(f.line_of(0), 1);
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x[0]; }\n}\n";
        let f = parse(text);
        let idx = text.find("x[0]").unwrap();
        assert!(f.in_test(idx));
        assert!(!f.in_test(0));
    }

    #[test]
    fn line_marker_skips_comment_lines() {
        let text = concat!(
            "// lint:allow(hot-loop-index): continued\n",
            "// over two comment lines.\n",
            "a[0] = 1;\n",
        );
        let f = parse(text);
        assert!(f.is_suppressed("hot-loop-index", 3));
        assert!(!f.is_suppressed("hot-loop-index", 2));
        assert!(f.marker_diags.is_empty(), "{:?}", f.marker_diags);
    }

    #[test]
    fn block_markers_must_pair() {
        let ok = parse(
            "// lint:allow-block(float-eq): scoped\nlet a = x == 0.0;\n// lint:end-allow-block(float-eq)\n",
        );
        assert!(ok.marker_diags.is_empty(), "{:?}", ok.marker_diags);
        assert!(ok.is_suppressed("float-eq", 2));

        let unclosed = parse("// lint:allow-block(float-eq): scoped\nlet a = 1;\n");
        assert_eq!(unclosed.marker_diags.len(), 1);
        assert!(unclosed.marker_diags[0].message.contains("never closed"));

        let orphan = parse("// lint:end-allow-block(float-eq)\n");
        assert_eq!(orphan.marker_diags.len(), 1);
        assert!(orphan.marker_diags[0]
            .message
            .contains("without a matching start"));
    }

    #[test]
    fn malformed_markers_are_diagnosed() {
        let unknown = parse("// lint:allow(no-such-rule): whatever\nlet a = 1;\n");
        assert_eq!(unknown.marker_diags.len(), 1);
        assert!(unknown.marker_diags[0].message.contains("unknown rule id"));

        let no_reason = parse("// lint:allow(float-eq)\nlet a = 1;\n");
        assert_eq!(no_reason.marker_diags.len(), 1);
        assert!(no_reason.marker_diags[0].message.contains("reason"));

        let typo = parse("// lint:alow(float-eq): oops\n");
        assert_eq!(typo.marker_diags.len(), 1);
    }
}
