//! Workspace automation tasks (`cargo xtask` pattern).
//!
//! Three tasks, all std-only so xtask builds first, fast, and offline:
//!
//! - `lint` — a source-level static analysis pass over every first-party
//!   crate (below).
//! - `concurrency` — the lock-discipline subset of the rules plus the
//!   derived lock-order graph for the serving layer (see
//!   [`concurrency`]).
//! - `bench-floors` — parses `reports/BENCH_*.json` and fails when any
//!   object recording both a numeric `speedup` and a numeric
//!   `acceptance_floor` has `speedup < acceptance_floor`, so performance
//!   acceptance criteria are enforced in CI, not just printed once (see
//!   [`floors`]). A reports directory with zero parseable reports is a
//!   failure, not a vacuous pass.
//!
//! The `lint` task enforces the project's correctness conventions that
//! rustc and clippy cannot express:
//!
//! | rule id              | what it forbids                                          |
//! |----------------------|----------------------------------------------------------|
//! | `core-panic`         | `unwrap`/`expect`/`panic!`/`todo!` in `upskill-core` non-test code |
//! | `hot-loop-index`     | `[idx]` indexing inside DP/accumulator hot loops         |
//! | `hot-loop-cast`      | truncating `as` casts inside those same loops            |
//! | `float-eq`           | `==`/`!=` on floats outside approved comparison helpers  |
//! | `config-literal`     | struct-literal `ParallelConfig`/`EmConfig` outside their builders |
//! | `deprecated-train-em`| calls to the deprecated `train_em` shim                  |
//! | `lock-order`         | global lock acquired while a shard guard is live (or vice versa) |
//! | `lock-across-publish`| a lock guard lexically live across an `EpochCell::publish` |
//! | `raw-lock`           | bare `.lock().unwrap()`-style acquisitions outside the blessed helpers |
//! | `guard-escape`       | `MutexGuard`/`TracedGuard` returned from a function or stored in a struct |
//! | `lint-marker`        | malformed or unmatched `lint:allow` markers              |
//!
//! Intentional exceptions are written in the source as markers:
//!
//! ```text
//! // lint:allow(rule-id): reason          (covers the next code line)
//! // lint:allow-block(rule-id): reason    (covers until the matching end)
//! // lint:end-allow-block(rule-id)
//! ```
//!
//! Diagnostics are machine-readable, one per line:
//! `path:line: [rule-id] message`.

pub mod concurrency;
pub mod engine;
pub mod floors;
pub mod rules;
pub mod source;

use std::fmt;
use std::path::PathBuf;

/// One lint finding, addressable as `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file, relative to the lint root.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (see the crate docs table).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}
