//! The lint rules.
//!
//! All rules run on the masked text (see [`crate::source`]), so tokens in
//! strings, chars, and comments never fire. Code under `#[cfg(test)]` is
//! exempt from every rule, and `lint:allow` markers suppress individual
//! findings (the markers themselves are validated by the `lint-marker`
//! rule).

use std::path::Path;

use crate::source::{match_brace, SourceFile};
use crate::Diagnostic;

/// Every valid rule id, for marker validation and documentation.
pub const RULE_IDS: &[&str] = &[
    "core-panic",
    "hot-loop-index",
    "hot-loop-cast",
    "float-eq",
    "config-literal",
    "deprecated-train-em",
    "lock-order",
    "lock-across-publish",
    "raw-lock",
    "guard-escape",
    "lint-marker",
];

/// File stems whose loops are "hot": the DP/accumulator kernels where a
/// stray bounds check or silent truncation costs either throughput or
/// correctness. Indexing and narrowing casts are denied inside their
/// loop bodies.
const HOT_FILES: &[&str] = &[
    "assign.rs",
    "emission.rs",
    "incremental.rs",
    "streaming.rs",
    "update.rs",
];

/// Cast targets that can silently truncate the workspace's index/level
/// domains. Widening casts (`as usize`, `as u64`, `as f64`) stay legal.
const TRUNCATING_CASTS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "i8",
    "i16",
    "i32",
    "SkillLevel",
    "ItemId",
    "UserId",
];

/// Runs every applicable rule on one file.
pub fn run_all(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = file.marker_diags.clone();
    let path = normalize(&file.path);
    let name = file_name(&path);

    if path.starts_with("crates/core/src/") && name != "float_cmp.rs" {
        core_panic(file, &mut out);
    }
    if path.starts_with("crates/core/src/") && HOT_FILES.contains(&name) {
        hot_loops(file, &mut out);
    }
    if name != "float_cmp.rs" {
        float_eq(file, &mut out);
    }
    config_literal(file, &path, &mut out);
    if path != "crates/core/src/em.rs" {
        deprecated_train_em(file, &mut out);
    }
    crate::concurrency::run_rules(file, &mut out);
    // Nested loop spans overlap, so a single site can be visited twice.
    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    out.dedup();
    out
}

pub(crate) fn normalize(path: &Path) -> String {
    let parts: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

pub(crate) fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of every occurrence of `needle` in `hay`.
pub(crate) fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + 1;
    }
    out
}

/// Occurrences of `needle` with no identifier byte immediately before it.
pub(crate) fn find_word_starts(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    find_all(hay, needle)
        .into_iter()
        .filter(|&p| p == 0 || !is_ident(bytes[p - 1]))
        .collect()
}

// --- rule: core-panic ---------------------------------------------------

fn core_panic(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const TOKENS: &[(&str, bool)] = &[
        // (token, needs word boundary before)
        (".unwrap()", false),
        (".expect(", false),
        ("panic!(", true),
        ("todo!(", true),
        ("unimplemented!(", true),
    ];
    for &(token, bounded) in TOKENS {
        let hits = if bounded {
            find_word_starts(&file.masked, token)
        } else {
            find_all(&file.masked, token)
        };
        for p in hits {
            let shown = token.trim_end_matches('(');
            file.report(
                out,
                p,
                "core-panic",
                format!(
                    "`{shown}` in upskill-core non-test code; return a typed CoreError instead"
                ),
            );
        }
    }
}

// --- rules: hot-loop-index / hot-loop-cast ------------------------------

/// Byte ranges of `for`/`while`/`loop` bodies (including nested loops).
fn loop_spans(masked: &str) -> Vec<std::ops::Range<usize>> {
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    for kw in ["for", "while", "loop"] {
        for start in find_word_starts(masked, kw) {
            let after = start + kw.len();
            if bytes.get(after).copied().is_some_and(is_ident) {
                continue; // e.g. `format`, `looped`
            }
            let mut i = after;
            let (mut paren, mut bracket) = (0i32, 0i32);
            let mut saw_in = false;
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'(' => paren += 1,
                    b')' => paren -= 1,
                    b'[' => bracket += 1,
                    b']' => bracket -= 1,
                    b'{' if paren == 0 && bracket == 0 => {
                        open = Some(i);
                        break;
                    }
                    b';' if paren == 0 && bracket == 0 => break,
                    b'i' if paren == 0
                        && bracket == 0
                        && bytes.get(i + 1) == Some(&b'n')
                        && !is_ident(bytes[i - 1])
                        && !bytes.get(i + 2).copied().is_some_and(is_ident) =>
                    {
                        saw_in = true;
                    }
                    _ => {}
                }
                i += 1;
            }
            let Some(open) = open else { continue };
            if kw == "for" && !saw_in {
                continue; // `impl Trait for Type { … }`, `for<'a>` bounds
            }
            if let Some(end) = match_brace(bytes, open) {
                spans.push(open..end);
            }
        }
    }
    spans
}

fn hot_loops(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let bytes = file.masked.as_bytes();
    for span in loop_spans(&file.masked) {
        // Indexing: `expr[idx]` where the bracket is not a range slice.
        let mut i = span.start;
        while i < span.end {
            if bytes[i] != b'[' {
                i += 1;
                continue;
            }
            let mut before = i;
            while before > 0 && bytes[before - 1].is_ascii_whitespace() {
                before -= 1;
            }
            let indexes = before > 0
                && (is_ident(bytes[before - 1]) || matches!(bytes[before - 1], b')' | b']'));
            if !indexes {
                i += 1;
                continue;
            }
            // Find the matching `]`.
            let (mut depth, mut j) = (0i32, i);
            while j < span.end {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let content = &file.masked[i + 1..j.min(span.end)];
            if !content.contains("..") {
                file.report(
                    out,
                    i,
                    "hot-loop-index",
                    "`[…]` indexing inside a hot loop; iterate or use checked access".to_string(),
                );
            }
            i += 1;
        }
        // Truncating casts.
        for p in find_word_starts(&file.masked[span.clone()], "as ") {
            let abs = span.start + p;
            if abs == 0 || !bytes[abs - 1].is_ascii_whitespace() && bytes[abs - 1] != b'(' {
                continue; // require ` as ` / `(as` shape, not `has `
            }
            let rest = file.masked[abs + 3..span.end].trim_start();
            let ty: String = rest
                .bytes()
                .take_while(|&b| is_ident(b))
                .map(|b| b as char)
                .collect();
            if TRUNCATING_CASTS.contains(&ty.as_str()) {
                file.report(
                    out,
                    abs,
                    "hot-loop-cast",
                    format!("truncating `as {ty}` cast inside a hot loop; use a checked conversion helper"),
                );
            }
        }
    }
}

// --- rule: float-eq -----------------------------------------------------

fn has_float_operand(window: &str) -> bool {
    let b = window.as_bytes();
    for i in 0..b.len().saturating_sub(2) {
        if b[i].is_ascii_digit() && b[i + 1] == b'.' && b[i + 2].is_ascii_digit() {
            return true;
        }
    }
    window.contains("f64::") || window.contains("f32::")
}

fn float_eq(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut line_start = 0usize;
    for line in file.masked.split('\n') {
        for op in ["==", "!="] {
            for p in find_all(line, op) {
                let bytes = line.as_bytes();
                if op == "==" && p > 0 && matches!(bytes[p - 1], b'=' | b'!' | b'<' | b'>') {
                    continue;
                }
                if bytes.get(p + 2) == Some(&b'=') {
                    continue;
                }
                let left = {
                    let s = &line[..p];
                    // Delimiters and expression-starting keywords bound the
                    // operand: in `1.0 + if tier == level { … }` the float
                    // belongs to the addition, not the comparison.
                    let cut = [
                        "&&", "||", ";", ",", "(", "{", "}", "if ", "while ", "match ", "return ",
                    ]
                    .iter()
                    .filter_map(|d| s.rfind(d).map(|i| i + d.len()))
                    .max()
                    .unwrap_or(0);
                    &s[cut..]
                };
                let right = {
                    let s = &line[p + 2..];
                    let cut = ["&&", "||", ";", ",", ")", "{"]
                        .iter()
                        .filter_map(|d| s.find(d))
                        .min()
                        .unwrap_or(s.len());
                    &s[..cut]
                };
                if has_float_operand(left) || has_float_operand(right) {
                    file.report(
                        out,
                        line_start + p,
                        "float-eq",
                        format!("float `{op}` comparison; use the approved helpers in float_cmp"),
                    );
                }
            }
        }
        line_start += line.len() + 1;
    }
}

// --- rule: config-literal -----------------------------------------------

fn config_literal(file: &SourceFile, path: &str, out: &mut Vec<Diagnostic>) {
    const CONFIGS: &[(&str, &str)] = &[
        ("ParallelConfig", "crates/core/src/parallel.rs"),
        ("EmConfig", "crates/core/src/em.rs"),
    ];
    let bytes = file.masked.as_bytes();
    for &(ty, home) in CONFIGS {
        if path == home {
            continue; // the type's own module defines the builders
        }
        for p in find_word_starts(&file.masked, ty) {
            let after = p + ty.len();
            if bytes.get(after).copied().is_some_and(is_ident) {
                continue;
            }
            // Next non-whitespace byte must open a struct literal.
            let mut j = after;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'{') {
                continue;
            }
            // Walk back over a path prefix (`em::EmConfig`), then check the
            // preceding token: type positions (`&T {`, `-> T {`, `impl T`,
            // `for T`, `dyn T`) are not literals.
            let mut k = p;
            loop {
                while k > 0 && bytes[k - 1].is_ascii_whitespace() {
                    k -= 1;
                }
                if k >= 2 && bytes[k - 1] == b':' && bytes[k - 2] == b':' {
                    k -= 2;
                    while k > 0 && is_ident(bytes[k - 1]) {
                        k -= 1;
                    }
                    continue;
                }
                break;
            }
            if k > 0 && bytes[k - 1] == b'&' {
                continue;
            }
            if k >= 2 && bytes[k - 2] == b'-' && bytes[k - 1] == b'>' {
                continue;
            }
            let word_start = {
                let mut w = k;
                while w > 0 && is_ident(bytes[w - 1]) {
                    w -= 1;
                }
                w
            };
            if matches!(&file.masked[word_start..k], "impl" | "for" | "dyn") {
                continue;
            }
            file.report(
                out,
                p,
                "config-literal",
                format!("struct-literal `{ty} {{ … }}`; construct it through its builder methods"),
            );
        }
    }
}

// --- rule: deprecated-train-em ------------------------------------------

fn deprecated_train_em(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for p in find_word_starts(&file.masked, "train_em(") {
        file.report(
            out,
            p,
            "deprecated-train-em",
            "deprecated `train_em` shim; use `run_em` or the `Trainer` builder".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(path: &str, text: &str) -> Vec<Diagnostic> {
        run_all(&SourceFile::from_source(Path::new(path), text))
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn core_panic_fires_only_in_core_non_test_code() {
        let text = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/model.rs", text)),
            ["core-panic"]
        );
        assert!(run("crates/cli/src/commands.rs", text).is_empty());
        let test_text = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) { x.unwrap(); } }\n";
        assert!(run("crates/core/src/model.rs", test_text).is_empty());
    }

    #[test]
    fn core_panic_token_precision() {
        // `.unwrap_or(…)` and `.expect_err(…)` are fine; macros need word
        // boundaries so `dont_panic!(…)` is not a hit.
        let ok =
            "fn f() { let _ = r().unwrap_or(0); let _ = r().expect_err(\"x\"); dont_panic!(1); }\n";
        assert!(run("crates/core/src/model.rs", ok).is_empty());
        let bad = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/model.rs", bad)),
            ["core-panic"]
        );
    }

    #[test]
    fn hot_loop_rules_fire_in_denylisted_files_only() {
        let text = "fn f(v: &[u64]) { for i in 0..v.len() { let _ = v[i]; } }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/assign.rs", text)),
            ["hot-loop-index"]
        );
        // Same code in a non-hot core file: only indexing *outside* loops
        // stays unflagged anywhere, and no hot-loop rule applies here.
        assert!(run("crates/core/src/model.rs", text).is_empty());
        // Outside loops even in hot files: fine.
        let outside = "fn f(v: &[u64]) -> u64 { v[0] }\n";
        assert!(run("crates/core/src/update.rs", outside).is_empty());
    }

    #[test]
    fn hot_loop_allows_slices_and_marked_lines() {
        let slice = "fn f(v: &[u64]) { for c in v { let _ = &v[1..3]; } }\n";
        assert!(run("crates/core/src/emission.rs", slice).is_empty());
        let marked = concat!(
            "fn f(v: &mut [u64]) {\n",
            "    for i in 0..4 {\n",
            "        // lint:allow(hot-loop-index): bit-packed word, proven in range.\n",
            "        v[i] = 0;\n",
            "    }\n",
            "}\n",
        );
        assert!(run("crates/core/src/assign.rs", marked).is_empty());
    }

    #[test]
    fn hot_loop_cast_denylist() {
        let bad = "fn f() { for i in 0..4 { let _ = i as u32; } }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/incremental.rs", bad)),
            ["hot-loop-cast"]
        );
        let widening = "fn f() { for i in 0..4u32 { let _ = i as usize + 0u64 as usize; } }\n";
        assert!(run("crates/core/src/incremental.rs", widening).is_empty());
        let level = "fn f() { for i in 0..4 { let _ = i as SkillLevel; } }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/streaming.rs", level)),
            ["hot-loop-cast"]
        );
    }

    #[test]
    fn float_eq_detects_literals_and_constants() {
        assert_eq!(
            rules_of(&run(
                "crates/eval/src/x.rs",
                "fn f(x: f64) -> bool { x == 0.0 }\n"
            )),
            ["float-eq"]
        );
        assert_eq!(
            rules_of(&run(
                "crates/core/src/x.rs",
                "fn f(x: f64) -> bool { x != f64::NEG_INFINITY }\n"
            )),
            ["float-eq"]
        );
        // Left-hand literals count too.
        assert_eq!(
            rules_of(&run(
                "crates/core/src/x.rs",
                "fn f(x: f64) -> bool { 1.5 == x }\n"
            )),
            ["float-eq"]
        );
    }

    #[test]
    fn float_eq_ignores_ints_and_approved_files() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(x: usize) -> bool { x == 0 }\n"
        )
        .is_empty());
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(x: usize) -> bool { x <= 1 && x >= 0 }\n"
        )
        .is_empty());
        // Ranges are not float literals.
        assert!(run("crates/core/src/x.rs", "fn f() { for _ in 0..10 {} }\n").is_empty());
        // The approved helper module may compare floats directly.
        assert!(run(
            "crates/core/src/float_cmp.rs",
            "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n"
        )
        .is_empty());
        assert!(run(
            "crates/eval/src/float_cmp.rs",
            "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_window_is_operand_bounded() {
        // The float literal belongs to the *other* comparison; the integer
        // one must not be flagged.
        let text = "fn f(a: usize, x: f64) -> bool { a == 0 && x < 1.5 }\n";
        assert!(run("crates/core/src/x.rs", text).is_empty());
    }

    #[test]
    fn config_literal_rule() {
        let bad = "fn f() { let c = ParallelConfig { threads: 4 }; }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/train.rs", bad)),
            ["config-literal"]
        );
        // Builders and type positions are fine.
        let ok = concat!(
            "fn a() -> ParallelConfig { ParallelConfig::sequential() }\n",
            "fn b(c: &ParallelConfig) -> &ParallelConfig { c }\n",
            "impl HasConfig for Thing { fn get(&self) -> EmConfig { EmConfig::new(2) } }\n",
        );
        assert!(run("crates/core/src/train.rs", ok).is_empty());
        // The defining modules build the structs literally — allowed.
        assert!(run(
            "crates/core/src/parallel.rs",
            "fn f() -> ParallelConfig { ParallelConfig { threads: 1 } }\n"
        )
        .is_empty());
        assert_eq!(
            rules_of(&run(
                "crates/core/src/streaming.rs",
                "fn f() { let c = em::EmConfig { iters: 3 }; }\n"
            )),
            ["config-literal"]
        );
    }

    #[test]
    fn deprecated_train_em_rule() {
        let bad = "fn f() { let _ = train_em(&d, &c); }\n";
        assert_eq!(
            rules_of(&run("crates/core/src/train.rs", bad)),
            ["deprecated-train-em"]
        );
        // The richer entry points share the prefix but are fine, and the
        // shim's own module (definition + its tests) is exempt.
        let ok = "fn f() { let _ = train_em_with_parallelism(&d, &c, &p); }\n";
        assert!(run("crates/core/src/train.rs", ok).is_empty());
        assert!(run(
            "crates/core/src/em.rs",
            "pub fn train_em() {}\nfn g() { train_em(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_never_fire() {
        let text = concat!(
            "fn f() {\n",
            "    let msg = \"call .unwrap() or train_em( or x == 0.0\";\n",
            "    // commented: panic!(\"x\"); v[i]; x == 1.0\n",
            "    let _ = msg;\n",
            "}\n",
        );
        assert!(run("crates/core/src/assign.rs", text).is_empty());
    }
}
