//! Walks the workspace and runs every rule on every first-party source
//! file.
//!
//! Only `crates/*/src/**/*.rs` is scanned: that is where all first-party
//! library and binary code lives. Integration tests, benches, examples,
//! and the vendored dependency stubs are intentionally out of scope — the
//! rules target production code paths.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules;
use crate::source::SourceFile;
use crate::{concurrency, Diagnostic};

/// Result of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
}

/// Result of a focused concurrency pass.
#[derive(Debug)]
pub struct ConcurrencyReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Lock-discipline findings only, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Union of every file's lexical lock-order graph: `(held, acquired)`
    /// edges, including `lint:allow`-audited ones.
    pub graph: BTreeSet<(&'static str, &'static str)>,
}

/// Lints every `crates/*/src/**/*.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        diagnostics.extend(rules::run_all(&SourceFile::from_source(&rel, &text)));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport {
        files_scanned,
        diagnostics,
    })
}

/// Runs only the lock-discipline rules over the same file set as
/// [`lint_workspace`], and aggregates the lock-order graph.
pub fn concurrency_workspace(root: &Path) -> io::Result<ConcurrencyReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let files_scanned = files.len();
    let mut diagnostics = Vec::new();
    let mut graph = BTreeSet::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let file = SourceFile::from_source(&rel, &text);
        concurrency::run_rules(&file, &mut diagnostics);
        graph.extend(concurrency::lock_order_graph(&file));
    }
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    diagnostics.dedup();
    Ok(ConcurrencyReport {
        files_scanned,
        diagnostics,
        graph,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_root(which: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(which)
    }

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
            .canonicalize()
            .expect("workspace root exists")
    }

    #[test]
    fn seeded_fixture_trips_every_rule() {
        let report = lint_workspace(&fixture_root("bad")).unwrap();
        let fired: std::collections::BTreeSet<&str> =
            report.diagnostics.iter().map(|d| d.rule).collect();
        for rule in rules::RULE_IDS {
            assert!(
                fired.contains(rule),
                "rule {rule} did not fire on the fixture; fired: {fired:?}"
            );
        }
        // Diagnostics are machine-readable `path:line: [rule] …`.
        let rendered = report.diagnostics[0].to_string();
        let mut parts = rendered.splitn(3, ':');
        assert!(parts.next().unwrap().ends_with(".rs"));
        assert!(parts.next().unwrap().parse::<usize>().is_ok());
        assert!(parts.next().unwrap().trim_start().starts_with('['));
    }

    #[test]
    fn clean_fixture_is_quiet() {
        let report = lint_workspace(&fixture_root("clean")).unwrap();
        assert!(
            report.diagnostics.is_empty(),
            "clean fixture flagged: {:#?}",
            report.diagnostics
        );
        assert!(report.files_scanned > 0);
    }

    #[test]
    fn real_workspace_concurrency_is_clean_and_graph_is_ordered() {
        let report = concurrency_workspace(&workspace_root()).unwrap();
        assert!(
            report.diagnostics.is_empty(),
            "lock-discipline violations:\n{}",
            report
                .diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The audited snapshot path is the one shard→global edge; the
        // reverse order must never appear anywhere in the workspace.
        assert!(
            report.graph.contains(&("shard", "global")),
            "{:?}",
            report.graph
        );
        assert!(
            !report.graph.contains(&("global", "shard")),
            "{:?}",
            report.graph
        );
        assert!(report.files_scanned > 30);
    }

    #[test]
    fn real_workspace_is_lint_clean() {
        let report = lint_workspace(&workspace_root()).unwrap();
        assert!(
            report.diagnostics.is_empty(),
            "workspace has lint violations:\n{}",
            report
                .diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 30);
    }
}
