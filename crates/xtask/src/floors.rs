//! `bench-floors` task: enforce recorded acceptance floors and ceilings.
//!
//! The benchmark binaries write `reports/BENCH_*.json` and embed each
//! acceptance criterion next to the measurement it gates:
//!
//! - any JSON object carrying a numeric (non-null) `acceptance_floor`
//!   next to a numeric `speedup` (or, for the scale benchmark, a
//!   `throughput_actions_per_second`) is an enforceable **floor** —
//!   the measurement must be at least the floor;
//! - any object carrying a numeric `rss_ceiling_bytes` next to a
//!   numeric `peak_rss_bytes` is an enforceable **ceiling** — the
//!   measurement must not exceed it (the flat-memory claim of the
//!   out-of-core path);
//! - any object carrying a numeric `latency_ceiling_seconds` next to a
//!   numeric `p99_latency_seconds` is an enforceable **ceiling** — the
//!   serving benchmark's tail-latency bound.
//!
//! This task parses every `BENCH_*.json` under the reports directory,
//! walks the value trees, and fails when any recorded measurement falls
//! outside its recorded bound — so a regression that slips into a
//! committed report breaks CI even if nobody re-reads the numbers.
//! Objects without a bound (informational sweep entries,
//! `"acceptance_floor": null`) are ignored.
//!
//! Like the lint engine, this module is std-only: reports are flat
//! machine-written JSON, and a ~150-line recursive-descent reader keeps
//! xtask building first, fast, and offline.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Direction of an enforceable bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The measurement must be **at least** the bound.
    Floor,
    /// The measurement must **not exceed** the bound.
    Ceiling,
}

/// One enforceable `(measurement, bound)` pair found in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorCheck {
    /// Report file name (e.g. `BENCH_emission.json`).
    pub file: String,
    /// Dotted path of the owning object inside the report
    /// (e.g. `fill_sweep[2]`); empty for the root object.
    pub context: String,
    /// Key of the measured value (e.g. `speedup`, `peak_rss_bytes`).
    pub metric: String,
    /// Recorded measurement.
    pub value: f64,
    /// Recorded bound.
    pub bound: f64,
    /// Whether the bound is a floor or a ceiling.
    pub kind: BoundKind,
}

impl FloorCheck {
    /// Whether the recorded measurement meets the recorded bound.
    pub fn passes(&self) -> bool {
        match self.kind {
            BoundKind::Floor => self.value >= self.bound,
            BoundKind::Ceiling => self.value <= self.bound,
        }
    }

    fn location(&self) -> String {
        if self.context.is_empty() {
            self.file.clone()
        } else {
            format!("{}: {}", self.file, self.context)
        }
    }
}

impl fmt::Display for FloorCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let relation = match self.kind {
            BoundKind::Floor => "floor",
            BoundKind::Ceiling => "ceiling",
        };
        write!(
            f,
            "{}: {} {:.2} vs {relation} {:.2} [{}]",
            self.location(),
            self.metric,
            self.value,
            self.bound,
            if self.passes() { "ok" } else { "FAIL" }
        )
    }
}

/// Outcome of scanning a reports directory.
#[derive(Debug, Default)]
pub struct FloorReport {
    /// Every enforceable check found, in file order.
    pub checks: Vec<FloorCheck>,
    /// Number of `BENCH_*.json` files parsed.
    pub files_scanned: usize,
}

impl FloorReport {
    /// The checks whose speedup is below the floor.
    pub fn violations(&self) -> Vec<&FloorCheck> {
        self.checks.iter().filter(|c| !c.passes()).collect()
    }

    /// Whether the scan found no reports at all. A gate run against an
    /// empty (or wrong) directory measured nothing and must fail rather
    /// than pass vacuously.
    pub fn is_vacuous(&self) -> bool {
        self.files_scanned == 0
    }
}

/// Scans `<dir>/BENCH_*.json` and collects every enforceable floor check.
///
/// Returns an error when the directory cannot be read or any report fails
/// to parse — a malformed report is a broken pipeline, not a pass.
pub fn check_floors(dir: &Path) -> io::Result<FloorReport> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();

    let mut report = FloorReport::default();
    for path in files {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let text = fs::read_to_string(&path)?;
        let value = parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        collect_checks(&value, &name, String::new(), &mut report.checks);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Recursively collects enforceable `(measurement, bound)` pairs from
/// `value`: `acceptance_floor` gates `speedup` (or
/// `throughput_actions_per_second`), `rss_ceiling_bytes` caps
/// `peak_rss_bytes`, and `latency_ceiling_seconds` caps
/// `p99_latency_seconds`.
fn collect_checks(value: &Json, file: &str, context: String, out: &mut Vec<FloorCheck>) {
    match value {
        Json::Obj(pairs) => {
            let num = |key: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .and_then(|(_, v)| match v {
                        Json::Num(x) => Some(*x),
                        _ => None,
                    })
            };
            if let Some(floor) = num("acceptance_floor") {
                let measured = ["speedup", "throughput_actions_per_second"]
                    .iter()
                    .find_map(|k| num(k).map(|v| (*k, v)));
                if let Some((metric, value)) = measured {
                    out.push(FloorCheck {
                        file: file.to_string(),
                        context: context.clone(),
                        metric: metric.to_string(),
                        value,
                        bound: floor,
                        kind: BoundKind::Floor,
                    });
                }
            }
            if let (Some(peak), Some(ceiling)) = (num("peak_rss_bytes"), num("rss_ceiling_bytes")) {
                out.push(FloorCheck {
                    file: file.to_string(),
                    context: context.clone(),
                    metric: "peak_rss_bytes".to_string(),
                    value: peak,
                    bound: ceiling,
                    kind: BoundKind::Ceiling,
                });
            }
            if let (Some(p99), Some(ceiling)) =
                (num("p99_latency_seconds"), num("latency_ceiling_seconds"))
            {
                out.push(FloorCheck {
                    file: file.to_string(),
                    context: context.clone(),
                    metric: "p99_latency_seconds".to_string(),
                    value: p99,
                    bound: ceiling,
                    kind: BoundKind::Ceiling,
                });
            }
            for (key, child) in pairs {
                let child_ctx = if context.is_empty() {
                    key.clone()
                } else {
                    format!("{context}.{key}")
                };
                collect_checks(child, file, child_ctx, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                collect_checks(child, file, format!("{context}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Minimal JSON value tree for report scanning.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, read as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the remainder.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-UTF-8 string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Decodes `\uXXXX`; unpaired surrogates become U+FFFD (reports never
    /// contain them — keys and values are machine-written ASCII).
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(char::from_u32(code).unwrap_or('\u{fffd}'))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, null, true, "x\nA"], "b": {}}"#).unwrap();
        let Json::Obj(pairs) = &v else {
            panic!("expected object")
        };
        assert_eq!(pairs[0].0, "a");
        let Json::Arr(items) = &pairs[0].1 else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 5);
        assert_eq!(items[2], Json::Null);
        assert_eq!(items[4], Json::Str("x\nA".to_string()));
        assert_eq!(pairs[1].1, Json::Obj(Vec::new()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"k": 1e}"#).is_err());
    }

    #[test]
    fn collects_only_objects_with_numeric_floor() {
        let doc = parse(
            r#"{
                "speedup": 2.0, "acceptance_floor": 1.5,
                "sweep": [
                    {"speedup": 4.0, "acceptance_floor": null},
                    {"speedup": 1.0, "acceptance_floor": 3.0}
                ],
                "nested": {"speedup": 9.0}
            }"#,
        )
        .unwrap();
        let mut checks = Vec::new();
        collect_checks(&doc, "BENCH_x.json", String::new(), &mut checks);
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].context, "");
        assert!(checks[0].passes());
        assert_eq!(checks[1].context, "sweep[1]");
        assert!(!checks[1].passes());
    }

    #[test]
    fn collects_throughput_floors_and_rss_ceilings() {
        let doc = parse(
            r#"{
                "throughput_actions_per_second": 5.0e6, "acceptance_floor": 1.0e6,
                "peak_rss_bytes": 2.0e9, "rss_ceiling_bytes": 1.5e9
            }"#,
        )
        .unwrap();
        let mut checks = Vec::new();
        collect_checks(&doc, "BENCH_scale.json", String::new(), &mut checks);
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].metric, "throughput_actions_per_second");
        assert_eq!(checks[0].kind, BoundKind::Floor);
        assert!(checks[0].passes());
        assert_eq!(checks[1].metric, "peak_rss_bytes");
        assert_eq!(checks[1].kind, BoundKind::Ceiling);
        assert!(!checks[1].passes());
    }

    #[test]
    fn collects_latency_ceilings() {
        let doc = parse(
            r#"{
                "ok": { "p99_latency_seconds": 0.002, "latency_ceiling_seconds": 0.05 },
                "bad": { "p99_latency_seconds": 0.09, "latency_ceiling_seconds": 0.05 },
                "unbounded": { "p99_latency_seconds": 0.01 }
            }"#,
        )
        .unwrap();
        let mut checks = Vec::new();
        collect_checks(&doc, "BENCH_serve.json", String::new(), &mut checks);
        assert_eq!(checks.len(), 2);
        assert_eq!(checks[0].context, "ok");
        assert_eq!(checks[0].metric, "p99_latency_seconds");
        assert_eq!(checks[0].kind, BoundKind::Ceiling);
        assert!(checks[0].passes());
        assert_eq!(checks[1].context, "bad");
        assert!(!checks[1].passes());
    }

    #[test]
    fn empty_directory_scan_is_vacuous() {
        let dir = std::env::temp_dir().join(format!(
            "xtask-floors-empty-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        // Non-matching files don't count as reports either.
        fs::write(dir.join("EXP_other.json"), "{}").unwrap();

        let report = check_floors(&dir).unwrap();
        assert!(report.is_vacuous());
        assert_eq!(report.files_scanned, 0);
        assert!(report.violations().is_empty());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scans_reports_directory_end_to_end() {
        let dir = std::env::temp_dir().join(format!(
            "xtask-floors-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("BENCH_ok.json"),
            r#"{"speedup": 3.0, "acceptance_floor": 2.0}"#,
        )
        .unwrap();
        fs::write(
            dir.join("BENCH_bad.json"),
            r#"{"speedup": 1.0, "acceptance_floor": 2.0}"#,
        )
        .unwrap();
        fs::write(dir.join("EXP_other.json"), "not even json").unwrap();

        let report = check_floors(&dir).unwrap();
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.checks.len(), 2);
        let violations = report.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].file, "BENCH_bad.json");

        fs::remove_dir_all(&dir).unwrap();
    }
}
