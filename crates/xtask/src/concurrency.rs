//! Lock-discipline rules and the intra-crate lock-order graph.
//!
//! The serving layer's lock protocol (DESIGN.md §15) is short: per-user
//! shard locks order before the one global fitting-state lock, nothing
//! holds a guard across an `EpochCell` publish, every acquisition goes
//! through the poison-recovering helpers, and guards never escape the
//! function that took them. These rules turn that prose into machine
//! checks on the same masked text the base lints use:
//!
//! | rule | requirement |
//! |---|---|
//! | `lock-order` | the global lock is never acquired while a shard guard is lexically live, and vice versa (the audited all-shards snapshot path carries a `lint:allow` marker) |
//! | `lock-across-publish` | no lock guard is lexically live across an `EpochCell::publish` (or a `.swap(…)` on epoch state) |
//! | `raw-lock` | no bare `.lock().unwrap()`-style acquisition; use `upskill_core::sync::lock` or `TracedMutex::lock` |
//! | `guard-escape` | no `MutexGuard`/`TracedGuard` returned from a function or stored in a struct field |
//!
//! Everything here is a *lexical* approximation: guard scopes run from
//! the acquisition to the first `drop(binding)`, else to the end of the
//! binding's block (unbound guards die with their statement), and the
//! analysis never follows calls. That is deliberate — the protocol is
//! designed to be lexically evident, and code this pass cannot follow
//! is code a reviewer cannot follow either.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::rules::{find_all, find_word_starts, is_ident, normalize};
use crate::source::{match_brace, SourceFile};
use crate::Diagnostic;

/// Files allowed to touch raw `std::sync` acquisition APIs: the blessed
/// helper's own module and the `RwLock`-based epoch cell, both of which
/// implement (rather than use) the poison-recovery discipline.
const RAW_LOCK_EXEMPT: &[&str] = &["crates/core/src/sync.rs", "crates/core/src/epoch.rs"];

/// The module that defines the guard types and helpers themselves.
const GUARD_HOME: &str = "crates/core/src/sync.rs";

/// Guard type names that must not appear in escape positions.
const GUARD_TYPES: &[&str] = &[
    "MutexGuard",
    "TracedGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Which protocol lock an acquisition refers to, judged from the
/// statement text around the call site. The serving layer names its
/// locks `shards`/`global`; anything else is unranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// A per-user shard lock (`self.shards[…]`).
    Shard,
    /// The fitting-state lock (`self.global`).
    Global,
    /// Any other mutex (free lists, schedulers, ad-hoc state).
    Other,
}

impl LockClass {
    /// Node label in the lock-order graph.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::Shard => "shard",
            LockClass::Global => "global",
            LockClass::Other => "other",
        }
    }
}

/// One lock acquisition and the lexical range its guard stays live.
#[derive(Debug)]
pub struct LockSite {
    /// Byte offset of the acquisition token in the masked text.
    pub offset: usize,
    /// Protocol classification of the receiver.
    pub class: LockClass,
    /// The `let` binding holding the guard, when there is one.
    pub binding: Option<String>,
    /// Guard liveness: acquisition to the first `drop(binding)`, else to
    /// the end of the binding's block; unbound guards end with their
    /// statement.
    pub scope: Range<usize>,
}

/// Runs every concurrency rule on one file, appending findings to `out`.
/// Suppression (`#[cfg(test)]`, `lint:allow` markers) is applied by
/// [`SourceFile::report`] exactly as for the base rules.
pub fn run_rules(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let path = normalize(&file.path);
    raw_lock(file, &path, out);
    guard_escape(file, &path, out);
    for f in fn_spans(&file.masked) {
        let sites = lock_sites(&file.masked, &f.body);
        lock_order(file, &sites, out);
        lock_across_publish(file, &f.body, &sites, out);
    }
}

/// The lexical lock-order graph of one file: directed edges
/// `(held, acquired)` for every pair where the second lock is taken
/// inside the first guard's live range. Test code is excluded;
/// `lint:allow`-suppressed sites are **not** — the graph documents the
/// allowlisted snapshot path too.
pub fn lock_order_graph(file: &SourceFile) -> BTreeSet<(&'static str, &'static str)> {
    let mut edges = BTreeSet::new();
    for f in fn_spans(&file.masked) {
        let sites = lock_sites(&file.masked, &f.body);
        for held in &sites {
            if file.in_test(held.offset) {
                continue;
            }
            for next in &sites {
                if next.offset > held.offset && held.scope.contains(&next.offset) {
                    edges.insert((held.class.name(), next.class.name()));
                }
            }
        }
    }
    edges
}

// --- rule: lock-order ---------------------------------------------------

fn lock_order(file: &SourceFile, sites: &[LockSite], out: &mut Vec<Diagnostic>) {
    for held in sites {
        for next in sites {
            if next.offset <= held.offset || !held.scope.contains(&next.offset) {
                continue;
            }
            let message = match (held.class, next.class) {
                (LockClass::Shard, LockClass::Global) => {
                    "global lock acquired while a shard guard is live; drop the shard guard \
                     first (the audited all-shards snapshot path carries a lint:allow marker)"
                }
                (LockClass::Global, LockClass::Shard) => {
                    "shard lock acquired while the global guard is live; the protocol order \
                     is shards (ascending) before global"
                }
                _ => continue,
            };
            file.report(out, next.offset, "lock-order", message.to_string());
        }
    }
}

// --- rule: lock-across-publish ------------------------------------------

fn lock_across_publish(
    file: &SourceFile,
    body: &Range<usize>,
    sites: &[LockSite],
    out: &mut Vec<Diagnostic>,
) {
    let text = &file.masked[body.clone()];
    let mut publishes: Vec<usize> = find_all(text, ".publish(");
    publishes.extend(find_all(text, ".swap("));
    for p in publishes {
        let abs = body.start + p;
        for site in sites {
            if site.offset < abs && site.scope.contains(&abs) {
                file.report(
                    out,
                    abs,
                    "lock-across-publish",
                    format!(
                        "epoch publish while a {} lock guard is lexically live; build the new \
                         value, drop the guard, then publish",
                        site.class.name()
                    ),
                );
            }
        }
    }
}

// --- rule: raw-lock -----------------------------------------------------

fn raw_lock(file: &SourceFile, path: &str, out: &mut Vec<Diagnostic>) {
    if RAW_LOCK_EXEMPT.contains(&path) {
        return;
    }
    const TOKENS: &[&str] = &[
        ".lock().unwrap()",
        ".lock().expect(",
        ".lock().unwrap_or_else(",
        ".read().unwrap()",
        ".read().expect(",
        ".read().unwrap_or_else(",
        ".write().unwrap()",
        ".write().expect(",
        ".write().unwrap_or_else(",
    ];
    for &token in TOKENS {
        for p in find_all(&file.masked, token) {
            let shown = token.trim_end_matches('(');
            file.report(
                out,
                p,
                "raw-lock",
                format!(
                    "bare `{shown}` acquisition; go through the poison-recovering \
                     `upskill_core::sync::lock` (or `TracedMutex`)"
                ),
            );
        }
    }
}

// --- rule: guard-escape -------------------------------------------------

fn guard_escape(file: &SourceFile, path: &str, out: &mut Vec<Diagnostic>) {
    if path == GUARD_HOME {
        return;
    }
    let masked = &file.masked;
    // Returned guards: a guard type in a signature's return position.
    for f in fn_spans(masked) {
        let sig = &masked[f.sig.clone()];
        let Some(arrow) = sig.find("->") else {
            continue;
        };
        for &ty in GUARD_TYPES {
            for p in find_word_starts(&sig[arrow..], ty) {
                file.report(
                    out,
                    f.sig.start + arrow + p,
                    "guard-escape",
                    format!("function returns a `{ty}`; lock guards must not escape their acquiring function"),
                );
            }
        }
    }
    // Stored guards: a guard type in a struct body.
    for body in struct_bodies(masked) {
        for &ty in GUARD_TYPES {
            for p in find_word_starts(&masked[body.clone()], ty) {
                file.report(
                    out,
                    body.start + p,
                    "guard-escape",
                    format!("`{ty}` stored in a struct field; a guard must not outlive its acquiring function"),
                );
            }
        }
    }
}

// --- lexical machinery --------------------------------------------------

/// A function item: signature (from the `fn` keyword) plus braced body.
struct FnSpan {
    /// `fn` keyword through the byte before the body `{`.
    sig: Range<usize>,
    /// The body, including both braces.
    body: Range<usize>,
}

/// Every `fn` item with a body, nested ones included.
fn fn_spans(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for start in find_word_starts(masked, "fn") {
        let mut i = start + 2;
        if bytes.get(i).copied().is_some_and(is_ident) {
            continue; // e.g. `fname` — not the keyword
        }
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if !bytes.get(i).copied().is_some_and(is_ident) {
            continue; // `fn(…)` pointer type, not a definition
        }
        // Scan the signature to the body `{`; `;` ends a bodyless decl.
        let (mut paren, mut bracket) = (0i32, 0i32);
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'[' => bracket += 1,
                b']' => bracket -= 1,
                b'{' if paren == 0 && bracket == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(open) = open else { continue };
        if let Some(end) = match_brace(bytes, open) {
            out.push(FnSpan {
                sig: start..open,
                body: open..end,
            });
        }
    }
    out
}

/// Every lock acquisition in `body`: `.lock()` method calls plus calls
/// to the free poison-recovering helper (`lock(…)`, `sync::lock(…)`).
fn lock_sites(masked: &str, body: &Range<usize>) -> Vec<LockSite> {
    let bytes = masked.as_bytes();
    let text = &masked[body.clone()];
    let mut offsets: Vec<usize> = find_all(text, ".lock()")
        .into_iter()
        .map(|p| body.start + p)
        .collect();
    for p in find_word_starts(text, "lock(") {
        let abs = body.start + p;
        if abs > 0 && bytes[abs - 1] == b'.' {
            continue; // a `.lock(…)` method call with arguments
        }
        if preceding_word(masked, abs) == "fn" {
            continue; // the helper's own definition
        }
        offsets.push(abs);
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
        .into_iter()
        .map(|offset| site_at(masked, body, offset))
        .collect()
}

/// Builds the [`LockSite`] for the acquisition token at `offset`.
fn site_at(masked: &str, body: &Range<usize>, offset: usize) -> LockSite {
    let bytes = masked.as_bytes();
    let start = stmt_start(bytes, body, offset);
    let end = stmt_end(bytes, body, offset);
    let class = classify(&masked[start..end]);
    // `let p = self.global.lock().policy;` binds the *projection*, not
    // the guard — the guard is a temporary that dies with the statement.
    let binding = if is_projection(bytes, call_end(masked, offset)) {
        None
    } else {
        binding_of(&masked[start..offset])
    };
    let scope_end = match &binding {
        Some(name) => {
            let block_end = enclosing_block_end(bytes, body, offset);
            drop_site(masked, offset, block_end, name).unwrap_or(block_end)
        }
        None => end,
    };
    LockSite {
        offset,
        class,
        binding,
        scope: offset..scope_end,
    }
}

/// Classifies an acquisition by its surrounding statement text.
fn classify(stmt: &str) -> LockClass {
    if stmt.contains("global") {
        LockClass::Global
    } else if stmt.contains("shard") {
        LockClass::Shard
    } else {
        LockClass::Other
    }
}

/// Walks back from `offset` to the byte after the previous statement
/// boundary (`;`, `{`, or `}`).
fn stmt_start(bytes: &[u8], body: &Range<usize>, offset: usize) -> usize {
    let mut i = offset;
    while i > body.start && !matches!(bytes[i - 1], b';' | b'{' | b'}') {
        i -= 1;
    }
    i
}

/// Walks forward from `offset` to just past the statement's `;`, or to
/// the `}` that closes the enclosing block.
fn stmt_end(bytes: &[u8], body: &Range<usize>, offset: usize) -> usize {
    let mut depth = 0i32;
    let mut i = offset;
    while i < body.end {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b';' if depth <= 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    body.end
}

/// Offset one past the acquisition call: past `.lock()`, or past the
/// helper's closing `)`.
fn call_end(masked: &str, offset: usize) -> usize {
    if masked[offset..].starts_with(".lock()") {
        offset + ".lock()".len()
    } else {
        // Helper form `lock(…)`: the `(` sits at the token's end.
        let open = offset + "lock".len();
        matching_paren(masked.as_bytes(), open).unwrap_or(masked.len())
    }
}

/// Whether the expression continues with a field access (`.ident` not
/// followed by `(`) — the value kept is a projection out of the guard,
/// so the guard itself dies at the end of the statement.
fn is_projection(bytes: &[u8], mut i: usize) -> bool {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'.') {
        return false;
    }
    i += 1;
    let start = i;
    while i < bytes.len() && is_ident(bytes[i]) {
        i += 1;
    }
    i > start && bytes.get(i) != Some(&b'(')
}

/// The identifier a plain `let NAME = …` statement binds; tuple/struct
/// patterns and non-`let` statements yield `None` (unbound guard).
fn binding_of(prefix: &str) -> Option<String> {
    let rest = prefix.trim_start().strip_prefix("let ")?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .bytes()
        .take_while(|&b| is_ident(b))
        .map(char::from)
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// Offset of the first `drop(name)` between `from` and `to`, if any.
fn drop_site(masked: &str, from: usize, to: usize, name: &str) -> Option<usize> {
    let window = &masked[from..to];
    let bytes = window.as_bytes();
    for p in find_word_starts(window, "drop") {
        let mut i = p + 4;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let ident: String = window[i..]
            .bytes()
            .take_while(|&b| is_ident(b))
            .map(char::from)
            .collect();
        if ident == name {
            return Some(from + p);
        }
    }
    None
}

/// Offset of the `}` closing the innermost block containing `offset`.
fn enclosing_block_end(bytes: &[u8], body: &Range<usize>, offset: usize) -> usize {
    let mut stack = Vec::new();
    let mut i = body.start;
    while i < body.end {
        match bytes[i] {
            b'{' => stack.push(i),
            b'}' => {
                let open = stack.pop().unwrap_or(body.start);
                if open <= offset && offset < i {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    body.end
}

/// The identifier (or keyword) token immediately before `offset`.
fn preceding_word(masked: &str, offset: usize) -> &str {
    let bytes = masked.as_bytes();
    let mut end = offset;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    &masked[start..end]
}

/// Body ranges of every `struct` with a braced or tuple body.
fn struct_bodies(masked: &str) -> Vec<Range<usize>> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for start in find_word_starts(masked, "struct") {
        let mut i = start + 6;
        if bytes.get(i).copied().is_some_and(is_ident) {
            continue;
        }
        // Scan past name + generics to the body opener. Angle depth is
        // tracked so `Fn(…)` bounds inside generics don't read as a
        // tuple body; `->` is skipped so its `>` doesn't unbalance.
        let (mut paren, mut angle) = (0i32, 0i32);
        let mut opener = None;
        while i < bytes.len() {
            match bytes[i] {
                b'-' if bytes.get(i + 1) == Some(&b'>') => i += 1,
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' if angle == 0 && paren == 0 => {
                    opener = Some((i, b')'));
                    break;
                }
                b'(' => paren += 1,
                b')' => paren -= 1,
                b'{' if angle == 0 && paren == 0 => {
                    opener = Some((i, b'}'));
                    break;
                }
                b';' if angle == 0 && paren == 0 => break, // unit struct
                _ => {}
            }
            i += 1;
        }
        let Some((open, close)) = opener else {
            continue;
        };
        let end = if close == b'}' {
            match_brace(bytes, open)
        } else {
            matching_paren(bytes, open)
        };
        if let Some(end) = end {
            out.push(open..end);
        }
    }
    out
}

/// Offset one past the `)` matching the `(` at `open`.
fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile::from_source(Path::new(path), text)
    }

    fn run(path: &str, text: &str) -> Vec<Diagnostic> {
        let f = file(path, text);
        let mut out = Vec::new();
        run_rules(&f, &mut out);
        out
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn lock_order_catches_global_under_shard_guard() {
        let text = concat!(
            "fn bad(&self) {\n",
            "    let shard = self.shards[0].lock();\n",
            "    let g = self.global.lock();\n",
            "}\n",
        );
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", text)),
            ["lock-order"]
        );
        // Dropping the shard guard first is the documented protocol.
        let ok = concat!(
            "fn good(&self) {\n",
            "    let shard = self.shards[0].lock();\n",
            "    drop(shard);\n",
            "    let g = self.global.lock();\n",
            "}\n",
        );
        assert!(run("crates/serve/src/x.rs", ok).is_empty());
    }

    #[test]
    fn lock_order_catches_shard_under_global_guard() {
        let text = concat!(
            "fn bad(&self) {\n",
            "    let g = self.global.lock();\n",
            "    let s = self.shards[1].lock();\n",
            "}\n",
        );
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", text)),
            ["lock-order"]
        );
    }

    #[test]
    fn lock_order_marker_allowlists_the_snapshot_path() {
        let text = concat!(
            "fn snapshot(&self) {\n",
            "    let shards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();\n",
            "    // lint:allow(lock-order): audited stop-the-world snapshot path.\n",
            "    let g = self.global.lock();\n",
            "}\n",
        );
        assert!(run("crates/serve/src/x.rs", text).is_empty());
        // The graph still records the allowlisted edge.
        let graph = lock_order_graph(&file("crates/serve/src/x.rs", text));
        assert!(graph.contains(&("shard", "global")));
    }

    #[test]
    fn unbound_guards_die_with_their_statement() {
        // A temporary guard in a single expression never overlaps the
        // next acquisition.
        let text = concat!(
            "fn ok(&self) -> RefitPolicy {\n",
            "    let p = self.global.lock().policy;\n",
            "    let s = self.shards[0].lock();\n",
            "    p\n",
            "}\n",
        );
        assert!(run("crates/serve/src/x.rs", text).is_empty());
    }

    #[test]
    fn publish_under_guard_is_caught() {
        let text = concat!(
            "fn bad(&self) {\n",
            "    let shard = self.shards[0].lock();\n",
            "    self.epoch.publish(next);\n",
            "}\n",
        );
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", text)),
            ["lock-across-publish"]
        );
        let ok = concat!(
            "fn good(&self) {\n",
            "    let shard = self.shards[0].lock();\n",
            "    let next = build(&shard);\n",
            "    drop(shard);\n",
            "    self.epoch.publish(next);\n",
            "}\n",
        );
        assert!(run("crates/serve/src/x.rs", ok).is_empty());
    }

    #[test]
    fn raw_lock_tokens_fire_outside_the_blessed_modules() {
        let text = "fn f(&self) { let g = self.state.lock().unwrap(); }\n";
        assert_eq!(rules_of(&run("crates/serve/src/x.rs", text)), ["raw-lock"]);
        // The helper module itself implements the recovery.
        assert!(run(
            "crates/core/src/sync.rs",
            "pub fn lock(m: &M) -> G { m.lock().unwrap_or_else(PoisonError::into_inner) }\n"
        )
        .is_empty());
        // The blessed helper call is clean anywhere.
        assert!(run(
            "crates/core/src/pool.rs",
            "fn f(&self) { lock(&self.free).pop(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn guard_escape_flags_returns_and_struct_fields() {
        let ret = "fn leak(&self) -> MutexGuard<'_, u32> { self.m.lock() }\n";
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", ret)),
            ["guard-escape"]
        );
        let field = "struct Holder<'a> { g: MutexGuard<'a, u32> }\n";
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", field)),
            ["guard-escape"]
        );
        let tuple = "struct Holder<'a>(TracedGuard<'a, u32>);\n";
        assert_eq!(
            rules_of(&run("crates/serve/src/x.rs", tuple)),
            ["guard-escape"]
        );
        // Mentioning a guard type in a local annotation or parameter is
        // not an escape.
        let ok = concat!(
            "struct Fine { n: usize }\n",
            "fn borrow(g: &MutexGuard<'_, u32>) -> u32 { **g }\n",
            "fn local(&self) { let v: Vec<MutexGuard<'_, u32>> = Vec::new(); }\n",
        );
        assert!(run("crates/serve/src/x.rs", ok).is_empty());
    }

    #[test]
    fn real_service_graph_matches_the_documented_order() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../serve/src/service.rs")
            .canonicalize()
            .expect("service.rs exists");
        let text = std::fs::read_to_string(&path).unwrap();
        let f = file("crates/serve/src/service.rs", &text);
        let graph = lock_order_graph(&f);
        // Exactly one edge: shards are held into the global acquisition
        // only on the audited snapshot path. Any new edge is a protocol
        // change and must update this test and DESIGN.md §15.
        let expected: BTreeSet<_> = [("shard", "global")].into_iter().collect();
        assert_eq!(graph, expected, "service.rs lock-order graph changed");
        // And the rules themselves are clean on the real file.
        let mut out = Vec::new();
        run_rules(&f, &mut out);
        assert!(out.is_empty(), "service.rs violations: {out:?}");
    }

    #[test]
    fn sites_classify_by_statement_text() {
        let text = concat!(
            "fn f(&self) {\n",
            "    let s = self.shards[0].lock();\n",
            "    drop(s);\n",
            "    let g = self.global.lock();\n",
            "    drop(g);\n",
            "    let q = lock(&self.queue);\n",
            "}\n",
        );
        let f = file("crates/serve/src/x.rs", text);
        let spans = fn_spans(&f.masked);
        assert_eq!(spans.len(), 1);
        let sites = lock_sites(&f.masked, &spans[0].body);
        let classes: Vec<LockClass> = sites.iter().map(|s| s.class).collect();
        assert_eq!(
            classes,
            [LockClass::Shard, LockClass::Global, LockClass::Other]
        );
        assert_eq!(sites[0].binding.as_deref(), Some("s"));
    }
}
