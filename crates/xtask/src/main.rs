//! `cargo run -p xtask -- <task>` entry point.
//!
//! Tasks:
//! - `lint [--root <dir>]` — run the workspace lint rules. Exits 0 when
//!   clean, 1 with one `path:line: [rule] message` diagnostic per line
//!   when violations are found, 2 on usage or I/O errors.
//! - `bench-floors [--reports <dir>]` — parse `reports/BENCH_*.json` and
//!   fail when any recorded measurement falls outside its recorded bound
//!   (`speedup`/`throughput_actions_per_second` below `acceptance_floor`,
//!   or `peak_rss_bytes` above `rss_ceiling_bytes`). Same exit-code
//!   convention as `lint`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine::lint_workspace;
use xtask::floors::check_floors;

const USAGE: &str =
    "usage: cargo run -p xtask -- lint [--root <dir>] | bench-floors [--reports <dir>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-floors") => bench_floors(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("no task given\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let root = match args {
        [] => default_root(),
        [flag, dir] if flag == "--root" => PathBuf::from(dir),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match lint_workspace(&root) {
        Ok(report) if report.diagnostics.is_empty() => {
            println!("lint: clean ({} files)", report.files_scanned);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            eprintln!(
                "lint: {} violation(s) in {} files scanned",
                report.diagnostics.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn bench_floors(args: &[String]) -> ExitCode {
    let dir = match args {
        [] => default_root().join("reports"),
        [flag, dir] if flag == "--reports" => PathBuf::from(dir),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match check_floors(&dir) {
        Ok(report) => {
            for check in &report.checks {
                println!("{check}");
            }
            let violations = report.violations();
            if violations.is_empty() {
                println!(
                    "bench-floors: {} check(s) met in {} report(s)",
                    report.checks.len(),
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "bench-floors: {} of {} check(s) outside the acceptance bound",
                    violations.len(),
                    report.checks.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench-floors: cannot scan {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

/// The workspace root: xtask lives at `<root>/crates/xtask`.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
