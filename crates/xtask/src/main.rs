//! `cargo run -p xtask -- <task>` entry point.
//!
//! Tasks:
//! - `lint [--root <dir>]` — run the workspace lint rules. Exits 0 when
//!   clean, 1 with one `path:line: [rule] message` diagnostic per line
//!   when violations are found, 2 on usage or I/O errors. A per-rule
//!   violation count summary is printed either way.
//! - `concurrency [--root <dir>]` — run only the lock-discipline rules
//!   (`lock-order`, `lock-across-publish`, `raw-lock`, `guard-escape`)
//!   and print the derived lock-order graph. Same exit codes as `lint`.
//! - `bench-floors [--reports <dir>]` — parse `reports/BENCH_*.json` and
//!   fail when any recorded measurement falls outside its recorded bound
//!   (`speedup`/`throughput_actions_per_second` below `acceptance_floor`,
//!   or `peak_rss_bytes` above `rss_ceiling_bytes`). Zero parseable
//!   reports is a failure — a gate that never measures anything must not
//!   pass. Same exit-code convention as `lint`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine::{concurrency_workspace, lint_workspace};
use xtask::floors::check_floors;
use xtask::Diagnostic;

const USAGE: &str = "usage: cargo run -p xtask -- lint [--root <dir>] | concurrency [--root <dir>] | bench-floors [--reports <dir>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("concurrency") => concurrency(&args[1..]),
        Some("bench-floors") => bench_floors(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("no task given\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses the one optional `--root <dir>` / `--reports <dir>` argument.
fn parse_dir(args: &[String], flag: &str, default: PathBuf) -> Option<PathBuf> {
    match args {
        [] => Some(default),
        [f, dir] if f == flag => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// `rule-id: N` counts for every rule that fired, most frequent first.
fn rule_summary(diagnostics: &[Diagnostic]) -> String {
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for d in diagnostics {
        match counts.iter_mut().find(|(r, _)| *r == d.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((d.rule, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    counts
        .iter()
        .map(|(r, n)| format!("{r}: {n}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn lint(args: &[String]) -> ExitCode {
    let Some(root) = parse_dir(args, "--root", default_root()) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match lint_workspace(&root) {
        Ok(report) if report.diagnostics.is_empty() => {
            println!("lint: clean ({} files)", report.files_scanned);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            eprintln!(
                "lint: {} violation(s) in {} files scanned ({})",
                report.diagnostics.len(),
                report.files_scanned,
                rule_summary(&report.diagnostics)
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn concurrency(args: &[String]) -> ExitCode {
    let Some(root) = parse_dir(args, "--root", default_root()) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match concurrency_workspace(&root) {
        Ok(report) => {
            println!("lock-order graph (held -> acquired):");
            if report.graph.is_empty() {
                println!("  (no nested acquisitions)");
            }
            for (held, acquired) in &report.graph {
                println!("  {held} -> {acquired}");
            }
            if report.diagnostics.is_empty() {
                println!("concurrency: clean ({} files)", report.files_scanned);
                ExitCode::SUCCESS
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                eprintln!(
                    "concurrency: {} violation(s) in {} files scanned ({})",
                    report.diagnostics.len(),
                    report.files_scanned,
                    rule_summary(&report.diagnostics)
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("concurrency: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn bench_floors(args: &[String]) -> ExitCode {
    let Some(dir) = parse_dir(args, "--reports", default_root().join("reports")) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match check_floors(&dir) {
        Ok(report) => {
            if report.is_vacuous() {
                eprintln!(
                    "bench-floors: no BENCH_*.json reports under {}; refusing to pass vacuously",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
            for check in &report.checks {
                println!("{check}");
            }
            let violations = report.violations();
            if violations.is_empty() {
                println!(
                    "bench-floors: {} check(s) met in {} report(s)",
                    report.checks.len(),
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "bench-floors: {} of {} check(s) outside the acceptance bound",
                    violations.len(),
                    report.checks.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench-floors: cannot scan {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

/// The workspace root: xtask lives at `<root>/crates/xtask`.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
