//! Lint fixture: one seeded lock-discipline violation per concurrency
//! rule. This file is NOT part of any crate — the engine tests point the
//! scanner at `fixtures/bad` as if it were a workspace root.

fn shard_then_global(&self) {
    let shard = self.shards[0].lock();
    let g = self.global.lock(); // lock-order: shard guard still live
    drop(g);
    drop(shard);
}

fn global_then_shard(&self) {
    let g = self.global.lock();
    let s = self.shards[1].lock(); // lock-order: reverse of the protocol
    drop(s);
    drop(g);
}

fn publish_under_guard(&self) {
    let shard = self.shards[0].lock();
    self.epoch.publish(rebuild(&shard)); // lock-across-publish
}

fn raw_acquisition(&self) {
    let g = self.state.lock().unwrap(); // raw-lock: bypasses poison recovery
    drop(g);
}

fn leaked_guard(&self) -> MutexGuard<'_, u64> {
    self.state.lock() // guard-escape: returned from the acquiring function
}

struct GuardCache<'a> {
    held: MutexGuard<'a, u64>, // guard-escape: stored in a field
}
