//! Lint fixture: one seeded violation per rule. This file is NOT part of
//! any crate — the engine tests point the scanner at `fixtures/bad` as if
//! it were a workspace root.

fn panics(x: Option<u64>) -> u64 {
    x.unwrap() // core-panic
}

fn hot(v: &mut [u64]) {
    for i in 0..v.len() {
        v[i] = i as u32 as u64; // hot-loop-index + hot-loop-cast
    }
}

fn float_equal(x: f64) -> bool {
    x == 0.0 // float-eq
}

fn config() -> ParallelConfig {
    ParallelConfig { threads: 4 } // config-literal
}

fn shim(d: &Dataset, c: &TrainConfig) {
    let _ = train_em(d, c); // deprecated-train-em
}

// lint:allow(no-such-rule): an unknown rule id is itself a violation.
fn marker_target() {}
