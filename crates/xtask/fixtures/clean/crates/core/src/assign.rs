//! Lint fixture: every *allowed* construct that sits near a rule's
//! boundary. The engine tests assert the scanner stays quiet here.

fn near_miss_tokens(r: Result<u64, ()>) -> u64 {
    // `.unwrap_or` / `.expect_err` share prefixes with banned tokens.
    let a = r.unwrap_or(0);
    let b = r.expect_err("fixture");
    let _ = b;
    a
}

fn hot_but_legal(v: &[u64], out: &mut Vec<u64>) {
    // Iterators, range slices, and widening casts are all fine in loops.
    for (i, &x) in v.iter().enumerate() {
        out.push(x + i as u64);
        let window = &v[1..v.len()];
        let _ = window.len() as usize;
    }
}

fn marked_exception(v: &mut [u64], idx: usize) {
    for bit in 0..64 {
        // lint:allow(hot-loop-index): fixture mirror of the bit-packed
        // backpointer write; the index is proven in range.
        v[idx / 64] |= 1u64 << bit;
    }
}

// lint:allow-block(float-eq): fixture mirror of an approved comparison
// region with an explicit begin/end span.
fn sentinel(x: f64) -> bool {
    x == f64::NEG_INFINITY
}
// lint:end-allow-block(float-eq)

fn integer_comparisons(n: usize) -> bool {
    n == 0 || n != 1
}

fn builder_usage() -> ParallelConfig {
    ParallelConfig::sequential().with_threads(4)
}

fn borrow(c: &ParallelConfig) -> &ParallelConfig {
    c
}

fn richer_entry(d: &Dataset, c: &TrainConfig, p: &ParallelConfig) {
    // Shares a prefix with the deprecated shim, but is the blessed API.
    let _ = train_em_with_parallelism(d, c, p);
}

fn strings_and_comments() -> &'static str {
    // panic!("never fires"); x[0]; y == 0.0; train_em(d, c)
    "call .unwrap() or ParallelConfig { threads: 1 } — inert in a string"
}
