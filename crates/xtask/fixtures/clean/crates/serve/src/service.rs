//! Lint fixture mirror: the same shapes as the bad fixture, written with
//! the documented lock protocol — drop-before-global, the audited
//! all-shards snapshot marker, blessed helper acquisitions, and guard
//! types in non-escaping positions. Must stay completely quiet.

fn shard_then_global(&self) {
    let shard = self.shards[0].lock();
    drop(shard);
    let g = self.global.lock();
    drop(g);
}

fn snapshot(&self) {
    let shards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
    // lint:allow(lock-order): audited stop-the-world snapshot path — all
    // shards ascending, then global.
    let g = self.global.lock();
    drop(g);
    drop(shards);
}

fn publish_outside_guard(&self) {
    let shard = self.shards[0].lock();
    let next = rebuild(&shard);
    drop(shard);
    self.epoch.publish(next);
}

fn blessed_helper(&self) {
    let n = lock(&self.free).len();
    let _ = n;
}

fn policy_projection(&self) -> RefitPolicy {
    self.global.lock().policy
}

fn borrowed_guard_is_not_an_escape(g: &MutexGuard<'_, u64>) -> u64 {
    **g
}

fn local_annotation_is_not_an_escape(&self) {
    let held: Vec<MutexGuard<'_, u64>> = Vec::new();
    let _ = held;
}
