//! Out-of-core chunked datasets and sharded training (DESIGN.md §13).
//!
//! The in-memory [`Dataset`] is a Vec-of-sequences that must be fully
//! materialized, which pins training memory to the corpus size. This
//! module provides the million-user path: a corpus is consumed as a
//! stream of fixed-size **user-partition chunks** in a columnar layout
//! ([`DatasetChunk`]), produced on demand by any [`ChunkSource`]. Both
//! the in-memory dataset ([`DatasetChunks`]) and owned columnar storage
//! ([`ChunkedDataset`]) implement the trait, as does the
//! generate-and-fold synthetic source in `upskill-datasets`; training
//! memory is bounded by `chunk_size × workers`, independent of the
//! number of users.
//!
//! The chunked trainers ([`train_chunked`], [`train_em_chunked`])
//! mirror their in-memory counterparts step for step and produce
//! **bitwise-identical** models, log-likelihoods, and traces relative
//! to the sequential in-memory paths (pinned by
//! `tests/properties_scale.rs`):
//!
//! - Assignment always runs through the [`EmissionTable`] DP, which is
//!   bitwise identical to the direct path (pinned in [`crate::assign`]).
//! - Per-user log-likelihoods are folded in global user order (chunks in
//!   index order, users in chunk order) regardless of worker count, so
//!   the total matches the sequential fold exactly. (The in-memory
//!   *parallel* path folds in work-stealing completion order, which is
//!   why the sequential path is the canonical baseline.)
//! - Sufficient statistics are integer [`StatsGrid`] counts, sharded per
//!   worker and combined with the order-free additive
//!   [`StatsGrid::merge`].
//! - Soft (EM) statistics are folded through the weighted accumulators
//!   in global action order during a sequential apply phase, mirroring
//!   the legacy from-scratch EM accumulation.

use std::time::Instant;

use crate::assign::{assign_items_with_table_ws, AssignWorkspace};
use crate::dist::{FeatureAccumulator, FeatureDistribution};
use crate::em::{EmConfig, EmResult, FbWorkspace, WeightedAcc};
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::feature::FeatureSchema;
use crate::incremental::StatsGrid;
use crate::init::segment_uniform_times;
use crate::invariants::InvariantCtx;
use crate::model::SkillModel;
use crate::parallel::ParallelConfig;
use crate::train::{IterationStats, TrainConfig};
use crate::types::{
    Action, ActionSequence, Dataset, ItemId, SkillAssignments, SkillLevel, Timestamp, UserId,
};
use crate::update::fit_cells;

/// One fixed-size user partition of a corpus in columnar layout.
///
/// Item ids and timestamps are stored contiguously across all users of
/// the chunk; per-user extents live in `offsets` (CSR layout). The
/// buffer is reusable: [`ChunkSource::load_chunk`] clears and refills it
/// without reallocating once capacity has grown to the chunk size.
#[derive(Debug, Clone, Default)]
pub struct DatasetChunk {
    /// Position of this chunk in the source's chunk sequence.
    index: usize,
    /// Global index of the first user in this chunk.
    user_offset: usize,
    /// Owner of each sequence in the chunk.
    users: Vec<UserId>,
    /// CSR extents: user `u` of the chunk owns actions
    /// `offsets[u]..offsets[u + 1]`. Always `users.len() + 1` long.
    offsets: Vec<usize>,
    /// Item column, contiguous across the chunk's users.
    items: Vec<ItemId>,
    /// Timestamp column, parallel to `items`.
    times: Vec<Timestamp>,
}

impl DatasetChunk {
    /// Creates an empty reusable chunk buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the buffer for refilling as chunk `index`, whose first
    /// user has global index `user_offset`. Capacity is retained.
    pub fn reset(&mut self, index: usize, user_offset: usize) {
        self.index = index;
        self.user_offset = user_offset;
        self.users.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.items.clear();
        self.times.clear();
    }

    /// Opens a new (empty) sequence for `user` at the end of the chunk.
    pub fn begin_user(&mut self, user: UserId) {
        self.users.push(user);
        self.offsets.push(self.items.len());
    }

    /// Appends one action to the most recently opened sequence.
    ///
    /// Returns [`CoreError::UnsortedSequence`] when no sequence is open
    /// or the timestamp moves backwards within the open sequence.
    pub fn push_action(&mut self, time: Timestamp, item: ItemId) -> Result<()> {
        let Some(&user) = self.users.last() else {
            return Err(CoreError::UnsortedSequence {
                user: 0,
                position: 0,
            });
        };
        let start = self.offsets[self.users.len() - 1];
        if let Some(&last) = self.times.last() {
            if self.times.len() > start && time < last {
                return Err(CoreError::UnsortedSequence {
                    user,
                    position: self.times.len() - start,
                });
            }
        }
        self.items.push(item);
        self.times.push(time);
        if let Some(last) = self.offsets.last_mut() {
            *last = self.items.len();
        }
        Ok(())
    }

    /// Position of this chunk in the source's chunk sequence.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Global index of the chunk's first user.
    pub fn user_offset(&self) -> usize {
        self.user_offset
    }

    /// Number of user sequences in the chunk.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of actions in the chunk.
    pub fn n_actions(&self) -> usize {
        self.items.len()
    }

    /// Owner ids of the chunk's sequences, in order.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Item column of the `u`-th sequence of the chunk.
    pub fn user_items(&self, u: usize) -> &[ItemId] {
        &self.items[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Timestamp column of the `u`-th sequence of the chunk.
    pub fn user_times(&self, u: usize) -> &[Timestamp] {
        &self.times[self.offsets[u]..self.offsets[u + 1]]
    }

    /// The chunk-wide contiguous item column.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }
}

/// A corpus consumed as a stream of user-partition chunks.
///
/// Implementors expose the item feature table through an **item view**:
/// a [`Dataset`] holding the schema and item features but *no*
/// sequences. Every item-dependent stage (emission-table builds and
/// refreshes, grid refits, model construction) runs against the item
/// view unchanged, so chunked training shares all of that machinery —
/// and its bitwise behavior — with the in-memory path.
///
/// `load_chunk` must be deterministic: loading the same index twice
/// yields the same chunk (the `Recompute` assignment storage relies on
/// replaying chunks). Chunk `i` covers global users
/// `i * chunk_size .. min((i + 1) * chunk_size, n_users)` in corpus
/// order.
pub trait ChunkSource: Sync {
    /// Schema + item feature table with no sequences.
    fn item_view(&self) -> &Dataset;

    /// Total number of users in the corpus.
    fn n_users(&self) -> usize;

    /// Total number of actions in the corpus.
    fn n_actions(&self) -> usize;

    /// Maximum users per chunk (the last chunk may be shorter).
    fn chunk_size(&self) -> usize;

    /// Number of chunks in the stream.
    fn n_chunks(&self) -> usize {
        self.n_users().div_ceil(self.chunk_size().max(1))
    }

    /// Fills `out` with chunk `index`. Deterministic per index.
    fn load_chunk(&self, index: usize, out: &mut DatasetChunk) -> Result<()>;
}

/// Borrowed adapter presenting an in-memory [`Dataset`] as a chunk
/// stream. Loading a chunk copies the sequence slices into the columnar
/// buffer; the item view is the dataset itself.
#[derive(Debug, Clone, Copy)]
pub struct DatasetChunks<'a> {
    dataset: &'a Dataset,
    chunk_size: usize,
}

impl<'a> DatasetChunks<'a> {
    /// Wraps `dataset` as a stream of `chunk_size`-user chunks.
    pub fn new(dataset: &'a Dataset, chunk_size: usize) -> Result<Self> {
        if chunk_size == 0 {
            return Err(CoreError::InvalidChunkSize { requested: 0 });
        }
        Ok(Self {
            dataset,
            chunk_size,
        })
    }
}

impl ChunkSource for DatasetChunks<'_> {
    fn item_view(&self) -> &Dataset {
        self.dataset
    }

    fn n_users(&self) -> usize {
        self.dataset.n_users()
    }

    fn n_actions(&self) -> usize {
        self.dataset.n_actions()
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn load_chunk(&self, index: usize, out: &mut DatasetChunk) -> Result<()> {
        let n_users = self.dataset.n_users();
        let start = index * self.chunk_size;
        if start >= n_users {
            return Err(CoreError::LengthMismatch {
                context: "chunk index vs chunk count",
                left: index,
                right: self.n_chunks(),
            });
        }
        let end = (start + self.chunk_size).min(n_users);
        out.reset(index, start);
        for seq in &self.dataset.sequences()[start..end] {
            out.begin_user(seq.user);
            for a in seq.actions() {
                out.push_action(a.time, a.item)?;
            }
        }
        Ok(())
    }
}

/// Owned columnar storage of a whole corpus, pre-partitioned into
/// fixed-size user chunks.
///
/// Unlike [`DatasetChunks`] this drops the Vec-of-sequences
/// representation entirely: one contiguous item column, one timestamp
/// column, and CSR offsets over users. `load_chunk` is a pair of
/// `memcpy`s. Useful when the corpus fits in memory but the per-user
/// `Vec<Action>` overhead (and 16-byte `Action` stride) does not.
#[derive(Debug, Clone)]
pub struct ChunkedDataset {
    item_view: Dataset,
    chunk_size: usize,
    users: Vec<UserId>,
    /// CSR extents over the full corpus: user `u` owns
    /// `offsets[u]..offsets[u + 1]`.
    offsets: Vec<usize>,
    items: Vec<ItemId>,
    times: Vec<Timestamp>,
}

impl ChunkedDataset {
    /// Re-lays an in-memory dataset out columnar with `chunk_size`-user
    /// partitions.
    pub fn from_dataset(dataset: &Dataset, chunk_size: usize) -> Result<Self> {
        if chunk_size == 0 {
            return Err(CoreError::InvalidChunkSize { requested: 0 });
        }
        let item_view = Dataset::new(
            dataset.schema().clone(),
            dataset.items().to_vec(),
            Vec::new(),
        )?;
        let n_actions = dataset.n_actions();
        let mut users = Vec::with_capacity(dataset.n_users());
        let mut offsets = Vec::with_capacity(dataset.n_users() + 1);
        let mut items = Vec::with_capacity(n_actions);
        let mut times = Vec::with_capacity(n_actions);
        offsets.push(0);
        for seq in dataset.sequences() {
            users.push(seq.user);
            for a in seq.actions() {
                items.push(a.item);
                times.push(a.time);
            }
            offsets.push(items.len());
        }
        Ok(Self {
            item_view,
            chunk_size,
            users,
            offsets,
            items,
            times,
        })
    }
}

impl ChunkSource for ChunkedDataset {
    fn item_view(&self) -> &Dataset {
        &self.item_view
    }

    fn n_users(&self) -> usize {
        self.users.len()
    }

    fn n_actions(&self) -> usize {
        self.items.len()
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn load_chunk(&self, index: usize, out: &mut DatasetChunk) -> Result<()> {
        let n_users = self.users.len();
        let start = index * self.chunk_size;
        if start >= n_users {
            return Err(CoreError::LengthMismatch {
                context: "chunk index vs chunk count",
                left: index,
                right: self.n_chunks(),
            });
        }
        let end = (start + self.chunk_size).min(n_users);
        out.reset(index, start);
        out.users.extend_from_slice(&self.users[start..end]);
        let (lo, hi) = (self.offsets[start], self.offsets[end]);
        out.offsets.clear();
        out.offsets
            .extend(self.offsets[start..=end].iter().map(|&o| o - lo));
        out.items.extend_from_slice(&self.items[lo..hi]);
        out.times.extend_from_slice(&self.times[lo..hi]);
        Ok(())
    }
}

/// Folds a chunk stream back into an in-memory [`Dataset`].
///
/// The inverse of [`DatasetChunks`]; used by cross-checks and by
/// streaming sessions resumed from a chunked source. Memory is
/// corpus-sized by construction — only call this at scales where the
/// in-memory representation is acceptable.
pub fn materialize<S: ChunkSource + ?Sized>(source: &S) -> Result<Dataset> {
    let view = source.item_view();
    let mut sequences = Vec::with_capacity(source.n_users());
    let mut chunk = DatasetChunk::new();
    for index in 0..source.n_chunks() {
        source.load_chunk(index, &mut chunk)?;
        for u in 0..chunk.n_users() {
            let user = chunk.users()[u];
            let actions = chunk
                .user_items(u)
                .iter()
                .zip(chunk.user_times(u))
                .map(|(&item, &time)| Action::new(time, user, item))
                .collect();
            sequences.push(ActionSequence::new(user, actions)?);
        }
    }
    Dataset::new(view.schema().clone(), view.items().to_vec(), sequences)
}

/// Returns the schema of a source's item view (convenience for callers
/// generic over [`ChunkSource`]).
pub fn source_schema<S: ChunkSource + ?Sized>(source: &S) -> &FeatureSchema {
    source.item_view().schema()
}

/// How the chunked hard trainer remembers the previous iteration's
/// skill assignments, which it needs for churn counting and convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentStorage {
    /// Keep one `SkillLevel` byte per action across iterations
    /// (`O(n_actions)` memory — fastest, but linear in corpus size).
    #[default]
    InMemory,
    /// Keep only the previous iteration's emission table and re-run the
    /// (deterministic) DP per chunk to recover the previous levels —
    /// memory stays bounded by `chunk_size × workers` at the cost of a
    /// second DP pass per action.
    Recompute,
}

/// Result of chunked training; the chunked analogue of
/// [`TrainResult`](crate::train::TrainResult).
///
/// Deliberately omits the corpus-sized per-action assignments (that
/// would defeat the flat-memory contract); the per-level action counts
/// summarize them, and [`assign_chunked`] re-derives the full
/// assignments when a caller accepts corpus-sized output.
#[derive(Debug, Clone)]
pub struct ChunkedTrainResult {
    /// The fitted model.
    pub model: crate::model::SkillModel,
    /// Final objective value (total log-likelihood, or log-evidence for
    /// the EM mode).
    pub log_likelihood: f64,
    /// Per-iteration statistics, identical to the in-memory trace.
    pub trace: Vec<crate::train::IterationStats>,
    /// Whether training stopped before the iteration cap.
    pub converged: bool,
    /// Actions per skill level under the final assignments
    /// (`histogram[s - 1]` = actions at level `s`).
    pub level_histogram: Vec<u64>,
    /// Users seen in the stream.
    pub n_users: usize,
    /// Actions seen in the stream.
    pub n_actions: usize,
}

/// Decodes the full per-action skill assignments of `source` under
/// `model`, returning them with the user-order total log-likelihood.
///
/// Output is corpus-sized; this is the bridge from chunked training
/// back to assignment-consuming APIs (difficulty, sessions, tests).
/// Bitwise identical to [`crate::assign::assign_all_with_table`] on the
/// materialized dataset.
pub fn assign_chunked<S: ChunkSource + ?Sized>(
    source: &S,
    model: &crate::model::SkillModel,
    parallel: &crate::parallel::ParallelConfig,
) -> Result<(SkillAssignments, f64)> {
    parallel.validate()?;
    let view = source.item_view();
    let table = if parallel.users && parallel.threads > 1 {
        EmissionTable::build_parallel(model, view, parallel.threads)?
    } else {
        EmissionTable::build(model, view)
    };
    crate::invariants::InvariantCtx::new().check_emission_table(&table)?;
    let mut per_user: Vec<Vec<SkillLevel>> = Vec::with_capacity(source.n_users());
    let mut total_ll = 0.0;
    let mut chunk = DatasetChunk::new();
    let mut ws = AssignWorkspace::new();
    for index in 0..source.n_chunks() {
        source.load_chunk(index, &mut chunk)?;
        for u in 0..chunk.n_users() {
            let a = assign_items_with_table_ws(&table, chunk.user_items(u), &mut ws)?;
            total_ll += a.log_likelihood;
            per_user.push(a.levels);
        }
    }
    Ok((SkillAssignments { per_user }, total_ll))
}

/// Chunked analogue of [`crate::init::initialize_model`]: uniform-in-time
/// segmentation of long sequences, streamed chunk by chunk.
///
/// Pushes features in the same `(user, action, feature)` order as the
/// in-memory initializer (users in corpus order, short users skipped), so
/// the initial model is bitwise identical to
/// `initialize_model(&materialize(source)?, ..)`.
pub fn initialize_model_chunked<S: ChunkSource + ?Sized>(
    source: &S,
    n_levels: usize,
    min_actions: usize,
    lambda: f64,
) -> Result<SkillModel> {
    if n_levels == 0 {
        return Err(CoreError::InvalidSkillCount { requested: 0 });
    }
    if source.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let view = source.item_view();
    let schema = view.schema();
    let mut grid: Vec<Vec<FeatureAccumulator>> = (0..n_levels)
        .map(|_| {
            schema
                .kinds()
                .iter()
                .map(|&k| FeatureAccumulator::new(k))
                .collect()
        })
        .collect();
    let mut qualifying_actions = 0usize;
    let mut chunk = DatasetChunk::new();
    for index in 0..source.n_chunks() {
        source.load_chunk(index, &mut chunk)?;
        for u in 0..chunk.n_users() {
            let items = chunk.user_items(u);
            if items.len() < min_actions {
                continue;
            }
            qualifying_actions += items.len();
            let levels = segment_uniform_times(chunk.user_times(u), n_levels);
            for (&item, &level) in items.iter().zip(&levels) {
                let features = view.item_features(item);
                let row = grid
                    .get_mut(level as usize - 1)
                    .ok_or(CoreError::InvalidSkillCount {
                        requested: level as usize,
                    })?;
                for (acc, value) in row.iter_mut().zip(features) {
                    acc.push(value)?;
                }
            }
        }
    }
    if qualifying_actions == 0 {
        return Err(CoreError::NoInitializationUsers {
            threshold: min_actions,
        });
    }
    let cells = fit_cells(&grid, lambda)?;
    SkillModel::new(schema.clone(), n_levels, cells)
}

/// How one assignment pass recovers the *previous* iteration's levels for
/// churn counting.
#[derive(Clone, Copy)]
enum PrevPass<'a> {
    /// First iteration: nothing to diff against.
    None,
    /// [`AssignmentStorage::InMemory`]: stored flat levels per chunk.
    Levels(&'a [Vec<SkillLevel>]),
    /// [`AssignmentStorage::Recompute`]: the previous iteration's emission
    /// table; the deterministic DP is re-run per chunk.
    Table(&'a EmissionTable),
}

/// Per-worker reusable state for the hard assignment pass. One worker owns
/// one chunk buffer, two DP workspaces, and (when statistics are being
/// built) a partial [`StatsGrid`] sharded by the user partitions it
/// processed.
struct WorkerState {
    chunk: DatasetChunk,
    ws: AssignWorkspace,
    prev_ws: AssignWorkspace,
    grid: Option<StatsGrid>,
    histogram: Vec<u64>,
}

/// What one worker hands back per chunk (worker-local accumulations —
/// grid, histogram — stay in [`WorkerState`] and merge once per pass).
struct ChunkOutcome {
    /// Per-user log-likelihoods, in chunk user order.
    user_lls: Vec<f64>,
    /// Flat assigned levels over the chunk's action column.
    levels: Vec<SkillLevel>,
    /// Actions whose level moved vs. the previous iteration.
    n_changed: Option<usize>,
}

/// DP + statistics + churn for one chunk.
fn process_chunk<S: ChunkSource + ?Sized>(
    source: &S,
    table: &EmissionTable,
    prev: PrevPass<'_>,
    chunk_index: usize,
    state: &mut WorkerState,
    ctx: InvariantCtx,
) -> Result<ChunkOutcome> {
    source.load_chunk(chunk_index, &mut state.chunk)?;
    let chunk = &state.chunk;
    let mut user_lls = Vec::with_capacity(chunk.n_users());
    let mut levels: Vec<SkillLevel> = Vec::with_capacity(chunk.n_actions());
    for u in 0..chunk.n_users() {
        let a = assign_items_with_table_ws(table, chunk.user_items(u), &mut state.ws)?;
        ctx.check_sequence_monotone("chunked training assignment", &a.levels)?;
        user_lls.push(a.log_likelihood);
        levels.extend_from_slice(&a.levels);
    }
    if let Some(g) = state.grid.as_mut() {
        for (&item, &level) in chunk.items().iter().zip(&levels) {
            g.add_action(item, level)?;
        }
    }
    for &level in &levels {
        state.histogram[level as usize - 1] += 1;
    }
    let n_changed = match prev {
        PrevPass::None => None,
        PrevPass::Levels(all) => {
            let prev_levels = &all[chunk_index];
            if prev_levels.len() != levels.len() {
                return Err(CoreError::LengthMismatch {
                    context: "previous vs next assignment lengths",
                    left: prev_levels.len(),
                    right: levels.len(),
                });
            }
            Some(
                prev_levels
                    .iter()
                    .zip(&levels)
                    .filter(|(a, b)| a != b)
                    .count(),
            )
        }
        PrevPass::Table(prev_table) => {
            let mut changed = 0usize;
            let mut offset = 0usize;
            for u in 0..chunk.n_users() {
                let items = chunk.user_items(u);
                let p = assign_items_with_table_ws(prev_table, items, &mut state.prev_ws)?;
                changed += p
                    .levels
                    .iter()
                    .zip(&levels[offset..offset + items.len()])
                    .filter(|(a, b)| a != b)
                    .count();
                offset += items.len();
            }
            Some(changed)
        }
    };
    Ok(ChunkOutcome {
        user_lls,
        levels,
        n_changed,
    })
}

/// Result of one full assignment pass over the chunk stream.
struct PassResult {
    /// Total log-likelihood, folded in global user order.
    total_ll: f64,
    /// Total churn vs. the previous iteration (`None` on the first pass).
    n_changed: Option<usize>,
    /// Actions per level under the new assignments.
    histogram: Vec<u64>,
    /// Merged sufficient statistics (when requested).
    grid: Option<StatsGrid>,
    /// Flat new levels per chunk (when requested, i.e. `InMemory`).
    levels_by_chunk: Option<Vec<Vec<SkillLevel>>>,
}

/// One sharded assignment pass: chunks are processed in waves of
/// `workers_for_chunks` scoped threads, each worker owning its buffers
/// and a partial grid; results are applied sequentially **in chunk
/// order**, so the log-likelihood fold is the global user-order fold
/// whatever the worker count.
fn run_assignment_pass<S: ChunkSource + ?Sized>(
    source: &S,
    table: &EmissionTable,
    prev: PrevPass<'_>,
    n_levels: usize,
    parallel: &ParallelConfig,
    build_grid: bool,
    keep_levels: bool,
) -> Result<PassResult> {
    let n_chunks = source.n_chunks();
    let n_workers = parallel.workers_for_chunks(n_chunks);
    let n_items = source.item_view().n_items();
    let ctx = InvariantCtx::new();
    let mut states: Vec<WorkerState> = (0..n_workers)
        .map(|_| -> Result<WorkerState> {
            Ok(WorkerState {
                chunk: DatasetChunk::new(),
                ws: AssignWorkspace::new(),
                prev_ws: AssignWorkspace::new(),
                grid: if build_grid {
                    Some(StatsGrid::new(n_levels, n_items)?)
                } else {
                    None
                },
                histogram: vec![0; n_levels],
            })
        })
        .collect::<Result<_>>()?;

    let mut total_ll = 0.0;
    let mut n_changed_total = 0usize;
    let mut levels_by_chunk = if keep_levels {
        Some(Vec::with_capacity(n_chunks))
    } else {
        None
    };

    for wave_start in (0..n_chunks).step_by(n_workers.max(1)) {
        let wave_len = n_workers.min(n_chunks - wave_start);
        let outcomes: Vec<Result<ChunkOutcome>> = if wave_len == 1 {
            vec![process_chunk(
                source,
                table,
                prev,
                wave_start,
                &mut states[0],
                ctx,
            )]
        } else {
            let wave_states = &mut states[..wave_len];
            let mut joined = Vec::with_capacity(wave_len);
            std::thread::scope(|scope| {
                let handles: Vec<_> = wave_states
                    .iter_mut()
                    .enumerate()
                    .map(|(w, state)| {
                        scope.spawn(move || {
                            process_chunk(source, table, prev, wave_start + w, state, ctx)
                        })
                    })
                    .collect();
                for handle in handles {
                    joined.push(handle.join().unwrap_or(Err(CoreError::WorkerPanicked {
                        step: "chunked assignment",
                    })));
                }
            });
            joined
        };
        // Sequential apply, in chunk order: the f64 fold is order-
        // sensitive, the rest is integer bookkeeping.
        for outcome in outcomes {
            let outcome = outcome?;
            for ll in &outcome.user_lls {
                total_ll += ll;
            }
            if let Some(n) = outcome.n_changed {
                n_changed_total += n;
            }
            if let Some(store) = levels_by_chunk.as_mut() {
                store.push(outcome.levels);
            }
        }
    }

    // Merge the per-worker partials. Integer counts: order-free, exact.
    let mut histogram = vec![0u64; n_levels];
    let mut grid: Option<StatsGrid> = None;
    for state in states {
        for (h, &p) in histogram.iter_mut().zip(&state.histogram) {
            *h += p;
        }
        if let Some(partial) = state.grid {
            match grid.as_mut() {
                Some(g) => g.merge(&partial)?,
                None => grid = Some(partial),
            }
        }
    }
    Ok(PassResult {
        total_ll,
        n_changed: match prev {
            PrevPass::None => None,
            _ => Some(n_changed_total),
        },
        histogram,
        grid,
        levels_by_chunk,
    })
}

/// Emission-table management mirroring the in-memory trainer's
/// `assign_step`: refresh only refit levels' columns when a full dirty
/// vector is known, rebuild otherwise.
fn refresh_or_build_table<'a>(
    model: &SkillModel,
    view: &Dataset,
    parallel: &ParallelConfig,
    table: &'a mut Option<EmissionTable>,
    refit_levels: &[bool],
    ctx: InvariantCtx,
) -> Result<&'a EmissionTable> {
    let refresh = refit_levels.len() == model.n_levels() && table.is_some();
    if !refresh {
        let built = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(model, view, parallel.threads)?
        } else {
            EmissionTable::build(model, view)
        };
        *table = Some(built);
    }
    match table {
        Some(t) => {
            if refresh {
                t.refresh_levels(model, view, refit_levels)?;
            }
            ctx.check_emission_table(t)?;
            Ok(t)
        }
        None => Err(CoreError::InvariantViolation {
            check: "chunked emission table",
            detail: "table slot empty after build".to_string(),
        }),
    }
}

/// Resolves the previous-iteration view for a pass.
fn prev_pass<'a>(
    prev_levels: &'a Option<Vec<Vec<SkillLevel>>>,
    prev_table: &'a Option<EmissionTable>,
    storage: AssignmentStorage,
) -> PrevPass<'a> {
    match storage {
        AssignmentStorage::InMemory => match prev_levels {
            Some(levels) => PrevPass::Levels(levels),
            None => PrevPass::None,
        },
        AssignmentStorage::Recompute => match prev_table {
            Some(table) => PrevPass::Table(table),
            None => PrevPass::None,
        },
    }
}

/// Chunk-at-a-time hard trainer: the out-of-core twin of
/// [`crate::train::train_with_parallelism`].
///
/// Every stage streams the corpus through fixed-size chunks — the only
/// corpus-sized state is the optional [`AssignmentStorage::InMemory`]
/// level store (one byte per action); with
/// [`AssignmentStorage::Recompute`] peak memory is bounded by
/// `chunk_size × workers` plus the `n_items × S` emission table and
/// histogram.
///
/// **Bitwise contract**: the model, log-likelihood, per-iteration trace
/// (`log_likelihood` / `n_changed`), and convergence decision are
/// bitwise identical to the in-memory trainer under
/// [`ParallelConfig::sequential`] on the materialized dataset — for any
/// `chunk_size`, worker count, and either storage mode. This holds
/// because assignment always runs the table-backed DP (bitwise equal to
/// the direct DP), log-likelihoods fold in global user order, sufficient
/// statistics are exact integer counts merged order-free, and a cell
/// refit is a pure function of its histogram row — so reused rows equal
/// refit rows bit for bit. `ParallelConfig::emission_f32` is ignored
/// here: the compact `f32` table is *not* bitwise-equal and would break
/// the contract.
pub fn train_chunked<S: ChunkSource + ?Sized>(
    source: &S,
    config: &TrainConfig,
    parallel: &ParallelConfig,
    storage: AssignmentStorage,
) -> Result<ChunkedTrainResult> {
    config.validate()?;
    parallel.validate()?;
    if source.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let view = source.item_view();
    let n_levels = config.n_levels;
    let mut model =
        initialize_model_chunked(source, n_levels, config.min_init_actions, config.lambda)?;
    let mut prev_levels: Option<Vec<Vec<SkillLevel>>> = None;
    let mut prev_table: Option<EmissionTable> = None;
    let mut prev_ll = f64::NEG_INFINITY;
    let mut trace = Vec::new();
    let mut prev_grid: Option<StatsGrid> = None;
    let mut table: Option<EmissionTable> = None;
    let mut refit_levels: Vec<bool> = Vec::new();
    let ctx = InvariantCtx::new();
    let keep_levels = storage == AssignmentStorage::InMemory;

    for iteration in 1..=config.max_iterations {
        let iter_start = Instant::now();
        let t = refresh_or_build_table(&model, view, parallel, &mut table, &refit_levels, ctx)?;
        let prev = prev_pass(&prev_levels, &prev_table, storage);
        let pass = run_assignment_pass(source, t, prev, n_levels, parallel, true, keep_levels)?;
        let ll = pass.total_ll;
        // lint:allow(core-panic): run_assignment_pass(build_grid=true)
        // always returns a grid; its absence is a bug worth a loud panic.
        let mut grid = pass.grid.expect("grid requested");
        // Recover the in-memory trainer's dirty flags by diffing against
        // the previous iteration's pristine grid. The flags may differ
        // when opposing level moves cancel a row exactly — bitwise
        // harmless either way, since an unchanged row refits to the same
        // distributions it had.
        if let Some(pg) = &prev_grid {
            grid.mark_dirty_from(pg)?;
        }

        let stable = pass.n_changed == Some(0);
        let small_gain = prev_ll.is_finite()
            && (ll - prev_ll).abs() <= config.tolerance * prev_ll.abs().max(1.0);
        refit_levels = grid.dirty_levels().to_vec();
        // The Recompute storage replays *this* iteration's DP next time
        // around, so snapshot the table before the refit refreshes it.
        if storage == AssignmentStorage::Recompute {
            prev_table = Some(t.clone());
        }
        let pristine = grid.clone();
        model = grid.fit_model_incremental(view, config.lambda, parallel, Some(&model))?;
        prev_grid = Some(pristine);
        trace.push(IterationStats {
            iteration,
            log_likelihood: ll,
            n_changed: pass.n_changed,
            seconds: iter_start.elapsed().as_secs_f64(),
        });
        if stable || small_gain {
            return Ok(ChunkedTrainResult {
                model,
                log_likelihood: ll,
                trace,
                converged: true,
                level_histogram: pass.histogram,
                n_users: source.n_users(),
                n_actions: source.n_actions(),
            });
        }
        prev_levels = pass.levels_by_chunk;
        prev_ll = ll;
    }

    // Iteration cap reached: one closing assignment pass (no update step)
    // so the reported objective matches the final model, mirroring the
    // in-memory trainer's trailing trace entry.
    let iter_start = Instant::now();
    let t = refresh_or_build_table(&model, view, parallel, &mut table, &refit_levels, ctx)?;
    let prev = prev_pass(&prev_levels, &prev_table, storage);
    let pass = run_assignment_pass(source, t, prev, n_levels, parallel, false, false)?;
    trace.push(IterationStats {
        iteration: config.max_iterations + 1,
        log_likelihood: pass.total_ll,
        n_changed: pass.n_changed,
        seconds: iter_start.elapsed().as_secs_f64(),
    });
    Ok(ChunkedTrainResult {
        model,
        log_likelihood: pass.total_ll,
        trace,
        converged: false,
        level_histogram: pass.histogram,
        n_users: source.n_users(),
        n_actions: source.n_actions(),
    })
}

/// Per-worker reusable state for the EM E-step pass.
struct EmWorkerState {
    chunk: DatasetChunk,
    ws: FbWorkspace,
}

/// One chunk's E-step output: per-user log evidences, flat posterior
/// marginals (`chunk_actions × S`), and the item column they pair with.
struct EmChunkOutcome {
    user_evidences: Vec<f64>,
    gammas: Vec<f64>,
    items: Vec<ItemId>,
}

/// Forward–backward for every user of one chunk.
fn process_chunk_em<S: ChunkSource + ?Sized>(
    source: &S,
    table: &EmissionTable,
    n_levels: usize,
    chunk_index: usize,
    state: &mut EmWorkerState,
) -> Result<EmChunkOutcome> {
    source.load_chunk(chunk_index, &mut state.chunk)?;
    let chunk = &state.chunk;
    let mut user_evidences = Vec::with_capacity(chunk.n_users());
    let mut gammas = Vec::with_capacity(chunk.n_actions() * n_levels);
    for u in 0..chunk.n_users() {
        let items = &chunk.items[chunk.offsets[u]..chunk.offsets[u + 1]];
        let ev = state.ws.run_items(table, items)?;
        user_evidences.push(ev);
        gammas.extend_from_slice(state.ws.gamma());
    }
    Ok(EmChunkOutcome {
        user_evidences,
        gammas,
        items: chunk.items.clone(),
    })
}

/// Chunk-at-a-time EM: the out-of-core twin of the legacy from-scratch
/// EM loop ([`crate::em::train_em_with_parallelism`] with
/// `ParallelConfig::with_incremental(false)`).
///
/// Workers run the flat-buffer forward–backward per chunk; posterior
/// rows are folded through the weighted accumulators sequentially **in
/// global action order** and evidences in global user order, so the
/// evidence trace and fitted model are bitwise identical to the
/// in-memory from-scratch EM on the materialized dataset, for any
/// `chunk_size` and worker count. Per-wave posterior buffers are the
/// only γ storage — memory stays bounded by `chunk_size × workers × S`,
/// never corpus-sized (which is also why this mirrors the from-scratch
/// loop and not the responsibility-delta incremental EM, whose
/// [`SoftStatsGrid`](crate::incremental::SoftStatsGrid) stores one
/// posterior row per corpus action).
pub fn train_em_chunked<S: ChunkSource + ?Sized>(
    source: &S,
    config: &EmConfig,
    parallel: &ParallelConfig,
) -> Result<EmResult> {
    parallel.validate()?;
    if source.n_actions() == 0 {
        return Err(CoreError::EmptyDataset);
    }
    let view = source.item_view();
    let n_levels = config.initial.n_levels();
    let schema = view.schema().clone();
    let mut model = config.initial.clone();
    let mut trace = Vec::new();
    let mut converged = false;
    let n_chunks = source.n_chunks();
    let n_workers = parallel.workers_for_chunks(n_chunks);
    let mut states: Vec<EmWorkerState> = (0..n_workers)
        .map(|_| EmWorkerState {
            chunk: DatasetChunk::new(),
            ws: FbWorkspace::new(&config.transitions),
        })
        .collect();

    for _ in 0..config.max_iterations {
        let mut grid: Vec<Vec<WeightedAcc>> = (0..n_levels)
            .map(|_| {
                schema
                    .kinds()
                    .iter()
                    .map(|&k| WeightedAcc::new(k))
                    .collect()
            })
            .collect();
        let table = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(&model, view, parallel.threads)?
        } else {
            EmissionTable::build(&model, view)
        };
        InvariantCtx::new().check_emission_table(&table)?;
        let mut evidence = 0.0;

        for wave_start in (0..n_chunks).step_by(n_workers.max(1)) {
            let wave_len = n_workers.min(n_chunks - wave_start);
            let outcomes: Vec<Result<EmChunkOutcome>> = if wave_len == 1 {
                vec![process_chunk_em(
                    source,
                    &table,
                    n_levels,
                    wave_start,
                    &mut states[0],
                )]
            } else {
                let wave_states = &mut states[..wave_len];
                let mut joined = Vec::with_capacity(wave_len);
                std::thread::scope(|scope| {
                    let table = &table;
                    let handles: Vec<_> = wave_states
                        .iter_mut()
                        .enumerate()
                        .map(|(w, state)| {
                            scope.spawn(move || {
                                process_chunk_em(source, table, n_levels, wave_start + w, state)
                            })
                        })
                        .collect();
                    for handle in handles {
                        joined.push(handle.join().unwrap_or(Err(CoreError::WorkerPanicked {
                            step: "chunked forward-backward",
                        })));
                    }
                });
                joined
            };
            // Sequential apply in chunk order: evidence folds in user
            // order, accumulator pushes in global action order — exactly
            // the from-scratch loop's operation sequence.
            for outcome in outcomes {
                let outcome = outcome?;
                for &ev in &outcome.user_evidences {
                    evidence += ev;
                }
                for (item, gamma) in outcome.items.iter().zip(outcome.gammas.chunks(n_levels)) {
                    let features = view.item_features(*item);
                    for (s, &weight) in gamma.iter().enumerate() {
                        if weight <= 0.0 {
                            continue;
                        }
                        for (acc, value) in grid[s].iter_mut().zip(features) {
                            acc.push(value, weight)?;
                        }
                    }
                }
            }
        }
        trace.push(evidence);

        let cells: Vec<Vec<FeatureDistribution>> = grid
            .iter()
            .map(|row| row.iter().map(|acc| acc.fit(config.lambda)).collect())
            .collect::<Result<_>>()?;
        model = SkillModel::new(schema.clone(), n_levels, cells)?;

        if trace.len() >= 2 {
            let prev = trace[trace.len() - 2];
            let curr = trace[trace.len() - 1];
            if (curr - prev).abs() <= config.tolerance * prev.abs().max(1.0) {
                converged = true;
                break;
            }
        }
    }
    Ok(EmResult {
        model,
        evidence_trace: trace,
        converged,
    })
}

/// Streams one hard decode of `source` under `model`, returning the
/// per-level action counts and user-order total log-likelihood without
/// ever materializing corpus-sized assignments.
pub fn level_histogram_chunked<S: ChunkSource + ?Sized>(
    source: &S,
    model: &SkillModel,
    parallel: &ParallelConfig,
) -> Result<(Vec<u64>, f64)> {
    parallel.validate()?;
    let view = source.item_view();
    let table = if parallel.users && parallel.threads > 1 {
        EmissionTable::build_parallel(model, view, parallel.threads)?
    } else {
        EmissionTable::build(model, view)
    };
    crate::invariants::InvariantCtx::new().check_emission_table(&table)?;
    let pass = run_assignment_pass(
        source,
        &table,
        PrevPass::None,
        model.n_levels(),
        parallel,
        false,
        false,
    )?;
    Ok((pass.histogram, pass.total_ll))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureValue};

    fn small_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let sequences = (0..5u32)
            .map(|u| {
                let actions = (0..4 + u as i64)
                    .map(|t| Action::new(t, u, (t % 2) as ItemId))
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn zero_chunk_size_rejected() {
        let ds = small_dataset();
        assert!(matches!(
            DatasetChunks::new(&ds, 0),
            Err(CoreError::InvalidChunkSize { requested: 0 })
        ));
        assert!(matches!(
            ChunkedDataset::from_dataset(&ds, 0),
            Err(CoreError::InvalidChunkSize { requested: 0 })
        ));
    }

    #[test]
    fn chunk_counts_cover_all_users() {
        let ds = small_dataset();
        for chunk_size in 1..=6 {
            let chunks = DatasetChunks::new(&ds, chunk_size).unwrap();
            assert_eq!(chunks.n_chunks(), ds.n_users().div_ceil(chunk_size));
            let mut seen_users = 0;
            let mut seen_actions = 0;
            let mut buf = DatasetChunk::new();
            for i in 0..chunks.n_chunks() {
                chunks.load_chunk(i, &mut buf).unwrap();
                assert_eq!(buf.index(), i);
                assert_eq!(buf.user_offset(), i * chunk_size);
                seen_users += buf.n_users();
                seen_actions += buf.n_actions();
            }
            assert_eq!(seen_users, ds.n_users());
            assert_eq!(seen_actions, ds.n_actions());
        }
    }

    #[test]
    fn adapter_and_owned_layouts_agree() {
        let ds = small_dataset();
        let adapter = DatasetChunks::new(&ds, 2).unwrap();
        let owned = ChunkedDataset::from_dataset(&ds, 2).unwrap();
        let mut a = DatasetChunk::new();
        let mut b = DatasetChunk::new();
        for i in 0..adapter.n_chunks() {
            adapter.load_chunk(i, &mut a).unwrap();
            owned.load_chunk(i, &mut b).unwrap();
            assert_eq!(a.users(), b.users());
            assert_eq!(a.items(), b.items());
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.times, b.times);
        }
    }

    #[test]
    fn materialize_round_trips() {
        let ds = small_dataset();
        for chunk_size in [1, 2, 5, 16] {
            let owned = ChunkedDataset::from_dataset(&ds, chunk_size).unwrap();
            let back = materialize(&owned).unwrap();
            assert_eq!(back.n_users(), ds.n_users());
            assert_eq!(back.n_actions(), ds.n_actions());
            for (s1, s2) in ds.sequences().iter().zip(back.sequences()) {
                assert_eq!(s1, s2);
            }
        }
    }

    #[test]
    fn out_of_range_chunk_index_is_typed_error() {
        let ds = small_dataset();
        let chunks = DatasetChunks::new(&ds, 2).unwrap();
        let mut buf = DatasetChunk::new();
        assert!(matches!(
            chunks.load_chunk(99, &mut buf),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    /// Richer dataset for trainer cross-checks: 3 features (categorical,
    /// gamma-modeled positive, count), 6 items, 12 users with staggered
    /// lengths so init both includes and excludes users.
    fn trainer_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 3 },
            FeatureKind::Positive {
                model: crate::feature::PositiveModel::Gamma,
            },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..6u32)
            .map(|i| {
                vec![
                    FeatureValue::Categorical(i % 3),
                    FeatureValue::Real(0.5 + i as f64),
                    FeatureValue::Count(u64::from(i) * 2 + 1),
                ]
            })
            .collect();
        let sequences = (0..12u32)
            .map(|u| {
                let len = 6 + (u as i64 % 5) * 3;
                let actions = (0..len)
                    .map(|t| {
                        let item = ((t as u32 + u) * 7 + t as u32 / 3) % 6;
                        Action::new(t * (1 + i64::from(u % 3)), u, item)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    fn train_cfg() -> crate::train::TrainConfig {
        crate::train::TrainConfig::new(3)
            .with_min_init_actions(8)
            .with_max_iterations(6)
            .with_lambda(0.05)
    }

    #[test]
    fn chunked_init_matches_in_memory() {
        let ds = trainer_dataset();
        let expect = crate::init::initialize_model(&ds, 3, 8, 0.05).unwrap();
        for chunk_size in [1, 3, 64] {
            let chunks = DatasetChunks::new(&ds, chunk_size).unwrap();
            let got = initialize_model_chunked(&chunks, 3, 8, 0.05).unwrap();
            assert_eq!(got, expect, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn chunked_init_error_cases_match() {
        let ds = trainer_dataset();
        let chunks = DatasetChunks::new(&ds, 4).unwrap();
        assert!(matches!(
            initialize_model_chunked(&chunks, 0, 1, 0.05),
            Err(CoreError::InvalidSkillCount { requested: 0 })
        ));
        assert_eq!(
            initialize_model_chunked(&chunks, 3, 10_000, 0.05).unwrap_err(),
            CoreError::NoInitializationUsers { threshold: 10_000 }
        );
    }

    #[test]
    fn chunked_hard_training_is_bitwise_identical() {
        let ds = trainer_dataset();
        let config = train_cfg();
        let expect =
            crate::train::train_with_parallelism(&ds, &config, &ParallelConfig::sequential())
                .unwrap();
        for chunk_size in [1, 4, 64] {
            for threads in [1, 3] {
                for storage in [AssignmentStorage::InMemory, AssignmentStorage::Recompute] {
                    let parallel = if threads == 1 {
                        ParallelConfig::sequential()
                    } else {
                        ParallelConfig::all(threads)
                    };
                    let chunks = DatasetChunks::new(&ds, chunk_size).unwrap();
                    let got = train_chunked(&chunks, &config, &parallel, storage).unwrap();
                    let tag = format!("chunk_size={chunk_size} threads={threads} {storage:?}");
                    assert_eq!(got.model, expect.model, "{tag}");
                    assert_eq!(got.log_likelihood, expect.log_likelihood, "{tag}");
                    assert_eq!(got.converged, expect.converged, "{tag}");
                    assert_eq!(got.trace.len(), expect.trace.len(), "{tag}");
                    for (a, b) in got.trace.iter().zip(&expect.trace) {
                        assert_eq!(a.iteration, b.iteration, "{tag}");
                        assert_eq!(a.log_likelihood, b.log_likelihood, "{tag}");
                        assert_eq!(a.n_changed, b.n_changed, "{tag}");
                    }
                    let histogram: Vec<u64> = expect
                        .assignments
                        .level_histogram(3)
                        .iter()
                        .map(|&c| c as u64)
                        .collect();
                    assert_eq!(got.level_histogram, histogram, "{tag}");
                    assert_eq!(got.n_users, ds.n_users(), "{tag}");
                    assert_eq!(got.n_actions, ds.n_actions(), "{tag}");
                }
            }
        }
    }

    #[test]
    fn chunked_em_training_is_bitwise_identical() {
        let ds = trainer_dataset();
        let initial = crate::init::initialize_model(&ds, 3, 8, 0.05).unwrap();
        let transitions = crate::transition::TransitionModel::uninformative(3).unwrap();
        let em_cfg = EmConfig::new(initial, transitions)
            .with_lambda(0.05)
            .with_max_iterations(5);
        let expect = crate::em::train_em_with_parallelism(
            &ds,
            &em_cfg,
            &ParallelConfig::sequential().with_incremental(false),
        )
        .unwrap();
        for chunk_size in [1, 5, 64] {
            for threads in [1, 3] {
                let parallel = if threads == 1 {
                    ParallelConfig::sequential()
                } else {
                    ParallelConfig::all(threads)
                };
                let chunks = DatasetChunks::new(&ds, chunk_size).unwrap();
                let got = train_em_chunked(&chunks, &em_cfg, &parallel).unwrap();
                let tag = format!("chunk_size={chunk_size} threads={threads}");
                assert_eq!(got.model, expect.model, "{tag}");
                assert_eq!(got.evidence_trace, expect.evidence_trace, "{tag}");
                assert_eq!(got.converged, expect.converged, "{tag}");
            }
        }
    }

    #[test]
    fn assign_chunked_matches_in_memory_decode() {
        let ds = trainer_dataset();
        let config = train_cfg();
        let result =
            crate::train::train_with_parallelism(&ds, &config, &ParallelConfig::sequential())
                .unwrap();
        let chunks = DatasetChunks::new(&ds, 3).unwrap();
        let (assignments, ll) =
            assign_chunked(&chunks, &result.model, &ParallelConfig::sequential()).unwrap();
        assert_eq!(assignments, result.assignments);
        assert_eq!(ll, result.log_likelihood);
        let (histogram, hll) =
            level_histogram_chunked(&chunks, &result.model, &ParallelConfig::sequential()).unwrap();
        assert_eq!(hll, ll);
        let total: u64 = histogram.iter().sum();
        assert_eq!(total as usize, ds.n_actions());
    }

    #[test]
    fn trainer_builder_dispatches_chunked_modes() {
        let ds = trainer_dataset();
        let chunks = DatasetChunks::new(&ds, 4).unwrap();
        let hard = crate::train::Trainer::from_config(train_cfg())
            .fit_chunked(&chunks, AssignmentStorage::Recompute)
            .unwrap();
        assert_eq!(hard.n_users, ds.n_users());
        let em = crate::train::Trainer::from_config(train_cfg())
            .em()
            .fit_chunked(&chunks, AssignmentStorage::InMemory)
            .unwrap();
        assert_eq!(
            em.level_histogram.iter().sum::<u64>() as usize,
            ds.n_actions()
        );
        // The EM decode must agree with fitting in-memory EM then hard
        // decoding (both close with the same table DP).
        let in_mem = crate::train::Trainer::from_config(train_cfg())
            .with_parallelism(ParallelConfig::sequential().with_incremental(false))
            .em()
            .fit(&ds)
            .unwrap();
        assert_eq!(em.model, in_mem.model);
        assert_eq!(em.log_likelihood, in_mem.log_likelihood);
    }

    #[test]
    fn empty_source_is_typed_error() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let items = vec![vec![FeatureValue::Count(1)]];
        let ds = Dataset::new(schema, items, vec![]).unwrap();
        let chunks = DatasetChunks::new(&ds, 4).unwrap();
        assert!(matches!(
            train_chunked(
                &chunks,
                &train_cfg(),
                &ParallelConfig::sequential(),
                AssignmentStorage::InMemory
            ),
            Err(CoreError::EmptyDataset)
        ));
    }

    #[test]
    fn push_action_rejects_backwards_time() {
        let mut chunk = DatasetChunk::new();
        chunk.reset(0, 0);
        chunk.begin_user(3);
        chunk.push_action(5, 0).unwrap();
        assert!(matches!(
            chunk.push_action(2, 0),
            Err(CoreError::UnsortedSequence { user: 3, .. })
        ));
        // A new user may start earlier than the previous user ended.
        chunk.begin_user(4);
        chunk.push_action(0, 1).unwrap();
        assert_eq!(chunk.user_items(1), &[1]);
    }
}
