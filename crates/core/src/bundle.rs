//! Versioned model artifacts: a [`ModelBundle`] packages a trained model
//! with its assignments, training configuration, and provenance metadata
//! into one self-describing JSON document, so models written by one
//! version of the library can be validated (and rejected with a clear
//! error) by another. A [`SessionBundle`] does the same for a live
//! [`StreamingSession`], carrying the dataset so ingestion can continue
//! in a later process.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::parallel::ParallelConfig;
use crate::streaming::{RefitPolicy, StreamingSession};
use crate::train::{TrainConfig, TrainResult};
use crate::types::{Dataset, SkillAssignments};

/// The bundle format version this build writes.
pub const BUNDLE_VERSION: u32 = 1;

/// A self-describing trained-model artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format version (see [`BUNDLE_VERSION`]).
    pub version: u32,
    /// The trained skill model.
    pub model: SkillModel,
    /// Hard assignments on the training data (optional — large).
    pub assignments: Option<SkillAssignments>,
    /// The configuration used to train.
    pub config: TrainConfig,
    /// Final training log-likelihood.
    pub log_likelihood: f64,
    /// Number of training iterations run.
    pub iterations: usize,
    /// Free-form provenance note (dataset name, seed, …).
    pub note: String,
}

impl ModelBundle {
    /// Packages a training result.
    pub fn from_result(result: &TrainResult, config: TrainConfig, note: &str) -> Self {
        Self {
            version: BUNDLE_VERSION,
            model: result.model.clone(),
            assignments: Some(result.assignments.clone()),
            config,
            log_likelihood: result.log_likelihood,
            iterations: result.trace.len(),
            note: note.to_string(),
        }
    }

    /// Drops the (potentially large) assignments for a compact artifact.
    pub fn without_assignments(mut self) -> Self {
        self.assignments = None;
        self
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|_| CoreError::DegenerateFit {
            distribution: "bundle",
            reason: "serialization failure",
        })
    }

    /// Parses and validates a JSON bundle.
    ///
    /// Rejects future format versions and internally inconsistent bundles
    /// (model/config level mismatch, non-monotone assignments).
    pub fn from_json(json: &str) -> Result<Self> {
        let bundle: ModelBundle =
            serde_json::from_str(json).map_err(|_| CoreError::DegenerateFit {
                distribution: "bundle",
                reason: "malformed JSON or schema mismatch",
            })?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Internal consistency checks.
    pub fn validate(&self) -> Result<()> {
        if self.version == 0 || self.version > BUNDLE_VERSION {
            return Err(CoreError::NoConvergence {
                routine: "bundle version check",
                iterations: self.version as usize,
            });
        }
        if self.model.n_levels() != self.config.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "bundle model levels vs config",
                left: self.model.n_levels(),
                right: self.config.n_levels,
            });
        }
        if let Some(a) = &self.assignments {
            if !a.is_monotone() {
                return Err(CoreError::UnsortedSequence {
                    user: 0,
                    position: 0,
                });
            }
            let max_level = a.iter().map(|(_, _, s)| s).max().unwrap_or(1) as usize;
            if max_level > self.model.n_levels() {
                return Err(CoreError::InvalidSkillCount {
                    requested: max_level,
                });
            }
        }
        Ok(())
    }
}

/// The session bundle format version this build writes.
pub const SESSION_BUNDLE_VERSION: u32 = 1;

/// A self-describing serialized [`StreamingSession`].
///
/// Unlike [`ModelBundle`], a session bundle carries the full dataset —
/// the session's derived state (statistics grid, emission table, online
/// trackers) is *not* stored; [`SessionBundle::resume`] rebuilds it
/// exactly from the dataset and assignments. A session snapshotted with
/// pending (un-refit) actions therefore comes back freshly refit: the
/// actions themselves are never lost, only the deferral.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionBundle {
    /// Format version (see [`SESSION_BUNDLE_VERSION`]).
    pub version: u32,
    /// The full dataset, including every ingested action.
    pub dataset: Dataset,
    /// The model at snapshot time (provenance; resume refits from data).
    pub model: SkillModel,
    /// Committed monotone assignments over the dataset.
    pub assignments: SkillAssignments,
    /// Training hyperparameters (`S`, `λ`, …).
    pub config: TrainConfig,
    /// Parallelism configuration to resume with.
    pub parallel: ParallelConfig,
    /// Refit policy to resume with.
    pub policy: RefitPolicy,
    /// Free-form provenance note.
    pub note: String,
}

impl SessionBundle {
    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|_| CoreError::DegenerateFit {
            distribution: "session bundle",
            reason: "serialization failure",
        })
    }

    /// Parses and validates a JSON session bundle.
    pub fn from_json(json: &str) -> Result<Self> {
        let bundle: SessionBundle =
            serde_json::from_str(json).map_err(|_| CoreError::DegenerateFit {
                distribution: "session bundle",
                reason: "malformed JSON or schema mismatch",
            })?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Internal consistency checks: version, model/config level agreement,
    /// monotone assignments covering exactly the dataset's users.
    pub fn validate(&self) -> Result<()> {
        if self.version == 0 || self.version > SESSION_BUNDLE_VERSION {
            return Err(CoreError::NoConvergence {
                routine: "session bundle version check",
                iterations: self.version as usize,
            });
        }
        if self.model.n_levels() != self.config.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "session bundle model levels vs config",
                left: self.model.n_levels(),
                right: self.config.n_levels,
            });
        }
        if self.assignments.per_user.len() != self.dataset.n_users() {
            return Err(CoreError::LengthMismatch {
                context: "session bundle assignments vs dataset users",
                left: self.assignments.per_user.len(),
                right: self.dataset.n_users(),
            });
        }
        if !self.assignments.is_monotone() {
            return Err(CoreError::UnsortedSequence {
                user: 0,
                position: 0,
            });
        }
        Ok(())
    }

    /// Reconstructs a live [`StreamingSession`] from this bundle.
    pub fn resume(self) -> Result<StreamingSession> {
        self.validate()?;
        StreamingSession::new(
            self.dataset,
            self.assignments,
            self.config,
            self.parallel,
            self.policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::train::train;
    use crate::types::{Action, ActionSequence, Dataset};

    fn trained() -> (TrainResult, TrainConfig) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let sequences: Vec<ActionSequence> = (0..4u32)
            .map(|u| {
                ActionSequence::new(
                    u,
                    (0..8)
                        .map(|t| Action::new(t, u, u32::from(t >= 4)))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let ds = Dataset::new(schema, items, sequences).unwrap();
        let config = TrainConfig::new(2).with_min_init_actions(4);
        (train(&ds, &config).unwrap(), config)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (result, config) = trained();
        let bundle = ModelBundle::from_result(&result, config, "test run");
        let json = bundle.to_json().unwrap();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back.version, BUNDLE_VERSION);
        assert_eq!(back.model, result.model);
        assert_eq!(back.assignments.as_ref().unwrap(), &result.assignments);
        assert_eq!(back.note, "test run");
        assert_eq!(back.iterations, result.trace.len());
    }

    #[test]
    fn without_assignments_is_compact_and_valid() {
        let (result, config) = trained();
        let full = ModelBundle::from_result(&result, config, "x");
        let slim = full.clone().without_assignments();
        assert!(slim.to_json().unwrap().len() < full.to_json().unwrap().len());
        assert!(ModelBundle::from_json(&slim.to_json().unwrap()).is_ok());
    }

    #[test]
    fn future_version_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        bundle.version = BUNDLE_VERSION + 1;
        let json = serde_json::to_string(&bundle).unwrap();
        assert!(ModelBundle::from_json(&json).is_err());
    }

    #[test]
    fn inconsistent_levels_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        bundle.config.n_levels = 7;
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn nonmonotone_assignments_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        if let Some(a) = &mut bundle.assignments {
            if let Some(seq) = a.per_user.first_mut() {
                if seq.len() >= 2 {
                    seq[0] = 2;
                    seq[1] = 1;
                }
            }
        }
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ModelBundle::from_json("{not json").is_err());
        assert!(ModelBundle::from_json("{\"version\": 1}").is_err());
    }

    fn session_dataset() -> Dataset {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let sequences: Vec<ActionSequence> = (0..4u32)
            .map(|u| {
                ActionSequence::new(
                    u,
                    (0..8)
                        .map(|t| Action::new(t, u, u32::from(t >= 4)))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn session_bundle_roundtrip_resumes_identical_session() {
        let ds = session_dataset();
        let config = TrainConfig::new(2).with_min_init_actions(4);
        let result = crate::train::train(&ds, &config).unwrap();
        let mut session = StreamingSession::resume(
            ds,
            &result,
            config,
            ParallelConfig::sequential(),
            RefitPolicy::EveryBatch,
        )
        .unwrap();
        session.ingest(crate::types::Action::new(8, 0, 1)).unwrap();

        let bundle = session.snapshot("resume test");
        let json = bundle.to_json().unwrap();
        let back = SessionBundle::from_json(&json).unwrap();
        assert_eq!(back.note, "resume test");
        let resumed = back.resume().unwrap();
        assert_eq!(resumed.assignments(), session.assignments());
        assert_eq!(resumed.model(), session.model());
        assert_eq!(resumed.dataset().n_actions(), session.dataset().n_actions());
        // Lifetime counters are per-process, not persisted.
        assert_eq!(resumed.total_ingested(), 0);
    }

    #[test]
    fn session_bundle_with_pending_actions_resumes_refit() {
        let ds = session_dataset();
        let config = TrainConfig::new(2).with_min_init_actions(4);
        let result = crate::train::train(&ds, &config).unwrap();
        let mut session = StreamingSession::resume(
            ds,
            &result,
            config,
            ParallelConfig::sequential(),
            RefitPolicy::Manual,
        )
        .unwrap();
        session.ingest(crate::types::Action::new(8, 1, 1)).unwrap();
        assert_eq!(session.pending_actions(), 1);

        let mut resumed = session.snapshot("pending").resume().unwrap();
        // Resume rebuilds from data + assignments: nothing is pending, and
        // the model already reflects the ingested action.
        assert_eq!(resumed.pending_actions(), 0);
        assert_eq!(resumed.refit().unwrap(), 0);
    }

    #[test]
    fn session_bundle_rejects_inconsistencies() {
        let ds = session_dataset();
        let config = TrainConfig::new(2).with_min_init_actions(4);
        let result = crate::train::train(&ds, &config).unwrap();
        let session = StreamingSession::resume(
            ds,
            &result,
            config,
            ParallelConfig::sequential(),
            RefitPolicy::EveryBatch,
        )
        .unwrap();
        let bundle = session.snapshot("x");

        let mut future = bundle.clone();
        future.version = SESSION_BUNDLE_VERSION + 1;
        assert!(future.validate().is_err());

        let mut wrong_levels = bundle.clone();
        wrong_levels.config.n_levels = 5;
        assert!(wrong_levels.validate().is_err());

        let mut missing_user = bundle.clone();
        missing_user.assignments.per_user.pop();
        assert!(missing_user.validate().is_err());

        let mut nonmonotone = bundle;
        nonmonotone.assignments.per_user[0][0] = 2;
        nonmonotone.assignments.per_user[0][1] = 1;
        assert!(nonmonotone.validate().is_err());
    }
}
