//! Versioned model artifacts: a [`ModelBundle`] packages a trained model
//! with its assignments, training configuration, and provenance metadata
//! into one self-describing JSON document, so models written by one
//! version of the library can be validated (and rejected with a clear
//! error) by another.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::train::{TrainConfig, TrainResult};
use crate::types::SkillAssignments;

/// The bundle format version this build writes.
pub const BUNDLE_VERSION: u32 = 1;

/// A self-describing trained-model artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Format version (see [`BUNDLE_VERSION`]).
    pub version: u32,
    /// The trained skill model.
    pub model: SkillModel,
    /// Hard assignments on the training data (optional — large).
    pub assignments: Option<SkillAssignments>,
    /// The configuration used to train.
    pub config: TrainConfig,
    /// Final training log-likelihood.
    pub log_likelihood: f64,
    /// Number of training iterations run.
    pub iterations: usize,
    /// Free-form provenance note (dataset name, seed, …).
    pub note: String,
}

impl ModelBundle {
    /// Packages a training result.
    pub fn from_result(result: &TrainResult, config: TrainConfig, note: &str) -> Self {
        Self {
            version: BUNDLE_VERSION,
            model: result.model.clone(),
            assignments: Some(result.assignments.clone()),
            config,
            log_likelihood: result.log_likelihood,
            iterations: result.trace.len(),
            note: note.to_string(),
        }
    }

    /// Drops the (potentially large) assignments for a compact artifact.
    pub fn without_assignments(mut self) -> Self {
        self.assignments = None;
        self
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|_| CoreError::DegenerateFit {
            distribution: "bundle",
            reason: "serialization failure",
        })
    }

    /// Parses and validates a JSON bundle.
    ///
    /// Rejects future format versions and internally inconsistent bundles
    /// (model/config level mismatch, non-monotone assignments).
    pub fn from_json(json: &str) -> Result<Self> {
        let bundle: ModelBundle =
            serde_json::from_str(json).map_err(|_| CoreError::DegenerateFit {
                distribution: "bundle",
                reason: "malformed JSON or schema mismatch",
            })?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Internal consistency checks.
    pub fn validate(&self) -> Result<()> {
        if self.version == 0 || self.version > BUNDLE_VERSION {
            return Err(CoreError::NoConvergence {
                routine: "bundle version check",
                iterations: self.version as usize,
            });
        }
        if self.model.n_levels() != self.config.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "bundle model levels vs config",
                left: self.model.n_levels(),
                right: self.config.n_levels,
            });
        }
        if let Some(a) = &self.assignments {
            if !a.is_monotone() {
                return Err(CoreError::UnsortedSequence {
                    user: 0,
                    position: 0,
                });
            }
            let max_level = a.iter().map(|(_, _, s)| s).max().unwrap_or(1) as usize;
            if max_level > self.model.n_levels() {
                return Err(CoreError::InvalidSkillCount {
                    requested: max_level,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::train::train;
    use crate::types::{Action, ActionSequence, Dataset};

    fn trained() -> (TrainResult, TrainConfig) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let sequences: Vec<ActionSequence> = (0..4u32)
            .map(|u| {
                ActionSequence::new(
                    u,
                    (0..8)
                        .map(|t| Action::new(t, u, u32::from(t >= 4)))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let ds = Dataset::new(schema, items, sequences).unwrap();
        let config = TrainConfig::new(2).with_min_init_actions(4);
        (train(&ds, &config).unwrap(), config)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (result, config) = trained();
        let bundle = ModelBundle::from_result(&result, config, "test run");
        let json = bundle.to_json().unwrap();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back.version, BUNDLE_VERSION);
        assert_eq!(back.model, result.model);
        assert_eq!(back.assignments.as_ref().unwrap(), &result.assignments);
        assert_eq!(back.note, "test run");
        assert_eq!(back.iterations, result.trace.len());
    }

    #[test]
    fn without_assignments_is_compact_and_valid() {
        let (result, config) = trained();
        let full = ModelBundle::from_result(&result, config, "x");
        let slim = full.clone().without_assignments();
        assert!(slim.to_json().unwrap().len() < full.to_json().unwrap().len());
        assert!(ModelBundle::from_json(&slim.to_json().unwrap()).is_ok());
    }

    #[test]
    fn future_version_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        bundle.version = BUNDLE_VERSION + 1;
        let json = serde_json::to_string(&bundle).unwrap();
        assert!(ModelBundle::from_json(&json).is_err());
    }

    #[test]
    fn inconsistent_levels_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        bundle.config.n_levels = 7;
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn nonmonotone_assignments_rejected() {
        let (result, config) = trained();
        let mut bundle = ModelBundle::from_result(&result, config, "x");
        if let Some(a) = &mut bundle.assignments {
            if let Some(seq) = a.per_user.first_mut() {
                if seq.len() >= 2 {
                    seq[0] = 2;
                    seq[1] = 1;
                }
            }
        }
        assert!(bundle.validate().is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ModelBundle::from_json("{not json").is_err());
        assert!(ModelBundle::from_json("{\"version\": 1}").is_err());
    }
}
