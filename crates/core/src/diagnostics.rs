//! Model diagnostics: which features actually carry skill signal, and how
//! healthy a training run was.
//!
//! - [`feature_informativeness`] — for each feature, the mean symmetric KL
//!   divergence between its per-level distributions. A feature whose
//!   distributions barely differ across levels (≈0) contributes nothing to
//!   the DP; the ranking quantifies the paper's feature-ablation story
//!   (Table VI) without retraining.
//! - [`level_occupancy_entropy`] — entropy of the assignment histogram;
//!   near-zero means the model collapsed onto few levels.
//! - [`convergence_summary`] — iterations, total LL gain, and whether the
//!   trace was monotone.

use crate::dist::FeatureDistribution;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::train::IterationStats;
use crate::types::SkillAssignments;

/// Symmetric KL divergence between two feature distributions of the same
/// family, `0.5·KL(P‖Q) + 0.5·KL(Q‖P)`.
///
/// Closed forms for each family; mixed families are an error.
pub fn symmetric_kl(p: &FeatureDistribution, q: &FeatureDistribution) -> Result<f64> {
    match (p, q) {
        (FeatureDistribution::Categorical(a), FeatureDistribution::Categorical(b)) => {
            if a.cardinality() != b.cardinality() {
                return Err(CoreError::LengthMismatch {
                    context: "categorical KL cardinalities",
                    left: a.cardinality() as usize,
                    right: b.cardinality() as usize,
                });
            }
            let mut kl_pq = 0.0;
            let mut kl_qp = 0.0;
            for c in 0..a.cardinality() {
                let (pa, pb) = (a.prob(c), b.prob(c));
                if pa > 0.0 && pb > 0.0 {
                    kl_pq += pa * (pa / pb).ln();
                    kl_qp += pb * (pb / pa).ln();
                } else if pa > 0.0 || pb > 0.0 {
                    // Disjoint support: unbounded divergence; report large.
                    return Ok(f64::INFINITY);
                }
            }
            Ok(0.5 * (kl_pq + kl_qp))
        }
        (FeatureDistribution::Poisson(a), FeatureDistribution::Poisson(b)) => {
            // KL(Poi(λa) ‖ Poi(λb)) = λa ln(λa/λb) − λa + λb.
            let (la, lb) = (a.rate(), b.rate());
            let kl_ab = la * (la / lb).ln() - la + lb;
            let kl_ba = lb * (lb / la).ln() - lb + la;
            Ok(0.5 * (kl_ab + kl_ba))
        }
        (FeatureDistribution::Gamma(a), FeatureDistribution::Gamma(b)) => {
            // KL(Γ(k₁,θ₁) ‖ Γ(k₂,θ₂)) closed form via digamma/lnΓ.
            use crate::dist::special::{digamma, ln_gamma};
            let kl = |k1: f64, t1: f64, k2: f64, t2: f64| {
                (k1 - k2) * digamma(k1) - ln_gamma(k1)
                    + ln_gamma(k2)
                    + k2 * (t2 / t1).ln()
                    + k1 * (t1 - t2) / t2
            };
            let kl_ab = kl(a.shape(), a.scale(), b.shape(), b.scale());
            let kl_ba = kl(b.shape(), b.scale(), a.shape(), a.scale());
            Ok(0.5 * (kl_ab + kl_ba))
        }
        (FeatureDistribution::LogNormal(a), FeatureDistribution::LogNormal(b)) => {
            // KL between the underlying normals.
            let kl = |m1: f64, s1: f64, m2: f64, s2: f64| {
                (s2 / s1).ln() + (s1 * s1 + (m1 - m2) * (m1 - m2)) / (2.0 * s2 * s2) - 0.5
            };
            let kl_ab = kl(a.mu(), a.sigma(), b.mu(), b.sigma());
            let kl_ba = kl(b.mu(), b.sigma(), a.mu(), a.sigma());
            Ok(0.5 * (kl_ab + kl_ba))
        }
        _ => Err(CoreError::FeatureKindMismatch {
            feature: usize::MAX,
            expected: "matching distribution families",
            got: "mixed families",
        }),
    }
}

/// Informativeness of one feature: the mean symmetric KL over all pairs of
/// adjacent skill levels. Zero ⇒ the feature cannot separate levels.
pub fn feature_informativeness(model: &SkillModel, feature: usize) -> Result<f64> {
    let s_max = model.n_levels();
    if s_max < 2 {
        return Ok(0.0);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for s in 1..s_max {
        let a = model.cell(s as u8, feature)?;
        let b = model.cell((s + 1) as u8, feature)?;
        let kl = symmetric_kl(a, b)?;
        if kl.is_finite() {
            total += kl;
            count += 1;
        }
    }
    Ok(if count > 0 {
        total / count as f64
    } else {
        f64::INFINITY
    })
}

/// Informativeness of every feature, as `(feature index, score)` sorted
/// descending — a no-retrain ranking of which features drive the model.
pub fn rank_features(model: &SkillModel) -> Result<Vec<(usize, f64)>> {
    let mut scores: Vec<(usize, f64)> = (0..model.n_features())
        .map(|f| Ok((f, feature_informativeness(model, f)?)))
        .collect::<Result<_>>()?;
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(scores)
}

/// Shannon entropy (nats) of the level-occupancy distribution. Low entropy
/// = assignments collapsed onto few levels.
pub fn level_occupancy_entropy(assignments: &SkillAssignments, n_levels: usize) -> f64 {
    let hist = assignments.level_histogram(n_levels);
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    hist.iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.ln()
        })
        .sum()
}

/// Summary of a training trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Number of iterations.
    pub iterations: usize,
    /// Objective gain from the first to the last iteration.
    pub total_gain: f64,
    /// Whether the trace was monotone non-decreasing (up to tolerance).
    pub monotone: bool,
    /// Assignment churn at the final iteration (0 = fully stable).
    pub final_churn: usize,
}

/// Summarizes a training trace (see [`crate::train::TrainResult::trace`]).
pub fn convergence_summary(trace: &[IterationStats]) -> ConvergenceSummary {
    let iterations = trace.len();
    let total_gain = match (trace.first(), trace.last()) {
        (Some(a), Some(b)) => b.log_likelihood - a.log_likelihood,
        _ => 0.0,
    };
    let monotone = trace
        .windows(2)
        .all(|w| w[1].log_likelihood >= w[0].log_likelihood - 1e-6);
    let final_churn = trace.last().and_then(|s| s.n_changed).unwrap_or(0);
    ConvergenceSummary {
        iterations,
        total_gain,
        monotone,
        final_churn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, Gamma, LogNormal, Poisson};
    use crate::feature::{FeatureKind, FeatureSchema};

    #[test]
    fn kl_zero_for_identical_distributions() {
        let c = FeatureDistribution::Categorical(Categorical::from_probs(vec![0.3, 0.7]).unwrap());
        assert!(symmetric_kl(&c, &c).unwrap().abs() < 1e-12);
        let p = FeatureDistribution::Poisson(Poisson::new(4.0).unwrap());
        assert!(symmetric_kl(&p, &p).unwrap().abs() < 1e-12);
        let g = FeatureDistribution::Gamma(Gamma::new(2.0, 1.5).unwrap());
        assert!(symmetric_kl(&g, &g).unwrap().abs() < 1e-10);
        let l = FeatureDistribution::LogNormal(LogNormal::new(0.0, 1.0).unwrap());
        assert!(symmetric_kl(&l, &l).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_positive_and_grows_with_separation() {
        let near = symmetric_kl(
            &FeatureDistribution::Poisson(Poisson::new(4.0).unwrap()),
            &FeatureDistribution::Poisson(Poisson::new(5.0).unwrap()),
        )
        .unwrap();
        let far = symmetric_kl(
            &FeatureDistribution::Poisson(Poisson::new(4.0).unwrap()),
            &FeatureDistribution::Poisson(Poisson::new(12.0).unwrap()),
        )
        .unwrap();
        assert!(near > 0.0);
        assert!(far > near);
    }

    #[test]
    fn kl_gamma_matches_numerical_integration() {
        let a = Gamma::new(2.0, 1.0).unwrap();
        let b = Gamma::new(3.0, 1.5).unwrap();
        // Numerically integrate KL(a‖b) = ∫ p ln(p/q).
        let (lo, hi, n) = (1e-6, 60.0, 400_000);
        let h = (hi - lo) / n as f64;
        let mut kl_ab = 0.0;
        let mut kl_ba = 0.0;
        for i in 0..=n {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            let (pa, pb) = (a.pdf(x), b.pdf(x));
            if pa > 1e-300 && pb > 1e-300 {
                kl_ab += w * pa * (pa / pb).ln();
                kl_ba += w * pb * (pb / pa).ln();
            }
        }
        let numeric = 0.5 * (kl_ab + kl_ba) * h;
        let analytic = symmetric_kl(
            &FeatureDistribution::Gamma(a),
            &FeatureDistribution::Gamma(b),
        )
        .unwrap();
        assert!(
            (numeric - analytic).abs() < 1e-3,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn kl_disjoint_categorical_support_is_infinite() {
        let a = FeatureDistribution::Categorical(Categorical::from_probs(vec![1.0, 0.0]).unwrap());
        let b = FeatureDistribution::Categorical(Categorical::from_probs(vec![0.0, 1.0]).unwrap());
        assert!(symmetric_kl(&a, &b).unwrap().is_infinite());
    }

    #[test]
    fn mixed_families_rejected() {
        let c = FeatureDistribution::Categorical(Categorical::from_probs(vec![0.5, 0.5]).unwrap());
        let p = FeatureDistribution::Poisson(Poisson::new(1.0).unwrap());
        assert!(symmetric_kl(&c, &p).is_err());
    }

    fn two_feature_model(flat_counts: bool) -> SkillModel {
        // Feature 0: informative categorical; feature 1: Poisson that is
        // flat (uninformative) or increasing depending on the flag.
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Count,
        ])
        .unwrap();
        let cells = (0..3)
            .map(|s| {
                let p = 0.1 + 0.4 * s as f64;
                let rate = if flat_counts {
                    5.0
                } else {
                    2.0 + 4.0 * s as f64
                };
                vec![
                    FeatureDistribution::Categorical(
                        Categorical::from_probs(vec![1.0 - p, p]).unwrap(),
                    ),
                    FeatureDistribution::Poisson(Poisson::new(rate).unwrap()),
                ]
            })
            .collect();
        SkillModel::new(schema, 3, cells).unwrap()
    }

    #[test]
    fn informativeness_ranks_features_correctly() {
        let m = two_feature_model(true); // Poisson flat → uninformative
        let ranking = rank_features(&m).unwrap();
        assert_eq!(
            ranking[0].0, 0,
            "categorical should rank first: {ranking:?}"
        );
        assert!(ranking[1].1 < 1e-9, "flat Poisson should score ~0");

        let m2 = two_feature_model(false);
        let score_poisson = feature_informativeness(&m2, 1).unwrap();
        assert!(score_poisson > 0.5, "steep Poisson should be informative");
    }

    #[test]
    fn occupancy_entropy_ranges() {
        let balanced = SkillAssignments {
            per_user: vec![vec![1, 2, 3], vec![1, 2, 3]],
        };
        let collapsed = SkillAssignments {
            per_user: vec![vec![2, 2, 2, 2, 2, 2]],
        };
        let h_bal = level_occupancy_entropy(&balanced, 3);
        let h_col = level_occupancy_entropy(&collapsed, 3);
        assert!((h_bal - 3f64.ln()).abs() < 1e-12);
        assert!(h_col.abs() < 1e-12);
    }

    #[test]
    fn convergence_summary_reads_trace() {
        let trace = vec![
            IterationStats {
                iteration: 1,
                log_likelihood: -100.0,
                n_changed: None,
                seconds: 0.1,
            },
            IterationStats {
                iteration: 2,
                log_likelihood: -90.0,
                n_changed: Some(12),
                seconds: 0.1,
            },
            IterationStats {
                iteration: 3,
                log_likelihood: -89.5,
                n_changed: Some(0),
                seconds: 0.1,
            },
        ];
        let s = convergence_summary(&trace);
        assert_eq!(s.iterations, 3);
        assert!((s.total_gain - 10.5).abs() < 1e-12);
        assert!(s.monotone);
        assert_eq!(s.final_churn, 0);
        let empty = convergence_summary(&[]);
        assert_eq!(empty.iterations, 0);
    }
}
