//! Lock-discipline primitives shared by the serving layer, plus the
//! deterministic schedule-exploration harness (behind the
//! `deterministic-sync` feature).
//!
//! ## The blessed acquisition path
//!
//! Every mutex acquisition in this workspace goes through one of two
//! poison-recovering entry points defined here — [`lock`] for plain
//! `std::sync::Mutex` fields and [`TracedMutex::lock`] for the serving
//! layer's ordered locks. The `raw-lock` lint rule (`xtask concurrency`)
//! rejects bare `.lock().unwrap()` everywhere else, so poison handling
//! and (under `deterministic-sync`) schedule instrumentation cannot be
//! bypassed by accident.
//!
//! Poison recovery is sound for every lock in this workspace because
//! each critical section either performs a single `Vec`/map operation or
//! writes a value that is only published after it is complete; a
//! panicking peer can therefore never leave torn state behind (the
//! individual call sites document their reasoning).
//!
//! ## The deterministic harness
//!
//! With `deterministic-sync` enabled, `explore::Explorer` runs a
//! closure once per *schedule*: spawned threads (`explore::Run::thread`)
//! are driven by a cooperative scheduler that allows exactly one thread
//! to run between *schedule points* (lock acquisitions and epoch
//! publishes). The scheduler enumerates schedules bounded-exhaustively
//! (DFS over the choice tree) or samples them from a seeded RNG, records
//! every acquisition/release/publish event, checks the serving lock
//! protocol at runtime (shard-before-global order, no shard guard across
//! an epoch publish, stale-epoch reads via vector-clock happens-before),
//! and attaches a replayable `explore::Schedule` to every violation.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Acquires a `std::sync::Mutex`, recovering from poisoning.
///
/// This is the single blessed acquisition path for plain mutexes (the
/// `raw-lock` lint rejects `.lock().unwrap()` elsewhere). Callers must
/// ensure their critical sections cannot leave torn state behind on
/// panic — true for every pool/queue in this workspace, where critical
/// sections are single container operations.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identity of an ordered lock in the serving layer's lock hierarchy.
///
/// The required acquisition order is: shards in ascending index order,
/// then the global fitting lock. `explore` assigns ranks accordingly;
/// [`LockId::Named`] locks sit outside the hierarchy and are exempt from
/// order checking (but still participate in deadlock detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockId {
    /// A per-user-shard lock, identified by its shard index.
    Shard(u32),
    /// The global fitting-state lock (always acquired last).
    Global,
    /// An auxiliary lock outside the shard/global hierarchy.
    Named(&'static str),
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockId::Shard(i) => write!(f, "shard[{i}]"),
            LockId::Global => write!(f, "global"),
            LockId::Named(name) => write!(f, "{name}"),
        }
    }
}

/// A mutex that knows its place in the serving lock hierarchy.
///
/// In normal builds this is a zero-overhead wrapper around
/// `std::sync::Mutex` whose [`TracedMutex::lock`] recovers from
/// poisoning exactly like [`lock`]. Under the `deterministic-sync`
/// feature, acquisitions made from threads driven by an
/// `explore::Explorer` become schedule points: the cooperative
/// scheduler decides which thread proceeds, checks the lock-order
/// invariants, and records the event. Threads outside an exploration
/// (including all production use) take the plain path.
#[derive(Debug)]
pub struct TracedMutex<T> {
    id: LockId,
    inner: Mutex<T>,
}

impl<T> TracedMutex<T> {
    /// Wraps `value` in a mutex registered as `id` in the hierarchy.
    pub fn new(id: LockId, value: T) -> Self {
        Self {
            id,
            inner: Mutex::new(value),
        }
    }

    /// This lock's position in the hierarchy.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// Acquires the lock (poison-recovering; see [`lock`]).
    ///
    /// Under an active deterministic exploration this is a schedule
    /// point: the calling thread parks until the scheduler grants it
    /// both the run token and the lock, and the acquisition is checked
    /// against the shard-before-global order.
    pub fn lock(&self) -> TracedGuard<'_, T> {
        #[cfg(feature = "deterministic-sync")]
        let trace = explore::on_acquire(self.id);
        TracedGuard {
            inner: lock(&self.inner),
            #[cfg(feature = "deterministic-sync")]
            id: self.id,
            #[cfg(feature = "deterministic-sync")]
            trace,
        }
    }
}

/// RAII guard for a [`TracedMutex`]; releases the lock (and, under an
/// active exploration, reports the release to the scheduler) on drop.
pub struct TracedGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    #[cfg(feature = "deterministic-sync")]
    id: LockId,
    #[cfg(feature = "deterministic-sync")]
    trace: Option<explore::TraceCtx>,
}

impl<T> std::ops::Deref for TracedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TracedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "deterministic-sync")]
impl<T> Drop for TracedGuard<'_, T> {
    fn drop(&mut self) {
        // Scheduler bookkeeping first, then the field drop releases the
        // real mutex; no other explored thread can run in between, so
        // the two are atomic as far as the exploration is concerned.
        if let Some(ctx) = self.trace.take() {
            explore::on_release(&ctx, self.id);
        }
    }
}

/// The deterministic cooperative scheduler and schedule explorer.
///
/// Only compiled under the `deterministic-sync` feature; see the module
/// docs of [`crate::sync`] for the model. The entry point is
/// [`Explorer`](explore::Explorer).
#[cfg(feature = "deterministic-sync")]
pub mod explore {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::thread::JoinHandle;

    use super::LockId;
    use crate::rng::SplitMix64;

    /// One recorded synchronization event within a single schedule.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Event {
        /// Thread `thread` acquired `lock`.
        Acquire {
            /// Index of the acquiring thread within the run.
            thread: usize,
            /// The acquired lock.
            lock: LockId,
        },
        /// Thread `thread` released `lock`.
        Release {
            /// Index of the releasing thread within the run.
            thread: usize,
            /// The released lock.
            lock: LockId,
        },
        /// Thread `thread` published epoch `epoch` through an `EpochCell`.
        Publish {
            /// Index of the publishing thread within the run.
            thread: usize,
            /// The epoch number after the publish.
            epoch: u64,
        },
        /// Thread `thread` loaded epoch `epoch` from an `EpochCell`.
        EpochLoad {
            /// Index of the loading thread within the run.
            thread: usize,
            /// The observed epoch number.
            epoch: u64,
        },
        /// Thread `thread` took a workspace from a `WorkspacePool`.
        PoolAcquire {
            /// Index of the acquiring thread within the run.
            thread: usize,
        },
        /// Thread `thread` returned a workspace to a `WorkspacePool`.
        PoolRelease {
            /// Index of the releasing thread within the run.
            thread: usize,
        },
    }

    /// A replayable schedule: the RNG seed the run was started with plus
    /// the full sequence of scheduler choices it made. Feeding it back
    /// through [`Explorer::replay`] reproduces the interleaving exactly.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Schedule {
        /// Seed of the run (scrambles random choices past the recorded
        /// prefix; irrelevant when `choices` covers the whole run).
        pub seed: u64,
        /// Index into the runnable-thread set chosen at each schedule
        /// point, in order.
        pub choices: Vec<usize>,
    }

    impl std::fmt::Display for Schedule {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "seed={} choices={:?}", self.seed, self.choices)
        }
    }

    /// An invariant violation observed during one explored schedule.
    #[derive(Debug, Clone)]
    pub struct Violation {
        /// The violated rule (`lock-order`, `lock-across-publish`,
        /// `stale-epoch-read`, or `deadlock`) — same ids as the static
        /// `xtask concurrency` rules where both sides check a rule.
        pub rule: &'static str,
        /// Human-readable description of the violating operation.
        pub detail: String,
        /// Index of the offending thread within the run.
        pub thread: usize,
        /// The complete schedule that produced the violation.
        pub schedule: Schedule,
    }

    impl std::fmt::Display for Violation {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "[{}] thread {}: {} (replay: {})",
                self.rule, self.thread, self.detail, self.schedule
            )
        }
    }

    /// Aggregate result of [`Explorer::explore`].
    #[derive(Debug)]
    pub struct Exploration {
        /// Number of schedules actually run.
        pub schedules: usize,
        /// Whether the choice tree was fully enumerated within budget
        /// (always `false` for random-style exploration).
        pub exhausted: bool,
        /// Every invariant violation observed, with its schedule.
        pub violations: Vec<Violation>,
        /// Total synchronization events recorded across all schedules.
        pub events: usize,
    }

    enum Style {
        Exhaustive,
        Random,
    }

    /// Deterministic schedule explorer; see [`crate::sync`] module docs.
    pub struct Explorer {
        style: Style,
        seed: u64,
        budget: usize,
    }

    impl Explorer {
        /// DFS enumeration of the whole schedule tree, stopping early
        /// (with `exhausted = false`) after `budget` schedules. Suited
        /// to 2–3 threads with a handful of critical sections each.
        pub fn exhaustive(budget: usize) -> Self {
            Self {
                style: Style::Exhaustive,
                seed: 0,
                budget,
            }
        }

        /// `budget` independent schedules with choices drawn from a
        /// SplitMix64 stream seeded per run — the regime for thread or
        /// critical-section counts whose trees are too big to enumerate.
        pub fn random(seed: u64, budget: usize) -> Self {
            Self {
                style: Style::Random,
                seed,
                budget,
            }
        }

        /// Reads a schedule budget from environment variable `var`
        /// (falling back to `default` when unset or unparsable), the
        /// same knob pattern as `CRITERION_SAMPLE_SIZE`.
        pub fn budget_from_env(var: &str, default: usize) -> usize {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }

        /// Runs `body` once per schedule. The body spawns threads with
        /// [`Run::thread`], waits for them with [`Run::join`], and may
        /// assert on shared state afterwards; a panic inside the body is
        /// re-thrown after printing the replayable schedule.
        ///
        /// # Panics
        ///
        /// Propagates body panics, and panics (with the replay line) if
        /// any schedule deadlocks.
        pub fn explore<F: FnMut(&mut Run)>(&self, mut body: F) -> Exploration {
            let mut out = Exploration {
                schedules: 0,
                exhausted: false,
                violations: Vec::new(),
                events: 0,
            };
            match self.style {
                Style::Exhaustive => {
                    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
                    while let Some(prefix) = stack.pop() {
                        if out.schedules >= self.budget {
                            stack.push(prefix);
                            break;
                        }
                        let done = run_once(self.seed, prefix.clone(), false, &mut body);
                        collect(&mut out, &done);
                        // Beyond the forced prefix every pick defaulted
                        // to option 0; each untried alternative at each
                        // such point roots an unexplored subtree.
                        for i in prefix.len()..done.trace.len() {
                            let (n_options, picked) = done.trace[i];
                            for alt in picked + 1..n_options {
                                let mut p: Vec<usize> =
                                    done.trace[..i].iter().map(|&(_, k)| k).collect();
                                p.push(alt);
                                stack.push(p);
                            }
                        }
                    }
                    out.exhausted = stack.is_empty();
                }
                Style::Random => {
                    for i in 0..self.budget {
                        let seed = SplitMix64::new(self.seed.wrapping_add(i as u64)).next_u64();
                        let done = run_once(seed, Vec::new(), true, &mut body);
                        collect(&mut out, &done);
                    }
                }
            }
            out
        }

        /// Re-runs `body` under exactly the interleaving recorded in
        /// `schedule` (typically lifted from a [`Violation`]).
        pub fn replay<F: FnMut(&mut Run)>(&self, schedule: &Schedule, mut body: F) -> Exploration {
            let mut out = Exploration {
                schedules: 0,
                exhausted: false,
                violations: Vec::new(),
                events: 0,
            };
            let done = run_once(schedule.seed, schedule.choices.clone(), false, &mut body);
            collect(&mut out, &done);
            out
        }
    }

    fn collect(out: &mut Exploration, done: &RunOutcome) {
        out.schedules += 1;
        out.events += done.events;
        let schedule = Schedule {
            seed: done.seed,
            choices: done.trace.iter().map(|&(_, k)| k).collect(),
        };
        for (rule, thread, detail) in &done.violations {
            out.violations.push(Violation {
                rule,
                detail: detail.clone(),
                thread: *thread,
                schedule: schedule.clone(),
            });
        }
    }

    // --- one run under one schedule -------------------------------------

    struct RunOutcome {
        seed: u64,
        trace: Vec<(usize, usize)>,
        violations: Vec<(&'static str, usize, String)>,
        events: usize,
    }

    fn run_once<F: FnMut(&mut Run)>(
        seed: u64,
        forced: Vec<usize>,
        random_tail: bool,
        body: &mut F,
    ) -> RunOutcome {
        let sched = Arc::new(Scheduler::new(seed, forced, random_tail));
        let mut run = Run {
            sched: Arc::clone(&sched),
            handles: Vec::new(),
        };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut run)));
        if let Err(payload) = attempt {
            let st = super::lock(&sched.state);
            eprintln!(
                "deterministic-sync: body panicked; replay with {}",
                Schedule {
                    seed,
                    choices: st.choices.iter().map(|&(_, k)| k).collect(),
                }
            );
            drop(st);
            std::panic::resume_unwind(payload);
        }
        let st = super::lock(&sched.state);
        RunOutcome {
            seed,
            trace: st.choices.clone(),
            violations: st.violations.clone(),
            events: st.events.len(),
        }
    }

    /// Handle through which an explored body spawns and joins the
    /// threads of one schedule.
    pub struct Run {
        sched: Arc<Scheduler>,
        handles: Vec<JoinHandle<()>>,
    }

    impl Run {
        /// Spawns a scheduler-driven thread. The closure starts parked
        /// and only ever runs while the scheduler grants it the run
        /// token; every ordered-lock acquisition and epoch publish
        /// inside it is a schedule point. All threads of a run must be
        /// spawned before [`Run::join`] is called.
        pub fn thread(&mut self, f: impl FnOnce() + Send + 'static) {
            let tid = {
                let mut st = super::lock(&self.sched.state);
                st.threads.push(TState::Spawning);
                st.held.push(Vec::new());
                st.clocks.push(Vec::new());
                st.threads.len() - 1
            };
            let sched = Arc::clone(&self.sched);
            self.handles.push(std::thread::spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(TraceCtx {
                        sched: Arc::clone(&sched),
                        tid,
                    })
                });
                let _finish = FinishOnDrop {
                    sched: Arc::clone(&sched),
                    tid,
                };
                // Initial gate: the thread becomes runnable here and
                // proceeds only when scheduled, so the interleaving is
                // independent of OS spawn timing.
                schedule_point(&sched, tid, None);
                f();
            }));
        }

        /// Releases the threads of this run, drives them to completion
        /// under the scheduler, and joins them.
        ///
        /// # Panics
        ///
        /// Panics with a replayable schedule if the run deadlocked;
        /// re-throws the first thread panic otherwise.
        pub fn join(&mut self) {
            {
                let mut st = super::lock(&self.sched.state);
                while st.threads.iter().any(|t| matches!(t, TState::Spawning)) {
                    st = self
                        .sched
                        .cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                st.started = true;
                pick_next(&mut st);
                self.sched.cv.notify_all();
                while !(st.deadlocked || st.threads.iter().all(|t| matches!(t, TState::Finished))) {
                    st = self
                        .sched
                        .cv
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            let mut first_panic = None;
            for h in self.handles.drain(..) {
                if let Err(payload) = h.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            let st = super::lock(&self.sched.state);
            if st.deadlocked {
                let replay = Schedule {
                    seed: st.seed,
                    choices: st.choices.iter().map(|&(_, k)| k).collect(),
                };
                drop(st);
                // lint:allow(core-panic): a deadlocked schedule cannot make progress; the panic carries the replay seed.
                panic!("deterministic-sync: deadlock detected; replay with {replay}");
            }
            drop(st);
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        }
    }

    // --- the cooperative scheduler ---------------------------------------

    /// TLS handle installed in scheduler-driven threads; stored in
    /// [`super::TracedGuard`] so the release is reported to the same
    /// scheduler that granted the acquisition.
    #[derive(Clone)]
    pub struct TraceCtx {
        sched: Arc<Scheduler>,
        tid: usize,
    }

    thread_local! {
        static CTX: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
    }

    fn current_ctx() -> Option<TraceCtx> {
        CTX.with(|c| c.borrow().clone())
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum TState {
        /// Spawned but not yet at its initial gate.
        Spawning,
        /// Parked at a schedule point, optionally wanting a lock.
        AtPoint(Option<LockId>),
        /// Holds the run token.
        Running,
        /// Completed (normally or by unwinding).
        Finished,
    }

    /// Shared scheduler for the threads of one run.
    pub(crate) struct Scheduler {
        state: Mutex<State>,
        cv: Condvar,
    }

    struct State {
        seed: u64,
        started: bool,
        forced: Vec<usize>,
        rng: Option<SplitMix64>,
        /// `(n_options, picked)` per schedule point, in order.
        choices: Vec<(usize, usize)>,
        threads: Vec<TState>,
        current: Option<usize>,
        owners: BTreeMap<LockId, usize>,
        held: Vec<Vec<LockId>>,
        /// Per-thread vector clocks (index = thread, value = count).
        clocks: Vec<Vec<u64>>,
        /// Clock snapshot stored at each lock's latest release.
        lock_clocks: BTreeMap<LockId, Vec<u64>>,
        /// `(epoch, clock)` of the latest `EpochCell` publish.
        last_publish: Option<(u64, Vec<u64>)>,
        events: Vec<Event>,
        violations: Vec<(&'static str, usize, String)>,
        deadlocked: bool,
    }

    impl Scheduler {
        fn new(seed: u64, forced: Vec<usize>, random_tail: bool) -> Self {
            Self {
                state: Mutex::new(State {
                    seed,
                    started: false,
                    forced,
                    rng: random_tail.then(|| SplitMix64::new(seed)),
                    choices: Vec::new(),
                    threads: Vec::new(),
                    current: None,
                    owners: BTreeMap::new(),
                    held: Vec::new(),
                    clocks: Vec::new(),
                    lock_clocks: BTreeMap::new(),
                    last_publish: None,
                    events: Vec::new(),
                    violations: Vec::new(),
                    deadlocked: false,
                }),
                cv: Condvar::new(),
            }
        }
    }

    /// Rank in the required acquisition order: shards ascending, global
    /// last. `Named` locks are outside the hierarchy.
    fn rank(id: LockId) -> Option<u64> {
        match id {
            LockId::Shard(i) => Some(u64::from(i)),
            LockId::Global => Some(u64::MAX),
            LockId::Named(_) => None,
        }
    }

    /// Chooses the next thread to grant the run token to. Runnable =
    /// parked at a point whose wanted lock (if any) is currently free;
    /// lock-blocked threads are excluded so every recorded choice is
    /// between threads that can actually make progress.
    fn pick_next(st: &mut State) {
        if !st.started {
            return;
        }
        if st.deadlocked {
            st.current = None;
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                TState::AtPoint(want) => want.is_none_or(|id| !st.owners.contains_key(&id)),
                _ => false,
            })
            .map(|(tid, _)| tid)
            .collect();
        if runnable.is_empty() {
            if !st.threads.iter().all(|t| matches!(t, TState::Finished)) {
                let waiting: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, t)| match t {
                        TState::AtPoint(Some(id)) => Some(format!("thread {tid} waits on {id}")),
                        _ => None,
                    })
                    .collect();
                st.deadlocked = true;
                st.violations.push(("deadlock", 0, waiting.join("; ")));
            }
            st.current = None;
            return;
        }
        let n = runnable.len();
        let pos = st.choices.len();
        let k = if pos < st.forced.len() {
            st.forced[pos].min(n - 1)
        } else if let Some(rng) = st.rng.as_mut() {
            rng.next_below(n)
        } else {
            0
        };
        st.choices.push((n, k));
        st.current = Some(runnable[k]);
    }

    /// Parks the calling thread at a schedule point until the scheduler
    /// grants it the run token (and, when `want` is set, the lock).
    fn schedule_point(sched: &Arc<Scheduler>, tid: usize, want: Option<LockId>) {
        let mut st = super::lock(&sched.state);
        st.threads[tid] = TState::AtPoint(want);
        pick_next(&mut st);
        sched.cv.notify_all();
        while st.current != Some(tid) {
            if st.deadlocked {
                let replay = Schedule {
                    seed: st.seed,
                    choices: st.choices.iter().map(|&(_, k)| k).collect(),
                };
                drop(st);
                // lint:allow(core-panic): unwinding is the only way out of a deadlocked schedule; FinishOnDrop keeps the scheduler consistent.
                panic!("deterministic-sync: deadlock detected; replay with {replay}");
            }
            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.threads[tid] = TState::Running;
        if let Some(id) = want {
            check_order(&mut st, tid, id);
            st.owners.insert(id, tid);
            st.held[tid].push(id);
            tick(&mut st, tid);
            if let Some(lc) = st.lock_clocks.get(&id).cloned() {
                join_clock(&mut st.clocks[tid], &lc);
            }
            st.events.push(Event::Acquire {
                thread: tid,
                lock: id,
            });
        }
    }

    fn check_order(st: &mut State, tid: usize, id: LockId) {
        let Some(new_rank) = rank(id) else { return };
        for &h in &st.held[tid] {
            if let Some(held_rank) = rank(h) {
                if new_rank <= held_rank {
                    st.violations.push((
                        "lock-order",
                        tid,
                        format!(
                            "acquired {id} while holding {h}; required order is \
                             shards ascending, then global"
                        ),
                    ));
                }
            }
        }
    }

    // --- vector clocks ----------------------------------------------------

    fn tick(st: &mut State, tid: usize) {
        let clock = &mut st.clocks[tid];
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] += 1;
    }

    fn join_clock(into: &mut Vec<u64>, other: &[u64]) {
        if into.len() < other.len() {
            into.resize(other.len(), 0);
        }
        for (a, &b) in into.iter_mut().zip(other) {
            *a = (*a).max(b);
        }
    }

    /// `a ≤ b` componentwise — every event in `a` happens-before (or is)
    /// the frontier `b`.
    fn clock_leq(a: &[u64], b: &[u64]) -> bool {
        a.iter()
            .enumerate()
            .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
    }

    // --- hooks called from the shim types ---------------------------------

    /// Called by [`super::TracedMutex::lock`]; returns the context the
    /// guard must report its release to, or `None` outside exploration.
    pub(crate) fn on_acquire(id: LockId) -> Option<TraceCtx> {
        let ctx = current_ctx()?;
        schedule_point(&ctx.sched, ctx.tid, Some(id));
        Some(ctx)
    }

    /// Called by [`super::TracedGuard`]'s drop.
    pub(crate) fn on_release(ctx: &TraceCtx, id: LockId) {
        let mut st = super::lock(&ctx.sched.state);
        st.owners.remove(&id);
        if let Some(pos) = st.held[ctx.tid].iter().rposition(|&h| h == id) {
            st.held[ctx.tid].remove(pos);
        }
        tick(&mut st, ctx.tid);
        let clock = st.clocks[ctx.tid].clone();
        st.lock_clocks.insert(id, clock);
        st.events.push(Event::Release {
            thread: ctx.tid,
            lock: id,
        });
    }

    /// Called by `EpochCell::publish` before the swap: a schedule point,
    /// plus the no-shard-guard-across-publish check (holding the global
    /// lock across a publish is legitimate — refits do).
    pub(crate) fn on_publish_point() {
        let Some(ctx) = current_ctx() else { return };
        schedule_point(&ctx.sched, ctx.tid, None);
        let mut st = super::lock(&ctx.sched.state);
        let shards: Vec<LockId> = st.held[ctx.tid]
            .iter()
            .copied()
            .filter(|h| matches!(h, LockId::Shard(_)))
            .collect();
        for h in shards {
            st.violations.push((
                "lock-across-publish",
                ctx.tid,
                format!("epoch publish while holding {h}"),
            ));
        }
    }

    /// Called by `EpochCell::publish` after the swap with the new epoch.
    pub(crate) fn on_published(epoch: u64) {
        let Some(ctx) = current_ctx() else { return };
        let mut st = super::lock(&ctx.sched.state);
        tick(&mut st, ctx.tid);
        let clock = st.clocks[ctx.tid].clone();
        st.last_publish = Some((epoch, clock));
        st.events.push(Event::Publish {
            thread: ctx.tid,
            epoch,
        });
    }

    /// Called by `EpochCell::load`: happens-before staleness check — a
    /// load whose thread already observed (transitively) a publish of a
    /// newer epoch than it just read is a torn read model.
    pub(crate) fn on_epoch_load(epoch: u64) {
        let Some(ctx) = current_ctx() else { return };
        let mut st = super::lock(&ctx.sched.state);
        tick(&mut st, ctx.tid);
        if let Some((published, pclock)) = st.last_publish.clone() {
            if clock_leq(&pclock, &st.clocks[ctx.tid]) && epoch < published {
                st.violations.push((
                    "stale-epoch-read",
                    ctx.tid,
                    format!(
                        "loaded epoch {epoch} although publish of epoch {published} \
                         happens-before this read"
                    ),
                ));
            }
            if epoch >= published {
                join_clock(&mut st.clocks[ctx.tid], &pclock);
            }
        }
        st.events.push(Event::EpochLoad {
            thread: ctx.tid,
            epoch,
        });
    }

    /// Called by `WorkspacePool` on workspace checkout/return (recorded
    /// for event traces; not a schedule point — the pool never blocks).
    pub(crate) fn on_pool_event(acquire: bool) {
        let Some(ctx) = current_ctx() else { return };
        let mut st = super::lock(&ctx.sched.state);
        tick(&mut st, ctx.tid);
        st.events.push(if acquire {
            Event::PoolAcquire { thread: ctx.tid }
        } else {
            Event::PoolRelease { thread: ctx.tid }
        });
    }

    /// Marks the thread finished even when it unwinds, so a panicking
    /// thread (assertion failure, deadlock abort) never wedges the rest
    /// of the run or the joining driver.
    struct FinishOnDrop {
        sched: Arc<Scheduler>,
        tid: usize,
    }

    impl Drop for FinishOnDrop {
        fn drop(&mut self) {
            let mut st = super::lock(&self.sched.state);
            st.threads[self.tid] = TState::Finished;
            if st.current == Some(self.tid) {
                st.current = None;
            }
            pick_next(&mut st);
            self.sched.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(5u32);
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = lock(&m);
            panic!("poison the lock");
        }));
        assert!(poisoner.is_err());
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 5);
    }

    #[test]
    fn traced_mutex_plain_path_and_ids() {
        let m = TracedMutex::new(LockId::Named("scratch"), vec![1u8]);
        assert_eq!(m.id(), LockId::Named("scratch"));
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(LockId::Shard(3).to_string(), "shard[3]");
        assert_eq!(LockId::Global.to_string(), "global");
        assert_eq!(LockId::Named("scratch").to_string(), "scratch");
    }
}

#[cfg(test)]
#[cfg(feature = "deterministic-sync")]
mod explore_tests {
    use std::sync::Arc;

    use super::explore::{Explorer, Run};
    use super::{LockId, TracedMutex};
    use crate::epoch::EpochCell;

    #[test]
    fn exhaustive_counter_explores_all_interleavings() {
        let report = Explorer::exhaustive(100).explore(|run| {
            let m = Arc::new(TracedMutex::new(LockId::Global, 0u32));
            let done = Arc::clone(&m);
            for _ in 0..2 {
                let m = Arc::clone(&m);
                run.thread(move || {
                    *m.lock() += 1;
                });
            }
            run.join();
            assert_eq!(*done.lock(), 2);
        });
        // Two threads × (start gate + one acquisition) = C(4, 2) = 6
        // interleavings of the schedule points.
        assert_eq!(report.schedules, 6);
        assert!(report.exhausted);
        assert!(report.violations.is_empty());
        assert!(report.events > 0);
    }

    #[test]
    fn budget_bounds_exploration() {
        let report = Explorer::exhaustive(1).explore(two_counter_threads);
        assert_eq!(report.schedules, 1);
        assert!(!report.exhausted);
    }

    #[test]
    fn random_style_is_bounded_and_clean() {
        let report = Explorer::random(0xDECAF, 5).explore(two_counter_threads);
        assert_eq!(report.schedules, 5);
        assert!(!report.exhausted);
        assert!(report.violations.is_empty());
    }

    fn two_counter_threads(run: &mut Run) {
        let m = Arc::new(TracedMutex::new(LockId::Global, 0u32));
        for _ in 0..2 {
            let m = Arc::clone(&m);
            run.thread(move || {
                *m.lock() += 1;
            });
        }
        run.join();
    }

    fn inverted_order(run: &mut Run) {
        let global = Arc::new(TracedMutex::new(LockId::Global, ()));
        let shard = Arc::new(TracedMutex::new(LockId::Shard(0), ()));
        run.thread(move || {
            let g = global.lock();
            let s = shard.lock();
            drop(s);
            drop(g);
        });
        run.join();
    }

    #[test]
    fn wrong_order_acquisition_is_caught_and_replayable() {
        let report = Explorer::exhaustive(10).explore(inverted_order);
        assert!(report.exhausted);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.rule, "lock-order");
        let shown = v.to_string();
        assert!(shown.contains("seed="), "replay seed missing: {shown}");
        // The attached schedule reproduces the violation exactly.
        let again = Explorer::exhaustive(10).replay(&v.schedule, inverted_order);
        assert_eq!(again.schedules, 1);
        assert_eq!(again.violations.len(), 1);
        assert_eq!(again.violations[0].rule, "lock-order");
    }

    #[test]
    fn ascending_shards_then_global_is_legal() {
        let report = Explorer::exhaustive(10).explore(|run| {
            let s0 = Arc::new(TracedMutex::new(LockId::Shard(0), ()));
            let s1 = Arc::new(TracedMutex::new(LockId::Shard(1), ()));
            let g = Arc::new(TracedMutex::new(LockId::Global, ()));
            run.thread(move || {
                // The audited snapshot pattern: every shard ascending,
                // then the global lock.
                let a = s0.lock();
                let b = s1.lock();
                let c = g.lock();
                drop((a, b, c));
            });
            run.join();
        });
        assert!(report.exhausted);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn publish_under_shard_guard_is_caught() {
        let report = Explorer::exhaustive(10).explore(|run| {
            let shard = Arc::new(TracedMutex::new(LockId::Shard(0), ()));
            let cell = Arc::new(EpochCell::new(0u8));
            run.thread(move || {
                let s = shard.lock();
                cell.publish(1);
                drop(s);
            });
            run.join();
        });
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "lock-across-publish");
    }

    #[test]
    fn publish_and_load_across_threads_is_clean() {
        let report = Explorer::exhaustive(100).explore(|run| {
            let cell = Arc::new(EpochCell::new(0u8));
            let reader = Arc::clone(&cell);
            run.thread(move || {
                cell.publish(1);
            });
            run.thread(move || {
                let (_epoch, value) = reader.load();
                assert!(*value <= 1);
            });
            run.join();
        });
        assert!(report.exhausted);
        assert!(report.violations.is_empty());
        // Publish + load events recorded in every schedule.
        assert!(report.events >= 2 * report.schedules);
    }

    #[test]
    fn deadlock_panics_with_replayable_schedule() {
        let attempt = std::panic::catch_unwind(|| {
            Explorer::exhaustive(50).explore(|run| {
                let a = Arc::new(TracedMutex::new(LockId::Named("a"), ()));
                let b = Arc::new(TracedMutex::new(LockId::Named("b"), ()));
                for flip in [false, true] {
                    let a = Arc::clone(&a);
                    let b = Arc::clone(&b);
                    run.thread(move || {
                        let (first, second) = if flip { (&b, &a) } else { (&a, &b) };
                        let _f = first.lock();
                        let _s = second.lock();
                    });
                }
                run.join();
            })
        });
        let payload = attempt.expect_err("opposed lock orders must deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("seed="), "{msg}");
    }
}
