//! Fundamental data types: users, items, actions, and datasets.
//!
//! The paper models a set of users `U`, each with a chronologically sorted
//! action sequence `A_u` of triples `(t, u, i)` where `i` is an item
//! described by multi-faceted features (Section III of the paper).
//!
//! [`Dataset`] is the canonical in-memory representation shared by the
//! trainer, the difficulty estimators, and the evaluation harness. It
//! stores one feature tuple per *item* (items are deduplicated) and one
//! compact [`Action`] per event.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::feature::{FeatureSchema, FeatureValue};

/// Identifier of a user. Dense indices (`0..n_users`) are expected.
pub type UserId = u32;

/// Identifier of an item. Dense indices (`0..n_items`) are expected.
pub type ItemId = u32;

/// Event timestamp. Only the *order* matters to the model; any monotone
/// clock (seconds, logical counters) works.
pub type Timestamp = i64;

/// A skill level in `1..=S` as defined in the paper (Definition 1).
pub type SkillLevel = u8;

/// Converts a zero-based level index into the 1-based [`SkillLevel`].
///
/// This is the single narrowing conversion the hot paths need; routing it
/// through one helper keeps truncating `as` casts out of DP loops.
/// Callers guarantee `index < S`, and `S ≤ SkillLevel::MAX` is enforced
/// by [`TrainConfig::validate`](crate::train::TrainConfig::validate), so
/// the cast cannot truncate; the debug assertion pins that reasoning.
#[inline]
pub fn skill_level_from_index(index: usize) -> SkillLevel {
    debug_assert!(index < SkillLevel::MAX as usize);
    (index + 1) as SkillLevel
}

/// Converts a zero-based item-table index into an [`ItemId`].
///
/// Companion of [`skill_level_from_index`] for the item axis: hot loops
/// enumerate the item table with `usize` positions and need an `ItemId`
/// to call feature lookups. Dataset construction keeps the item table
/// within `ItemId` range (actions address items through `u32` ids), so
/// the cast cannot truncate; the debug assertion pins that reasoning.
#[inline]
pub fn item_id_from_index(index: usize) -> ItemId {
    debug_assert!(index <= ItemId::MAX as usize);
    index as ItemId
}

/// One user action: at time `t`, user `u` selected item `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// When the action happened.
    pub time: Timestamp,
    /// Who acted.
    pub user: UserId,
    /// Which item was selected.
    pub item: ItemId,
}

impl Action {
    /// Creates a new action triple.
    pub fn new(time: Timestamp, user: UserId, item: ItemId) -> Self {
        Self { time, user, item }
    }
}

/// A user's chronologically sorted action sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSequence {
    /// The owner of this sequence.
    pub user: UserId,
    /// Actions sorted by [`Action::time`] (ties allowed, stable order).
    actions: Vec<Action>,
}

impl ActionSequence {
    /// Builds a sequence, validating user consistency and chronological order.
    pub fn new(user: UserId, actions: Vec<Action>) -> Result<Self> {
        for (pos, window) in actions.windows(2).enumerate() {
            if window[1].time < window[0].time {
                return Err(CoreError::UnsortedSequence {
                    user,
                    position: pos + 1,
                });
            }
        }
        if let Some(pos) = actions.iter().position(|a| a.user != user) {
            return Err(CoreError::UnsortedSequence {
                user,
                position: pos,
            });
        }
        Ok(Self { user, actions })
    }

    /// Builds a sequence, sorting the actions by time first (stable).
    pub fn from_unsorted(user: UserId, mut actions: Vec<Action>) -> Result<Self> {
        actions.sort_by_key(|a| a.time);
        Self::new(user, actions)
    }

    /// Appends one action, validating that it belongs to this user and does
    /// not move time backwards. Used by the streaming ingestion path.
    pub fn push(&mut self, action: Action) -> Result<()> {
        if action.user != self.user {
            return Err(CoreError::UnsortedSequence {
                user: self.user,
                position: self.actions.len(),
            });
        }
        if let Some(last) = self.actions.last() {
            if action.time < last.time {
                return Err(CoreError::UnsortedSequence {
                    user: self.user,
                    position: self.actions.len(),
                });
            }
        }
        self.actions.push(action);
        Ok(())
    }

    /// The actions in chronological order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions in the sequence.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A complete dataset: the item feature table plus all user sequences.
///
/// Invariants enforced at construction time:
/// - every sequence is chronologically sorted;
/// - every action references an item present in the feature table;
/// - every item's feature tuple matches the [`FeatureSchema`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    schema: FeatureSchema,
    /// `items[i]` is the feature tuple of item `i`.
    items: Vec<Vec<FeatureValue>>,
    /// One entry per user, indexed by position (user ids may be sparse but
    /// each sequence knows its own id).
    sequences: Vec<ActionSequence>,
    /// Total number of actions across all sequences (cached).
    n_actions: usize,
}

impl Dataset {
    /// Assembles and validates a dataset.
    pub fn new(
        schema: FeatureSchema,
        items: Vec<Vec<FeatureValue>>,
        sequences: Vec<ActionSequence>,
    ) -> Result<Self> {
        for features in &items {
            schema.validate_item(features)?;
        }
        let n_items = items.len() as u32;
        let mut n_actions = 0usize;
        for seq in &sequences {
            for a in seq.actions() {
                if a.item >= n_items {
                    return Err(CoreError::FeatureIndexOutOfBounds {
                        index: a.item as usize,
                        len: items.len(),
                    });
                }
            }
            n_actions += seq.len();
        }
        Ok(Self {
            schema,
            items,
            sequences,
            n_actions,
        })
    }

    /// The feature schema shared by all items.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Feature tuple of an item.
    pub fn item_features(&self, item: ItemId) -> &[FeatureValue] {
        &self.items[item as usize]
    }

    /// The full item feature table.
    pub fn items(&self) -> &[Vec<FeatureValue>] {
        &self.items
    }

    /// Number of distinct items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// All user sequences.
    pub fn sequences(&self) -> &[ActionSequence] {
        &self.sequences
    }

    /// Number of users (sequences).
    pub fn n_users(&self) -> usize {
        self.sequences.len()
    }

    /// Total number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Iterates over every action in the dataset, sequence by sequence.
    pub fn actions(&self) -> impl Iterator<Item = Action> + '_ {
        self.sequences
            .iter()
            .flat_map(|s| s.actions().iter().copied())
    }

    /// Earliest timestamp over all actions, if any.
    pub fn earliest_time(&self) -> Option<Timestamp> {
        self.actions().map(|a| a.time).min()
    }

    /// Number of actions that select each item (`support[i]`).
    pub fn item_support(&self) -> Vec<u32> {
        let mut support = vec![0u32; self.n_items()];
        for a in self.actions() {
            support[a.item as usize] += 1;
        }
        support
    }

    /// Validates the feature tuple of one referenced item against the
    /// schema. Construction (`Dataset::new`) already checks every item, but
    /// a dataset deserialized from disk bypasses that path, so the
    /// streaming ingestion methods re-check the items they touch: NaN or
    /// infinite positive reals and kind mismatches are rejected with a
    /// typed [`CoreError::InvalidFeatureValue`] / schema error instead of
    /// poisoning the emission table later. (Counts cannot go negative: the
    /// `u64` representation rejects them at the type level.)
    fn check_item_features(&self, item: ItemId) -> Result<()> {
        let features = self
            .items
            .get(item as usize)
            .ok_or(CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: self.items.len(),
            })?;
        self.schema.validate_item(features)
    }

    /// Appends one action to the sequence at `seq_index`, preserving every
    /// construction-time invariant: the item must exist in the feature
    /// table with a schema-conforming (finite, in-range) feature tuple,
    /// the action's user must match the sequence's owner, and time must
    /// not move backwards. The cached action count is kept in sync.
    pub fn append_action(&mut self, seq_index: usize, action: Action) -> Result<()> {
        self.check_item_features(action.item)?;
        let n_users = self.sequences.len();
        let seq = self
            .sequences
            .get_mut(seq_index)
            .ok_or(CoreError::LengthMismatch {
                context: "sequence index vs dataset users",
                left: seq_index,
                right: n_users,
            })?;
        seq.push(action)?;
        self.n_actions += 1;
        Ok(())
    }

    /// Appends a whole (already validated) sequence for a new user and
    /// returns its index. Every action must reference an existing item
    /// whose feature tuple conforms to the schema.
    pub fn push_sequence(&mut self, sequence: ActionSequence) -> Result<usize> {
        for a in sequence.actions() {
            self.check_item_features(a.item)?;
        }
        self.n_actions += sequence.len();
        self.sequences.push(sequence);
        Ok(self.sequences.len() - 1)
    }

    /// Re-verifies every construction-time invariant on an existing
    /// dataset: item tuples conform to the schema, sequences are sorted
    /// and owner-consistent, actions reference existing items, and the
    /// cached action count matches.
    ///
    /// [`Dataset::new`] establishes these invariants, but serde
    /// deserialization constructs the struct field-by-field and bypasses
    /// them; callers loading a dataset from untrusted storage should run
    /// this before training on it.
    pub fn validate(&self) -> Result<()> {
        for features in &self.items {
            self.schema.validate_item(features)?;
        }
        let mut n_actions = 0usize;
        for seq in &self.sequences {
            // Re-run the sequence-level checks (sortedness + ownership).
            ActionSequence::new(seq.user, seq.actions.clone())?;
            for a in seq.actions() {
                if a.item as usize >= self.items.len() {
                    return Err(CoreError::FeatureIndexOutOfBounds {
                        index: a.item as usize,
                        len: self.items.len(),
                    });
                }
            }
            n_actions += seq.len();
        }
        if n_actions != self.n_actions {
            return Err(CoreError::LengthMismatch {
                context: "cached action count vs actual actions",
                left: self.n_actions,
                right: n_actions,
            });
        }
        Ok(())
    }

    /// Splits off a shallow view with only the selected users, preserving
    /// item table and schema. Used by the initialization step, which trains
    /// on long sequences only.
    pub fn subset_users(&self, keep: impl Fn(&ActionSequence) -> bool) -> Result<Self> {
        let sequences: Vec<ActionSequence> =
            self.sequences.iter().filter(|s| keep(s)).cloned().collect();
        Dataset::new(self.schema.clone(), self.items.clone(), sequences)
    }
}

/// A flat per-action skill assignment, parallel to [`Dataset::sequences`]:
/// `assignments[u][n]` is the skill level of the `n`-th action of the `u`-th
/// sequence. Produced by the trainer's assignment step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkillAssignments {
    /// Per-sequence, per-action skill levels (`1..=S`).
    pub per_user: Vec<Vec<SkillLevel>>,
}

impl SkillAssignments {
    /// Total number of assigned actions.
    pub fn n_actions(&self) -> usize {
        self.per_user.iter().map(Vec::len).sum()
    }

    /// Verifies the monotone non-decreasing constraint (Eq. 1) holds for
    /// every sequence. Used in tests and debug assertions.
    pub fn is_monotone(&self) -> bool {
        self.per_user
            .iter()
            .all(|seq| seq.windows(2).all(|w| w[0] <= w[1]))
    }

    /// Iterates `(sequence index, action index, skill)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, SkillLevel)> + '_ {
        self.per_user
            .iter()
            .enumerate()
            .flat_map(|(u, seq)| seq.iter().enumerate().map(move |(n, &s)| (u, n, s)))
    }

    /// Histogram of assigned skill levels (`counts[s-1]` = actions at level `s`).
    pub fn level_histogram(&self, n_levels: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_levels];
        for (_, _, s) in self.iter() {
            let idx = (s as usize).saturating_sub(1);
            if idx < n_levels {
                counts[idx] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema};

    fn tiny_schema() -> FeatureSchema {
        FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 3 }]).unwrap()
    }

    #[test]
    fn sequence_rejects_unsorted_actions() {
        let err =
            ActionSequence::new(0, vec![Action::new(5, 0, 0), Action::new(3, 0, 1)]).unwrap_err();
        assert_eq!(
            err,
            CoreError::UnsortedSequence {
                user: 0,
                position: 1
            }
        );
    }

    #[test]
    fn sequence_rejects_foreign_actions() {
        let err = ActionSequence::new(0, vec![Action::new(1, 9, 0)]).unwrap_err();
        assert!(matches!(err, CoreError::UnsortedSequence { user: 0, .. }));
    }

    #[test]
    fn from_unsorted_sorts_stably() {
        let seq = ActionSequence::from_unsorted(
            1,
            vec![
                Action::new(5, 1, 2),
                Action::new(1, 1, 0),
                Action::new(3, 1, 1),
            ],
        )
        .unwrap();
        let times: Vec<_> = seq.actions().iter().map(|a| a.time).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn dataset_rejects_out_of_range_item() {
        let schema = tiny_schema();
        let items = vec![vec![FeatureValue::Categorical(0)]];
        let seq = ActionSequence::new(0, vec![Action::new(0, 0, 7)]).unwrap();
        let err = Dataset::new(schema, items, vec![seq]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::FeatureIndexOutOfBounds { index: 7, .. }
        ));
    }

    #[test]
    fn dataset_counts_and_support() {
        let schema = tiny_schema();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let s0 = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 1),
                Action::new(2, 0, 1),
            ],
        )
        .unwrap();
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 0)]).unwrap();
        let ds = Dataset::new(schema, items, vec![s0, s1]).unwrap();
        assert_eq!(ds.n_actions(), 4);
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.n_items(), 2);
        assert_eq!(ds.item_support(), vec![2, 2]);
        assert_eq!(ds.earliest_time(), Some(0));
    }

    #[test]
    fn sequence_push_validates_owner_and_order() {
        let mut seq = ActionSequence::new(0, vec![Action::new(3, 0, 0)]).unwrap();
        assert!(seq.push(Action::new(3, 0, 1)).is_ok()); // ties allowed
        assert!(seq.push(Action::new(5, 0, 0)).is_ok());
        assert!(matches!(
            seq.push(Action::new(4, 0, 0)),
            Err(CoreError::UnsortedSequence { user: 0, .. })
        ));
        assert!(matches!(
            seq.push(Action::new(9, 7, 0)),
            Err(CoreError::UnsortedSequence { user: 0, .. })
        ));
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn dataset_append_action_maintains_invariants() {
        let schema = tiny_schema();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0)]).unwrap();
        let mut ds = Dataset::new(schema, items, vec![s0]).unwrap();
        ds.append_action(0, Action::new(1, 0, 1)).unwrap();
        assert_eq!(ds.n_actions(), 2);
        // Unknown item, bad sequence index, and time regression all fail
        // without corrupting the cached count.
        assert!(matches!(
            ds.append_action(0, Action::new(2, 0, 9)),
            Err(CoreError::FeatureIndexOutOfBounds { index: 9, .. })
        ));
        assert!(ds.append_action(3, Action::new(2, 0, 0)).is_err());
        assert!(ds.append_action(0, Action::new(0, 0, 0)).is_err());
        assert_eq!(ds.n_actions(), 2);
    }

    #[test]
    fn dataset_push_sequence_adds_user() {
        let schema = tiny_schema();
        let items = vec![vec![FeatureValue::Categorical(0)]];
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0)]).unwrap();
        let mut ds = Dataset::new(schema, items, vec![s0]).unwrap();
        let s1 = ActionSequence::new(9, vec![Action::new(0, 9, 0)]).unwrap();
        assert_eq!(ds.push_sequence(s1).unwrap(), 1);
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.n_actions(), 2);
        let bad = ActionSequence::new(10, vec![Action::new(0, 10, 5)]).unwrap();
        assert!(ds.push_sequence(bad).is_err());
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.n_actions(), 2);
    }

    #[test]
    fn ingestion_rejects_nonfinite_real_features() {
        use crate::feature::PositiveModel;
        let schema = FeatureSchema::new(vec![FeatureKind::Positive {
            model: PositiveModel::Gamma,
        }])
        .unwrap();
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0)]).unwrap();
        let mut ds = Dataset::new(schema, vec![vec![FeatureValue::Real(2.5)]], vec![s0]).unwrap();
        // Corrupt the item table the way a hand-edited JSON file would
        // (serde bypasses Dataset::new, so fields arrive unchecked).
        ds.items[0][0] = FeatureValue::Real(f64::NAN);
        assert!(matches!(
            ds.append_action(0, Action::new(1, 0, 0)),
            Err(CoreError::InvalidFeatureValue { feature: 0, .. })
        ));
        let s1 = ActionSequence::new(1, vec![Action::new(0, 1, 0)]).unwrap();
        assert!(matches!(
            ds.push_sequence(s1),
            Err(CoreError::InvalidFeatureValue { feature: 0, .. })
        ));
        assert_eq!(ds.n_actions(), 1);
        assert_eq!(ds.n_users(), 1);
    }

    #[test]
    fn dataset_validate_catches_corruption() {
        let schema = tiny_schema();
        let items = vec![vec![FeatureValue::Categorical(0)]];
        let s0 = ActionSequence::new(0, vec![Action::new(0, 0, 0), Action::new(1, 0, 0)]).unwrap();
        let ds = Dataset::new(schema, items, vec![s0]).unwrap();
        ds.validate().unwrap();

        // Out-of-range category.
        let mut bad = ds.clone();
        bad.items[0][0] = FeatureValue::Categorical(99);
        assert!(matches!(
            bad.validate(),
            Err(CoreError::CategoryOutOfBounds { value: 99, .. })
        ));

        // Unsorted actions inside a sequence.
        let mut bad = ds.clone();
        bad.sequences[0].actions[1].time = -5;
        assert!(matches!(
            bad.validate(),
            Err(CoreError::UnsortedSequence { user: 0, .. })
        ));

        // Dangling item reference.
        let mut bad = ds.clone();
        bad.sequences[0].actions[0].item = 7;
        assert!(matches!(
            bad.validate(),
            Err(CoreError::FeatureIndexOutOfBounds { index: 7, .. })
        ));

        // Stale cached count.
        let mut bad = ds.clone();
        bad.n_actions = 9;
        assert!(matches!(
            bad.validate(),
            Err(CoreError::LengthMismatch {
                context: "cached action count vs actual actions",
                ..
            })
        ));
    }

    #[test]
    fn assignments_monotonicity_check() {
        let ok = SkillAssignments {
            per_user: vec![vec![1, 1, 2, 3], vec![2, 2]],
        };
        assert!(ok.is_monotone());
        let bad = SkillAssignments {
            per_user: vec![vec![1, 3, 2]],
        };
        assert!(!bad.is_monotone());
    }

    #[test]
    fn level_histogram_counts_all_levels() {
        let a = SkillAssignments {
            per_user: vec![vec![1, 1, 2], vec![3]],
        };
        assert_eq!(a.level_histogram(3), vec![2, 1, 1]);
        assert_eq!(a.n_actions(), 4);
    }

    #[test]
    fn subset_users_filters_sequences() {
        let schema = tiny_schema();
        let items = vec![vec![FeatureValue::Categorical(0)]];
        let mk = |u: UserId, n: usize| {
            ActionSequence::new(u, (0..n).map(|t| Action::new(t as i64, u, 0)).collect()).unwrap()
        };
        let ds = Dataset::new(schema, items, vec![mk(0, 2), mk(1, 5)]).unwrap();
        let long = ds.subset_users(|s| s.len() >= 4).unwrap();
        assert_eq!(long.n_users(), 1);
        assert_eq!(long.sequences()[0].user, 1);
    }
}
