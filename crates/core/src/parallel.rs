//! Parallel training steps (paper §IV-C).
//!
//! Three independent parallelization techniques, each toggleable so the
//! efficiency experiments (Table XIII, Fig. 7) can measure them separately:
//!
//! 1. **User-parallel assignment** — sequences are mutually independent, so
//!    the DP of the assignment step fans out across worker threads.
//! 2. **Skill-parallel update** — parameters `θ_f(s)` and `θ_f(s')` are
//!    independent for `s ≠ s'`; workers own disjoint level sets.
//! 3. **Feature-parallel update** — our multi-faceted model additionally
//!    decomposes by feature (not available to the ID baseline); workers own
//!    disjoint feature sets.
//!
//! Orthogonally, [`ParallelConfig::emission`] toggles the shared
//! [`EmissionTable`]: when enabled (the default) the assignment step reads
//! precomputed `log P(i | s)` rows instead of re-evaluating distributions
//! per action; when disabled it runs the direct per-action path, so the
//! table's contribution can be measured in isolation. When the table is
//! enabled, [`ParallelConfig::emission_f32`] additionally selects the
//! compact `f32` storage mode ([`CompactEmissionTable`]): scores are still
//! accumulated in `f64` at build time, then rounded once per cell, halving
//! the table's memory at the cost of one `f32` rounding per DP read.
//!
//! Workers are plain `std::thread::scope` threads; no shared mutable state,
//! results are merged on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::assign::{
    assign_sequence_with_compact_table_ws, assign_sequence_with_table_ws, assign_sequence_ws,
    AssignWorkspace, SequenceAssignment,
};
use crate::dist::{FeatureAccumulator, FeatureDistribution};
use crate::emission::{CompactEmissionTable, EmissionTable};
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{Dataset, SkillAssignments, SkillLevel};
use crate::update::accumulate;

/// Which steps run in parallel, and on how many worker threads.
///
/// Prefer the `with_*` builder methods over struct-literal field pokes:
///
/// ```
/// use upskill_core::parallel::ParallelConfig;
/// let cfg = ParallelConfig::sequential().with_users(true).with_threads(4);
/// assert!(cfg.users && cfg.threads == 4);
/// ```
///
/// The fields stay `pub` for one release so existing struct literals keep
/// compiling, but they are considered a legacy surface: new code should go
/// through the builders, which keep working if fields are ever privatized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParallelConfig {
    /// Parallelize the assignment step across users.
    pub users: bool,
    /// Parallelize the update step across skill levels.
    pub skills: bool,
    /// Parallelize the update step across features.
    pub features: bool,
    /// Number of worker threads (≥ 1).
    pub threads: usize,
    /// Share one precomputed [`EmissionTable`] across the assignment step
    /// (on by default). Disable to re-evaluate `log P(i | s)` per action —
    /// the measurable baseline for the efficiency experiments.
    pub emission: bool,
    /// Store the shared emission table as `f32` ([`CompactEmissionTable`])
    /// instead of `f64` (off by default). Cells are accumulated in `f64`
    /// and rounded once, so scores differ from the full table by at most
    /// one rounding per cell; assignments are identical whenever path
    /// scores are separated by more than that. Only consulted when
    /// [`ParallelConfig::emission`] is enabled. Absent in bundles written
    /// by older releases, hence the serde default.
    #[serde(default)]
    pub emission_f32: bool,
    /// Carry a persistent [`crate::incremental::StatsGrid`] across train
    /// iterations and apply per-action deltas only where the assigned level
    /// moved (on by default). Disable to re-accumulate sufficient
    /// statistics from scratch every iteration — the measurable baseline
    /// for `bench_incremental`.
    pub incremental: bool,
}

impl ParallelConfig {
    /// Fully sequential execution (emission table still enabled).
    pub fn sequential() -> Self {
        Self {
            users: false,
            skills: false,
            features: false,
            threads: 1,
            emission: true,
            emission_f32: false,
            incremental: true,
        }
    }

    /// All three techniques enabled on `threads` workers.
    pub fn all(threads: usize) -> Self {
        Self {
            users: true,
            skills: true,
            features: true,
            threads,
            emission: true,
            emission_f32: false,
            incremental: true,
        }
    }

    /// Returns `self` with user-parallel assignment toggled.
    pub fn with_users(mut self, users: bool) -> Self {
        self.users = users;
        self
    }

    /// Returns `self` with skill-parallel updates toggled.
    pub fn with_skills(mut self, skills: bool) -> Self {
        self.skills = skills;
        self
    }

    /// Returns `self` with feature-parallel updates toggled.
    pub fn with_features(mut self, features: bool) -> Self {
        self.features = features;
        self
    }

    /// Returns `self` with the shared emission table toggled.
    pub fn with_emission(mut self, emission: bool) -> Self {
        self.emission = emission;
        self
    }

    /// Returns `self` with the `f32` emission-table storage mode toggled.
    pub fn with_emission_f32(mut self, emission_f32: bool) -> Self {
        self.emission_f32 = emission_f32;
        self
    }

    /// Returns `self` with the persistent incremental statistics grid
    /// toggled.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Returns `self` with the worker-thread count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(CoreError::InvalidParallelism { threads: 0 });
        }
        Ok(())
    }

    /// Whether any update-step parallelism is enabled.
    pub fn update_parallel(&self) -> bool {
        (self.skills || self.features) && self.threads > 1
    }

    /// Worker count for a chunked run over `n_chunks` chunks: the
    /// configured thread count clamped to the number of chunks, never
    /// below one. A chunk is the unit of work ownership, so spawning
    /// more workers than chunks would only create idle threads — tiny
    /// datasets (or one-giant-chunk configurations) run sequentially.
    /// User-level parallelism off (`users == false`) also clamps to one.
    pub fn workers_for_chunks(&self, n_chunks: usize) -> usize {
        if !self.users {
            return 1;
        }
        self.threads.min(n_chunks).max(1)
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Assignment step with optional user-level parallelism.
///
/// Returns the per-user assignments (in dataset order) and the total path
/// log-likelihood.
pub fn assign_all_parallel(
    model: &SkillModel,
    dataset: &Dataset,
    config: &ParallelConfig,
) -> Result<(SkillAssignments, f64)> {
    config.validate()?;
    let n_users = dataset.n_users();
    if !config.users || config.threads <= 1 || n_users <= 1 {
        return if !config.emission {
            crate::assign::assign_all_direct(model, dataset)
        } else if config.emission_f32 {
            let table = CompactEmissionTable::build(model, dataset);
            crate::assign::assign_all_with_compact_table(&table, dataset)
        } else {
            crate::assign::assign_all(model, dataset)
        };
    }

    if config.emission {
        // The emission table is itself filled in parallel (partitioned
        // over items), then shared read-only by every assignment worker.
        let table = EmissionTable::build_parallel(model, dataset, config.threads)?;
        if config.emission_f32 {
            // Round once from the f64 build, then drop the wide table so
            // peak memory during assignment is the compact one.
            let compact = CompactEmissionTable::from_table(&table);
            drop(table);
            return assign_all_parallel_with_compact_table(&compact, dataset, config);
        }
        return assign_all_parallel_with_table(&table, dataset, config);
    }

    let n_workers = config.threads.min(n_users);
    let next = AtomicUsize::new(0);
    let sequences = dataset.sequences();

    // Work-stealing over a shared index counter: sequences vary wildly in
    // length, so static chunking would leave workers idle.
    let results: Vec<Result<Vec<(usize, SequenceAssignment)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || -> Result<Vec<(usize, SequenceAssignment)>> {
                    // One DP workspace per worker: scratch is reused for
                    // every sequence this worker pulls off the queue.
                    let mut ws = AssignWorkspace::new();
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_users {
                            break;
                        }
                        let a = assign_sequence_ws(model, dataset, &sequences[idx], &mut ws)?;
                        out.push((idx, a));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or(Err(CoreError::WorkerPanicked { step: "assignment" }))
            })
            .collect()
    });

    gather_assignments(results, n_users)
}

/// [`assign_all_parallel`] against a caller-provided emission table —
/// already built, or carried over from the previous iteration and
/// incrementally refreshed via
/// [`EmissionTable::refresh_levels`](crate::emission::EmissionTable::refresh_levels).
/// Same user-parallel work-stealing pattern; the sequential fallback reads
/// the table too, so results are identical to building the table inline.
pub fn assign_all_parallel_with_table(
    table: &EmissionTable,
    dataset: &Dataset,
    config: &ParallelConfig,
) -> Result<(SkillAssignments, f64)> {
    config.validate()?;
    let n_users = dataset.n_users();
    if !config.users || config.threads <= 1 || n_users <= 1 {
        return crate::assign::assign_all_with_table(table, dataset);
    }

    let n_workers = config.threads.min(n_users);
    let next = AtomicUsize::new(0);
    let sequences = dataset.sequences();

    let results: Vec<Result<Vec<(usize, SequenceAssignment)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || -> Result<Vec<(usize, SequenceAssignment)>> {
                    let mut ws = AssignWorkspace::new();
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_users {
                            break;
                        }
                        let a = assign_sequence_with_table_ws(table, &sequences[idx], &mut ws)?;
                        out.push((idx, a));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or(Err(CoreError::WorkerPanicked { step: "assignment" }))
            })
            .collect()
    });

    gather_assignments(results, n_users)
}

/// [`assign_all_parallel_with_table`] for the `f32` storage mode: the same
/// user-parallel work-stealing over a shared read-only
/// [`CompactEmissionTable`], each worker widening rows into its own DP
/// workspace.
pub fn assign_all_parallel_with_compact_table(
    table: &CompactEmissionTable,
    dataset: &Dataset,
    config: &ParallelConfig,
) -> Result<(SkillAssignments, f64)> {
    config.validate()?;
    let n_users = dataset.n_users();
    if !config.users || config.threads <= 1 || n_users <= 1 {
        return crate::assign::assign_all_with_compact_table(table, dataset);
    }

    let n_workers = config.threads.min(n_users);
    let next = AtomicUsize::new(0);
    let sequences = dataset.sequences();

    let results: Vec<Result<Vec<(usize, SequenceAssignment)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || -> Result<Vec<(usize, SequenceAssignment)>> {
                    let mut ws = AssignWorkspace::new();
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_users {
                            break;
                        }
                        let a =
                            assign_sequence_with_compact_table_ws(table, &sequences[idx], &mut ws)?;
                        out.push((idx, a));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or(Err(CoreError::WorkerPanicked { step: "assignment" }))
            })
            .collect()
    });

    gather_assignments(results, n_users)
}

/// Merges per-worker `(user index, assignment)` chunks back into dataset
/// order, summing path log-likelihoods.
fn gather_assignments(
    results: Vec<Result<Vec<(usize, SequenceAssignment)>>>,
    n_users: usize,
) -> Result<(SkillAssignments, f64)> {
    let mut per_user: Vec<Vec<SkillLevel>> = vec![Vec::new(); n_users];
    let mut total_ll = 0.0;
    for chunk in results {
        for (idx, a) in chunk? {
            total_ll += a.log_likelihood;
            per_user[idx] = a.levels;
        }
    }
    Ok((SkillAssignments { per_user }, total_ll))
}

/// Update step with optional skill- and/or feature-level parallelism.
///
/// Each worker owns a disjoint subset of the `S × F` cell grid (split by
/// level, by feature, or by both, per the flags), scans the dataset
/// accumulating only its cells, and fits them.
pub fn fit_model_parallel(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    n_levels: usize,
    lambda: f64,
    config: &ParallelConfig,
) -> Result<SkillModel> {
    config.validate()?;
    let n_features = dataset.schema().len();
    if !config.update_parallel() {
        return crate::update::fit_model(dataset, assignments, n_levels, lambda);
    }

    // Partition the cell grid. Workers own whole levels and/or features.
    let level_parts = if config.skills {
        config.threads.min(n_levels)
    } else {
        1
    };
    let feature_parts = if config.features {
        (config.threads / level_parts).max(1).min(n_features)
    } else {
        1
    };
    let owner =
        |s: usize, f: usize| -> usize { (s % level_parts) * feature_parts + (f % feature_parts) };
    let n_workers = level_parts * feature_parts;

    let schema = dataset.schema();
    let results: Vec<Result<Vec<(usize, usize, FeatureDistribution)>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|worker| {
                    scope.spawn(
                        move || -> Result<Vec<(usize, usize, FeatureDistribution)>> {
                            // Accumulators only for owned cells.
                            let mut cells: Vec<(usize, usize, FeatureAccumulator)> = Vec::new();
                            let mut index = vec![usize::MAX; n_levels * n_features];
                            for s in 0..n_levels {
                                for f in 0..n_features {
                                    if owner(s, f) == worker {
                                        index[s * n_features + f] = cells.len();
                                        cells.push((
                                            s,
                                            f,
                                            FeatureAccumulator::new(schema.kind(f)?),
                                        ));
                                    }
                                }
                            }
                            if cells.is_empty() {
                                return Ok(Vec::new());
                            }
                            for (seq, levels) in
                                dataset.sequences().iter().zip(&assignments.per_user)
                            {
                                if seq.len() != levels.len() {
                                    return Err(CoreError::LengthMismatch {
                                        context: "assignment vs sequence length",
                                        left: levels.len(),
                                        right: seq.len(),
                                    });
                                }
                                for (action, &level) in seq.actions().iter().zip(levels) {
                                    let s = level as usize - 1;
                                    if s >= n_levels {
                                        return Err(CoreError::InvalidSkillCount {
                                            requested: level as usize,
                                        });
                                    }
                                    let features = dataset.item_features(action.item);
                                    for f in 0..n_features {
                                        let slot = index[s * n_features + f];
                                        if slot != usize::MAX {
                                            cells[slot].2.push(&features[f])?;
                                        }
                                    }
                                }
                            }
                            cells
                                .into_iter()
                                .map(|(s, f, acc)| Ok((s, f, acc.fit(lambda)?)))
                                .collect()
                        },
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or(Err(CoreError::WorkerPanicked { step: "update" }))
                })
                .collect()
        });

    // Assemble the grid.
    let mut grid: Vec<Vec<Option<FeatureDistribution>>> =
        (0..n_levels).map(|_| vec![None; n_features]).collect();
    for chunk in results {
        for (s, f, dist) in chunk? {
            grid[s][f] = Some(dist);
        }
    }
    let cells: Vec<Vec<FeatureDistribution>> = grid
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|c| {
                    c.ok_or(CoreError::DegenerateFit {
                        distribution: "parallel update",
                        reason: "unowned cell in partition",
                    })
                })
                .collect()
        })
        .collect::<Result<_>>()?;
    SkillModel::new(schema.clone(), n_levels, cells)
}

/// Reference helper exposing the sequential accumulate for equivalence tests.
#[doc(hidden)]
pub fn accumulate_sequential(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    n_levels: usize,
) -> Result<Vec<Vec<FeatureAccumulator>>> {
    accumulate(dataset, assignments, n_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::init::initialize_model;
    use crate::types::{Action, ActionSequence};

    #[test]
    fn workers_for_chunks_clamps_to_chunk_count() {
        let config = ParallelConfig::all(8);
        assert_eq!(config.workers_for_chunks(3), 3);
        assert_eq!(config.workers_for_chunks(8), 8);
        assert_eq!(config.workers_for_chunks(100), 8);
        // Never zero, even for an empty stream.
        assert_eq!(config.workers_for_chunks(0), 1);
        // User-level parallelism off forces a sequential chunk walk.
        let no_users = ParallelConfig::all(8).with_users(false);
        assert_eq!(no_users.workers_for_chunks(100), 1);
        assert_eq!(ParallelConfig::sequential().workers_for_chunks(100), 1);
    }

    fn build_dataset(n_users: usize, len: usize) -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 4 },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..4u32)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(2 + c as u64 * 3),
                ]
            })
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        // Deterministic progression-ish pattern per user.
                        let item = ((t * 4 / len) as u32 + u) % 4;
                        Action::new(t as i64, u, item)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ParallelConfig::sequential()
            .with_threads(0)
            .validate()
            .is_err());
        assert!(ParallelConfig::all(4).validate().is_ok());
        assert!(!ParallelConfig::sequential().update_parallel());
        assert!(ParallelConfig::all(2).update_parallel());
    }

    #[test]
    fn parallel_assignment_matches_sequential() {
        let ds = build_dataset(7, 12);
        let model = initialize_model(&ds, 3, 4, 0.01).unwrap();
        let (seq_a, seq_ll) = crate::assign::assign_all(&model, &ds).unwrap();
        for threads in [2, 3, 5] {
            for emission in [true, false] {
                let cfg = ParallelConfig::sequential()
                    .with_users(true)
                    .with_threads(threads)
                    .with_emission(emission);
                let (par_a, par_ll) = assign_all_parallel(&model, &ds, &cfg).unwrap();
                assert_eq!(seq_a, par_a, "threads={threads} emission={emission}");
                assert!((seq_ll - par_ll).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn emission_toggle_is_bitwise_equivalent_sequentially() {
        let ds = build_dataset(5, 9);
        let model = initialize_model(&ds, 3, 4, 0.01).unwrap();
        let with_table = ParallelConfig::sequential();
        let direct = ParallelConfig::sequential().with_emission(false);
        let (a_t, ll_t) = assign_all_parallel(&model, &ds, &with_table).unwrap();
        let (a_d, ll_d) = assign_all_parallel(&model, &ds, &direct).unwrap();
        assert_eq!(a_t, a_d);
        assert_eq!(ll_t, ll_d);
    }

    #[test]
    fn f32_emission_mode_matches_f64_assignments() {
        let ds = build_dataset(7, 12);
        let model = initialize_model(&ds, 3, 4, 0.01).unwrap();
        let (full_a, full_ll) = crate::assign::assign_all(&model, &ds).unwrap();
        // Sequential fallback and two thread counts all go through the
        // compact table when the flag is set.
        for threads in [1, 2, 5] {
            let cfg = ParallelConfig::sequential()
                .with_users(threads > 1)
                .with_threads(threads)
                .with_emission_f32(true);
            let (a, ll) = assign_all_parallel(&model, &ds, &cfg).unwrap();
            assert_eq!(full_a, a, "threads={threads}");
            let rel = (full_ll - ll).abs() / full_ll.abs().max(1.0);
            assert!(rel < 1e-6, "threads={threads} relative ll gap {rel}");
        }
    }

    #[test]
    fn emission_f32_defaults_off_and_deserializes_from_old_bundles() {
        assert!(!ParallelConfig::sequential().emission_f32);
        assert!(!ParallelConfig::all(4).emission_f32);
        assert!(
            ParallelConfig::sequential()
                .with_emission_f32(true)
                .emission_f32
        );
        // A config serialized before the field existed must round-trip.
        let legacy = r#"{"users":true,"skills":false,"features":false,
                         "threads":2,"emission":true,"incremental":true}"#;
        let cfg: ParallelConfig = serde_json::from_str(legacy).unwrap();
        assert!(!cfg.emission_f32);
        assert_eq!(cfg.threads, 2);
        let json = serde_json::to_string(&cfg.with_emission_f32(true)).unwrap();
        let back: ParallelConfig = serde_json::from_str(&json).unwrap();
        assert!(back.emission_f32);
    }

    #[test]
    fn parallel_assignment_disabled_flag_falls_through() {
        let ds = build_dataset(3, 8);
        let model = initialize_model(&ds, 2, 4, 0.01).unwrap();
        let cfg = ParallelConfig::sequential().with_threads(4);
        let (a, _) = assign_all_parallel(&model, &ds, &cfg).unwrap();
        assert!(a.is_monotone());
    }

    #[test]
    fn parallel_update_matches_sequential() {
        let ds = build_dataset(6, 10);
        let model = initialize_model(&ds, 3, 4, 0.01).unwrap();
        let (assignments, _) = crate::assign::assign_all(&model, &ds).unwrap();
        let sequential = crate::update::fit_model(&ds, &assignments, 3, 0.01).unwrap();
        for (skills, features) in [(true, false), (false, true), (true, true)] {
            for threads in [2, 3, 6] {
                let cfg = ParallelConfig::sequential()
                    .with_skills(skills)
                    .with_features(features)
                    .with_threads(threads);
                let parallel = fit_model_parallel(&ds, &assignments, 3, 0.01, &cfg).unwrap();
                // Compare via likelihood of every item at every level.
                for item in 0..ds.n_items() {
                    for s in 1..=3u8 {
                        let a = sequential.item_log_likelihood(ds.item_features(item as u32), s);
                        let b = parallel.item_log_likelihood(ds.item_features(item as u32), s);
                        assert!(
                            (a - b).abs() < 1e-12,
                            "skills={skills} features={features} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_update_single_thread_falls_through() {
        let ds = build_dataset(2, 6);
        let model = initialize_model(&ds, 2, 4, 0.01).unwrap();
        let (assignments, _) = crate::assign::assign_all(&model, &ds).unwrap();
        let cfg = ParallelConfig::sequential()
            .with_skills(true)
            .with_features(true);
        let m = fit_model_parallel(&ds, &assignments, 2, 0.01, &cfg).unwrap();
        assert_eq!(m.n_levels(), 2);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let ds = build_dataset(2, 5);
        let model = initialize_model(&ds, 2, 4, 0.01).unwrap();
        let cfg = ParallelConfig::all(64);
        let (a, _) = assign_all_parallel(&model, &ds, &cfg).unwrap();
        let m = fit_model_parallel(&ds, &a, 2, 0.01, &cfg).unwrap();
        assert_eq!(m.n_features(), 2);
    }
}
