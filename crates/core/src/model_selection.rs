//! Skill-count selection by held-out likelihood (paper §VI-B, Fig. 3).
//!
//! For domains without prior knowledge of `S`, the paper randomly splits the
//! data 90/10, trains one model per candidate `S`, and keeps the `S` that
//! maximizes the log-likelihood of the held-out actions. The skill level of
//! a held-out action is borrowed from the *chronologically closest* training
//! action of the same user.

use serde::{Deserialize, Serialize};

use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::rng::SplitMix64;
use crate::train::{train, TrainConfig, TrainResult};
use crate::types::{Action, ActionSequence, Dataset, SkillAssignments, SkillLevel, Timestamp};

/// A train/test split of action sequences. Test actions keep their user so
/// skill levels can be transferred from the user's training timeline.
#[derive(Debug, Clone)]
pub struct ActionSplit {
    /// The training dataset (same items/schema, test actions removed).
    pub train: Dataset,
    /// Held-out actions, grouped by training-sequence index; empty groups
    /// are possible for users whose actions all stayed in training.
    pub test: Vec<Vec<Action>>,
}

/// Randomly holds out `test_fraction` of each user's actions.
///
/// Users whose entire sequence would be held out keep their first action in
/// training so the nearest-action skill transfer stays defined.
pub fn split_actions(dataset: &Dataset, test_fraction: f64, seed: u64) -> Result<ActionSplit> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(CoreError::InvalidProbability {
            context: "test fraction",
            value: test_fraction,
        });
    }
    let mut rng = SplitMix64::new(seed);
    let mut train_seqs = Vec::with_capacity(dataset.n_users());
    let mut test = Vec::with_capacity(dataset.n_users());
    for seq in dataset.sequences() {
        let mut train_actions = Vec::with_capacity(seq.len());
        let mut test_actions = Vec::new();
        for &action in seq.actions() {
            if rng.next_f64() < test_fraction {
                test_actions.push(action);
            } else {
                train_actions.push(action);
            }
        }
        if train_actions.is_empty() {
            if let Some(first) = test_actions.first().copied() {
                train_actions.push(first);
                test_actions.remove(0);
            }
        }
        train_seqs.push(ActionSequence::new(seq.user, train_actions)?);
        test.push(test_actions);
    }
    let train = Dataset::new(
        dataset.schema().clone(),
        dataset.items().to_vec(),
        train_seqs,
    )?;
    Ok(ActionSplit { train, test })
}

/// Skill level of the chronologically closest action to `t` in a training
/// sequence (`times` sorted ascending, `levels` parallel). Ties prefer the
/// earlier action.
pub fn nearest_skill(
    times: &[Timestamp],
    levels: &[SkillLevel],
    t: Timestamp,
) -> Option<SkillLevel> {
    if times.is_empty() || times.len() != levels.len() {
        return None;
    }
    let idx = match times.binary_search(&t) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= times.len() {
                times.len() - 1
            } else {
                let before = t - times[i - 1];
                let after = times[i] - t;
                if after < before {
                    i
                } else {
                    i - 1
                }
            }
        }
    };
    Some(levels[idx])
}

/// Log-likelihood of held-out actions under a trained model, transferring
/// each test action's skill level from the user's nearest training action.
///
/// Returns `(log_likelihood, n_scored)`; test actions whose user has no
/// training actions are skipped (possible only for empty sequences).
///
/// Emission scores come from one shared [`EmissionTable`] over the
/// training item set, so each held-out action costs a table lookup rather
/// than a fresh distribution evaluation (every candidate `S` in
/// [`sweep_skill_counts`] rescores the same items many times).
pub fn heldout_log_likelihood(
    model: &SkillModel,
    split: &ActionSplit,
    assignments: &SkillAssignments,
) -> Result<(f64, usize)> {
    if assignments.per_user.len() != split.train.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs training sequences",
            left: assignments.per_user.len(),
            right: split.train.n_users(),
        });
    }
    let table = EmissionTable::build(model, &split.train);
    let mut total = 0.0;
    let mut scored = 0usize;
    for ((seq, levels), test_actions) in split
        .train
        .sequences()
        .iter()
        .zip(&assignments.per_user)
        .zip(&split.test)
    {
        let times: Vec<Timestamp> = seq.actions().iter().map(|a| a.time).collect();
        for action in test_actions {
            let Some(s) = nearest_skill(&times, levels, action.time) else {
                continue;
            };
            let ll = table.log_likelihood(action.item, s);
            total += ll;
            scored += 1;
        }
    }
    Ok((total, scored))
}

/// One candidate's result in the skill-count sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkillCountCandidate {
    /// Number of skill levels evaluated.
    pub n_levels: usize,
    /// Held-out log-likelihood (total over scored test actions).
    pub heldout_ll: f64,
    /// Held-out log-likelihood per scored action (comparable across `S`).
    pub heldout_ll_per_action: f64,
    /// Number of test actions scored.
    pub n_scored: usize,
    /// Training iterations used.
    pub train_iterations: usize,
}

/// Runs the Fig. 3 procedure: trains one model per candidate `S` on a 90/10
/// split and reports held-out likelihoods. Returns candidates in input
/// order; the caller picks the arg-max (see [`best_skill_count`]).
pub fn sweep_skill_counts(
    dataset: &Dataset,
    candidates: &[usize],
    base_config: &TrainConfig,
    test_fraction: f64,
    seed: u64,
) -> Result<Vec<SkillCountCandidate>> {
    let split = split_actions(dataset, test_fraction, seed)?;
    let mut out = Vec::with_capacity(candidates.len());
    for &n_levels in candidates {
        let config = TrainConfig {
            n_levels,
            ..*base_config
        };
        let TrainResult {
            model,
            assignments,
            trace,
            ..
        } = train(&split.train, &config)?;
        let (ll, scored) = heldout_log_likelihood(&model, &split, &assignments)?;
        out.push(SkillCountCandidate {
            n_levels,
            heldout_ll: ll,
            heldout_ll_per_action: if scored > 0 {
                ll / scored as f64
            } else {
                f64::NAN
            },
            n_scored: scored,
            train_iterations: trace.len(),
        });
    }
    Ok(out)
}

/// The candidate with the highest held-out log-likelihood.
pub fn best_skill_count(candidates: &[SkillCountCandidate]) -> Option<usize> {
    candidates
        .iter()
        .max_by(|a, b| {
            a.heldout_ll
                .partial_cmp(&b.heldout_ll)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|c| c.n_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};

    fn progression_dataset(n_users: usize, len: usize, n_cats: u32) -> Dataset {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: n_cats,
        }])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..n_cats)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        let cat = (t * n_cats as usize / len) as u32;
                        Action::new(t as i64, u, cat)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn split_preserves_actions_and_is_deterministic() {
        let ds = progression_dataset(10, 20, 4);
        let a = split_actions(&ds, 0.1, 99).unwrap();
        let b = split_actions(&ds, 0.1, 99).unwrap();
        let count =
            |s: &ActionSplit| s.train.n_actions() + s.test.iter().map(Vec::len).sum::<usize>();
        assert_eq!(count(&a), ds.n_actions());
        assert_eq!(a.train.n_actions(), b.train.n_actions());
        // About 10% held out.
        let held: usize = a.test.iter().map(Vec::len).sum();
        assert!(held > 0 && held < ds.n_actions() / 4, "held {held}");
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let ds = progression_dataset(2, 5, 2);
        assert!(split_actions(&ds, 1.0, 0).is_err());
        assert!(split_actions(&ds, -0.1, 0).is_err());
    }

    #[test]
    fn split_never_empties_a_training_sequence() {
        let ds = progression_dataset(20, 3, 2);
        // Aggressive fraction: without the guard, many users would lose all.
        let split = split_actions(&ds, 0.9, 5).unwrap();
        for seq in split.train.sequences() {
            assert!(!seq.is_empty());
        }
    }

    #[test]
    fn nearest_skill_picks_closest_by_time() {
        let times = [0, 10, 20];
        let levels = [1, 2, 3];
        assert_eq!(nearest_skill(&times, &levels, -5), Some(1));
        assert_eq!(nearest_skill(&times, &levels, 4), Some(1));
        assert_eq!(nearest_skill(&times, &levels, 6), Some(2));
        assert_eq!(nearest_skill(&times, &levels, 10), Some(2));
        assert_eq!(nearest_skill(&times, &levels, 99), Some(3));
        // Exact midpoint ties to the earlier action.
        assert_eq!(nearest_skill(&times, &levels, 5), Some(1));
        assert_eq!(nearest_skill(&[], &[], 0), None);
    }

    #[test]
    fn sweep_prefers_true_skill_count() {
        // Data generated with 3 clear stages: S=3 should beat S=1.
        let ds = progression_dataset(30, 18, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(6);
        let candidates = sweep_skill_counts(&ds, &[1, 3], &cfg, 0.1, 7).unwrap();
        assert_eq!(candidates.len(), 2);
        let best = best_skill_count(&candidates).unwrap();
        assert_eq!(best, 3, "candidates: {candidates:?}");
    }

    #[test]
    fn heldout_ll_is_finite_and_scores_most_actions() {
        let ds = progression_dataset(15, 12, 3);
        let split = split_actions(&ds, 0.15, 3).unwrap();
        let cfg = TrainConfig::new(3).with_min_init_actions(5);
        let result = train(&split.train, &cfg).unwrap();
        let (ll, scored) =
            heldout_log_likelihood(&result.model, &split, &result.assignments).unwrap();
        assert!(ll.is_finite());
        let held: usize = split.test.iter().map(Vec::len).sum();
        assert_eq!(scored, held);
    }

    #[test]
    fn best_skill_count_empty_is_none() {
        assert_eq!(best_skill_count(&[]), None);
    }
}
