//! Recommendation for upskilling — the system the paper motivates (Fig. 1)
//! and sketches as future work (§VII): combine the learned skill level of a
//! target user with item difficulty estimates to surface items that are
//! *moderately challenging* — difficult enough to stretch the user, easy
//! enough to complete — and that still match the user's interests.
//!
//! Scoring combines two signals:
//!
//! - **difficulty fit** — a triangular kernel centred slightly above the
//!   user's current level (`target_offset`, e.g. +0.3), zero outside
//!   `[level − lower_slack, level + upper_slack]`;
//! - **interest** — the generative likelihood `P(i | s)` of the item at
//!   the user's level, normalized per candidate set; items a user at this
//!   level plausibly selects rank higher.
//!
//! `interest_weight` blends the two (0 = difficulty only, 1 = interest
//! only).

use serde::{Deserialize, Serialize};

use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{Dataset, ItemId, SkillLevel};

/// Tuning for the upskilling recommender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommendConfig {
    /// How far above the current level the ideal item sits (e.g. 0.3).
    pub target_offset: f64,
    /// Maximum difficulty *below* the current level still considered.
    pub lower_slack: f64,
    /// Maximum difficulty *above* the current level still considered.
    pub upper_slack: f64,
    /// Blend between difficulty fit (0.0) and interest (1.0).
    pub interest_weight: f64,
    /// Number of items to return.
    pub k: usize,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        Self {
            target_offset: 0.3,
            lower_slack: 0.2,
            upper_slack: 0.8,
            interest_weight: 0.3,
            k: 10,
        }
    }
}

impl RecommendConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.interest_weight) {
            return Err(CoreError::InvalidProbability {
                context: "interest weight",
                value: self.interest_weight,
            });
        }
        if self.lower_slack < 0.0 || self.upper_slack <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "difficulty slack",
                value: self.lower_slack.min(self.upper_slack),
            });
        }
        if self.k == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        Ok(())
    }
}

/// One recommended item with its score decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended item.
    pub item: ItemId,
    /// Its estimated difficulty.
    pub difficulty: f64,
    /// Difficulty-fit component in `[0, 1]`.
    pub difficulty_fit: f64,
    /// Interest component in `[0, 1]` (normalized within the candidate set).
    pub interest: f64,
    /// Final blended score.
    pub score: f64,
}

/// Recommends items for upskilling a user at `level`.
///
/// `difficulty[i]` is the estimated difficulty of item `i` (use
/// [`crate::difficulty::generation_difficulty_all`]); `exclude` marks items
/// the user already consumed. Returns at most `config.k` items sorted by
/// descending score; may return fewer if the difficulty band is sparse.
pub fn recommend_for_level(
    model: &SkillModel,
    dataset: &Dataset,
    difficulty: &[f64],
    level: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
) -> Result<Vec<Recommendation>> {
    if difficulty.len() != dataset.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "difficulty vector vs items",
            left: difficulty.len(),
            right: dataset.n_items(),
        });
    }
    recommend_with_interest(difficulty, level, exclude, config, &|item| {
        model.item_log_likelihood(dataset.item_features(item), level)
    })
}

/// [`recommend_for_level`] with the interest signal read from a precomputed
/// [`EmissionTable`] row instead of fresh distribution evaluations —
/// identical output for a table built from the same model and dataset.
pub fn recommend_for_level_with_table(
    table: &EmissionTable,
    difficulty: &[f64],
    level: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
) -> Result<Vec<Recommendation>> {
    if difficulty.len() != table.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "difficulty vector vs items",
            left: difficulty.len(),
            right: table.n_items(),
        });
    }
    recommend_with_interest(difficulty, level, exclude, config, &|item| {
        table.log_likelihood(item, level)
    })
}

/// One band candidate: `(item, difficulty, fit, log P(item | level))`.
type Candidate = (ItemId, f64, f64, f64);

/// A precomputed recommendation band for one skill level: every item
/// whose difficulty falls inside the level's slack window, with its
/// difficulty-fit kernel value and interest log-likelihood already
/// evaluated, plus a fully ranked no-exclusion scoring of those
/// candidates. One band serves every user at this level; exclusion
/// filtering is deferred to [`recommend_from_band`].
///
/// Band membership, difficulty fit, and interest weighting are all
/// fixed by the *build-time* config; only `k` varies per query.
///
/// **Exactness.** An excluded item never influences the surviving
/// candidates' `(fit, log P)` values, and the interest normalizer —
/// the survivors' maximum log-likelihood — equals the band-wide
/// maximum whenever no maximum-achieving item is excluded. In that
/// (typical) case the prebuilt ranking restricted to the survivors IS
/// the full recomputation, so a query just walks it; when a
/// max-achiever is excluded, the query falls back to rescoring the
/// raw candidates with the survivors' own maximum. Either way the
/// output is bitwise identical to the corresponding full scan.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelBand {
    level: SkillLevel,
    config: RecommendConfig,
    candidates: Vec<Candidate>,
    /// All candidates scored with no exclusion, fully sorted.
    ranked: Vec<Recommendation>,
    /// Candidates whose interest log-likelihood attains the band
    /// maximum (the normalization anchors).
    max_items: Vec<ItemId>,
}

impl LevelBand {
    /// The skill level this band was built for.
    pub fn level(&self) -> SkillLevel {
        self.level
    }

    /// Number of in-band candidate items (before any exclusion).
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the difficulty band contains no items at all.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The configuration the band was built (and is scored) with.
    pub fn config(&self) -> &RecommendConfig {
        &self.config
    }

    /// The full no-exclusion ranking of the band's candidates, best
    /// first — the list [`recommend_from_band`] walks on the fast path
    /// and the adaptive policy layer ([`crate::policy`]) re-scores.
    pub fn ranked(&self) -> &[Recommendation] {
        &self.ranked
    }

    /// The interest-normalization anchors: every candidate whose
    /// interest log-likelihood attains the band maximum. Excluding any
    /// of these forces [`recommend_from_band`] onto its rescore
    /// fallback (exposed so tests can drive that path explicitly).
    pub fn max_interest_items(&self) -> &[ItemId] {
        &self.max_items
    }
}

/// Builds the [`LevelBand`] for `level` from a precomputed
/// [`EmissionTable`] — one full scan-and-rank over the items,
/// amortized across every subsequent [`recommend_from_band`] query
/// against it.
pub fn build_level_band(
    table: &EmissionTable,
    difficulty: &[f64],
    level: SkillLevel,
    config: &RecommendConfig,
) -> Result<LevelBand> {
    if difficulty.len() != table.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "difficulty vector vs items",
            left: difficulty.len(),
            right: table.n_items(),
        });
    }
    config.validate()?;
    let candidates = scan_band(difficulty, level, &|_| false, config, &|item| {
        table.log_likelihood(item, level)
    });
    // Rank everything (k = candidate count makes truncation a no-op).
    let rank_config = RecommendConfig {
        k: candidates.len().max(1),
        ..*config
    };
    let ranked = score_candidates(&candidates, &|_| false, &rank_config);
    let mut max_ll = f64::NEG_INFINITY;
    for &(_, _, _, ll) in &candidates {
        if ll > max_ll {
            max_ll = ll;
        }
    }
    // `ll >= max_ll` is value-equality with the maximum without a
    // literal float `==`.
    let max_items: Vec<ItemId> = candidates
        .iter()
        .filter(|&&(_, _, _, ll)| ll >= max_ll)
        .map(|&(item, _, _, _)| item)
        .collect();
    Ok(LevelBand {
        level,
        config: *config,
        candidates,
        ranked,
        max_items,
    })
}

/// Recommends the top `k` non-excluded items from a prebuilt
/// [`LevelBand`] — output-identical to
/// [`recommend_for_level_with_table`] at the band's level with the
/// band's config (`k` overridden). Typically `O(k + excluded)`: the
/// prebuilt ranking is walked directly unless an interest-normalization
/// anchor is excluded (see [`LevelBand`]), which forces a rescore of
/// the raw candidates.
pub fn recommend_from_band(
    band: &LevelBand,
    exclude: &dyn Fn(ItemId) -> bool,
    k: usize,
) -> Result<Vec<Recommendation>> {
    let config = RecommendConfig { k, ..band.config };
    config.validate()?;
    if band.max_items.iter().any(|&item| exclude(item)) {
        // The survivors' interest maximum may shift: rescore.
        return Ok(score_candidates(&band.candidates, exclude, &config));
    }
    let mut out = Vec::with_capacity(k.min(band.ranked.len()));
    for r in &band.ranked {
        if out.len() == k {
            break;
        }
        if exclude(r.item) {
            continue;
        }
        out.push(r.clone());
    }
    Ok(out)
}

/// Shared scoring core; `interest_ll(item)` supplies `log P(item | level)`.
fn recommend_with_interest(
    difficulty: &[f64],
    level: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
    interest_ll: &dyn Fn(ItemId) -> f64,
) -> Result<Vec<Recommendation>> {
    config.validate()?;
    // Exclusion applied during the scan (so `interest_ll` is never
    // evaluated for excluded items); the score pass then sees only
    // survivors and its own filter is a no-op.
    let candidates = scan_band(difficulty, level, exclude, config, interest_ll);
    Ok(score_candidates(&candidates, &|_| false, config))
}

/// Pass 1: collects candidates in the difficulty band with their fit
/// kernel values and raw interest log-likelihoods.
fn scan_band(
    difficulty: &[f64],
    level: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
    interest_ll: &dyn Fn(ItemId) -> f64,
) -> Vec<Candidate> {
    let s = level as f64;
    let target = s + config.target_offset;
    let lo = s - config.lower_slack;
    let hi = s + config.upper_slack;
    // Kernel half-widths (distance from target to each band edge).
    let left_width = (target - lo).max(1e-9);
    let right_width = (hi - target).max(1e-9);

    let mut candidates: Vec<Candidate> = Vec::new();
    for (i, &d) in difficulty.iter().enumerate() {
        let item = i as ItemId;
        if exclude(item) || d < lo || d > hi {
            continue;
        }
        let fit = if d <= target {
            1.0 - (target - d) / left_width
        } else {
            1.0 - (d - target) / right_width
        };
        candidates.push((item, d, fit.clamp(0.0, 1.0), interest_ll(item)));
    }
    candidates
}

/// Total order on recommendations: score descending, then item id
/// ascending (scores are always finite, so `partial_cmp` never ties
/// distinct scores).
fn rec_order(a: &Recommendation, b: &Recommendation) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.item.cmp(&b.item))
}

/// Pass 2: filters, normalizes interest by the surviving candidates'
/// maximum log-likelihood (softmax-free but monotone; `exp(ll − max)`
/// keeps it in `(0, 1]`), blends, selects the top `k`, sorts them.
///
/// When more than `k` candidates survive, an `O(n)` partial selection
/// runs before the sort; because [`rec_order`] is a total order the
/// selected-then-sorted prefix is identical to sorting everything and
/// truncating.
fn score_candidates(
    candidates: &[Candidate],
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
) -> Vec<Recommendation> {
    let mut max_ll = f64::NEG_INFINITY;
    let mut n_survivors = 0usize;
    for &(item, _, _, ll) in candidates {
        if exclude(item) {
            continue;
        }
        n_survivors += 1;
        if ll > max_ll {
            max_ll = ll;
        }
    }
    let w = config.interest_weight;
    let mut recs: Vec<Recommendation> = Vec::with_capacity(n_survivors);
    for &(item, difficulty, fit, ll) in candidates {
        if exclude(item) {
            continue;
        }
        let interest = if max_ll.is_finite() {
            (ll - max_ll).exp()
        } else {
            0.0
        };
        recs.push(Recommendation {
            item,
            difficulty,
            difficulty_fit: fit,
            interest,
            score: (1.0 - w) * fit + w * interest,
        });
    }
    if config.k > 0 && recs.len() > config.k {
        recs.select_nth_unstable_by(config.k - 1, rec_order);
        recs.truncate(config.k);
    }
    recs.sort_by(rec_order);
    recs
}

/// A difficulty ladder: one recommendation batch per level from `from`
/// up to the model's top level — a curriculum sketch in the spirit of the
/// paper's "ranking optimized for skill improvement" direction (§VII).
pub fn upskilling_ladder(
    model: &SkillModel,
    dataset: &Dataset,
    difficulty: &[f64],
    from: SkillLevel,
    exclude: &dyn Fn(ItemId) -> bool,
    config: &RecommendConfig,
) -> Result<Vec<(SkillLevel, Vec<Recommendation>)>> {
    if difficulty.len() != dataset.n_items() {
        return Err(CoreError::LengthMismatch {
            context: "difficulty vector vs items",
            left: difficulty.len(),
            right: dataset.n_items(),
        });
    }
    // One emission table serves every rung of the ladder.
    let table = EmissionTable::build(model, dataset);
    let mut ladder = Vec::new();
    for level in from..=(model.n_levels() as SkillLevel) {
        let recs = recommend_for_level_with_table(&table, difficulty, level, exclude, config)?;
        ladder.push((level, recs));
    }
    Ok(ladder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    /// Three items with difficulties 1.0 / 2.1 / 2.9, model with 3 levels.
    fn setup() -> (SkillModel, Dataset, Vec<f64>) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 3 }]).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..3u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let seq = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 1),
                Action::new(2, 0, 2),
            ],
        )
        .unwrap();
        let ds = Dataset::new(schema.clone(), items, vec![seq]).unwrap();
        let cells = (0..3)
            .map(|s| {
                let mut probs = vec![0.05; 3];
                probs[s] = 0.9;
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        let model = SkillModel::new(schema, 3, cells).unwrap();
        (model, ds, vec![1.0, 2.1, 2.9])
    }

    #[test]
    fn config_validation() {
        assert!(RecommendConfig::default().validate().is_ok());
        assert!(RecommendConfig {
            interest_weight: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RecommendConfig {
            upper_slack: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RecommendConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn recommends_moderately_challenging_items() {
        let (model, ds, difficulty) = setup();
        let config = RecommendConfig {
            target_offset: 0.3,
            lower_slack: 0.2,
            upper_slack: 1.0,
            interest_weight: 0.0,
            k: 10,
        };
        // A level-2 user: item 1 (d=2.1) is the near-perfect fit; item 2
        // (d=2.9) is within slack; item 0 (d=1.0) is out of band.
        let recs = recommend_for_level(&model, &ds, &difficulty, 2, &|_| false, &config).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].item, 1);
        assert!(recs[0].difficulty_fit > recs[1].difficulty_fit);
        assert!(recs.iter().all(|r| r.difficulty >= 1.8));
    }

    #[test]
    fn exclusion_removes_consumed_items() {
        let (model, ds, difficulty) = setup();
        let config = RecommendConfig {
            interest_weight: 0.0,
            upper_slack: 1.0,
            ..Default::default()
        };
        let recs = recommend_for_level(&model, &ds, &difficulty, 2, &|i| i == 1, &config).unwrap();
        assert!(recs.iter().all(|r| r.item != 1));
    }

    #[test]
    fn interest_weight_changes_ranking() {
        let (model, ds, difficulty) = setup();
        // Level-3 user: items 1 (d=2.1, within lower slack?) and 2 (d=2.9).
        let base = RecommendConfig {
            target_offset: 0.0,
            lower_slack: 1.0,
            upper_slack: 1.0,
            interest_weight: 0.0,
            k: 10,
        };
        let by_difficulty =
            recommend_for_level(&model, &ds, &difficulty, 3, &|_| false, &base).unwrap();
        let by_interest = recommend_for_level(
            &model,
            &ds,
            &difficulty,
            3,
            &|_| false,
            &RecommendConfig {
                interest_weight: 1.0,
                ..base
            },
        )
        .unwrap();
        // With pure interest, item 2 (category 2, most likely at level 3)
        // must rank first.
        assert_eq!(by_interest[0].item, 2);
        // With pure difficulty fit and target at exactly 3.0, item 2
        // (d=2.9) is also closest — so instead check the scores differ.
        assert!(by_difficulty
            .iter()
            .zip(&by_interest)
            .any(|(a, b)| (a.score - b.score).abs() > 1e-9 || a.item != b.item));
    }

    #[test]
    fn empty_band_returns_empty() {
        let (model, ds, difficulty) = setup();
        let config = RecommendConfig {
            target_offset: 0.1,
            lower_slack: 0.05,
            upper_slack: 0.15,
            interest_weight: 0.0,
            k: 5,
        };
        // Level 1 with a razor-thin band around 1.1: no item qualifies
        // (item 0 has d=1.0 < lo=0.95? no: lo = 1-0.05=0.95, hi=1.15, so
        // item 0 qualifies). Use level 3 instead: band [2.95, 3.15] — empty.
        let recs = recommend_for_level(&model, &ds, &difficulty, 3, &|_| false, &config).unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn ladder_covers_levels_up_to_top() {
        let (model, ds, difficulty) = setup();
        let config = RecommendConfig {
            interest_weight: 0.2,
            upper_slack: 1.0,
            ..Default::default()
        };
        let ladder = upskilling_ladder(&model, &ds, &difficulty, 1, &|_| false, &config).unwrap();
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].0, 1);
        assert_eq!(ladder[2].0, 3);
        // Mean difficulty of each rung increases.
        let mean = |recs: &[Recommendation]| {
            recs.iter().map(|r| r.difficulty).sum::<f64>() / recs.len().max(1) as f64
        };
        let nonempty: Vec<f64> = ladder
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(_, r)| mean(r))
            .collect();
        assert!(nonempty.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }

    #[test]
    fn table_backed_recommendations_match_direct() {
        let (model, ds, difficulty) = setup();
        let table = EmissionTable::build(&model, &ds);
        let config = RecommendConfig {
            interest_weight: 0.5,
            lower_slack: 2.0,
            upper_slack: 2.0,
            ..Default::default()
        };
        for level in 1..=3u8 {
            let direct =
                recommend_for_level(&model, &ds, &difficulty, level, &|_| false, &config).unwrap();
            let tabled =
                recommend_for_level_with_table(&table, &difficulty, level, &|_| false, &config)
                    .unwrap();
            assert_eq!(direct, tabled);
        }
        assert!(recommend_for_level_with_table(
            &table,
            &[1.0],
            1,
            &|_| false,
            &RecommendConfig::default()
        )
        .is_err());
    }

    #[test]
    fn band_queries_match_full_scans_under_exclusion() {
        let (model, ds, difficulty) = setup();
        let table = EmissionTable::build(&model, &ds);
        let config = RecommendConfig {
            interest_weight: 0.5,
            lower_slack: 2.0,
            upper_slack: 2.0,
            ..Default::default()
        };
        for level in 1..=3u8 {
            let band = build_level_band(&table, &difficulty, level, &config).unwrap();
            assert_eq!(band.level(), level);
            // No exclusion; excluding the likely top-interest item
            // (shifting the normalization anchor); excluding another.
            for excluded in [None, Some(2u32), Some(0u32)] {
                let ex = move |i: ItemId| excluded == Some(i);
                let direct =
                    recommend_for_level_with_table(&table, &difficulty, level, &ex, &config)
                        .unwrap();
                let banded = recommend_from_band(&band, &ex, config.k).unwrap();
                assert_eq!(direct, banded);
            }
        }
        // `k` is honored at query time, not fixed at build time.
        let band = build_level_band(&table, &difficulty, 2, &config).unwrap();
        assert!(!band.is_empty());
        assert!(band.len() >= 2);
        assert_eq!(band.config(), &config);
        let one = recommend_from_band(&band, &|_| false, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert!(recommend_from_band(&band, &|_| false, 0).is_err());
        // Mismatched difficulty length is rejected at build.
        assert!(build_level_band(&table, &[1.0], 1, &config).is_err());
    }

    #[test]
    fn difficulty_vector_length_checked() {
        let (model, ds, _) = setup();
        let err = recommend_for_level(
            &model,
            &ds,
            &[1.0],
            1,
            &|_| false,
            &RecommendConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    #[test]
    fn scores_are_bounded_and_sorted() {
        let (model, ds, difficulty) = setup();
        let config = RecommendConfig {
            interest_weight: 0.5,
            lower_slack: 2.0,
            upper_slack: 2.0,
            ..Default::default()
        };
        let recs = recommend_for_level(&model, &ds, &difficulty, 2, &|_| false, &config).unwrap();
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| (0.0..=1.0 + 1e-12).contains(&r.score)));
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
