//! Forgetting extension (paper §VII): "it is possible that users lose some
//! skills if they have not taken actions for a while … according to
//! Ebbinghaus's forgetting curve, time and repetition play important roles
//! in memory retention."
//!
//! This module relaxes the strict monotonicity of the base model: between
//! two consecutive actions separated by a time gap `Δ`, the skill level may
//! additionally *drop by one* with probability
//!
//! ```text
//! p_decay(Δ) = max_decay · (1 − 2^(−Δ / halflife))
//! ```
//!
//! — an Ebbinghaus-style retention curve: no decay for back-to-back
//! actions, saturating at `max_decay` for long breaks. The remaining
//! probability mass is split between "stay" and "advance" as in the base
//! model. The assignment DP gains a third predecessor (`s+1`, decayed) and
//! stays `O(|A_u|·F·S)`.

use serde::{Deserialize, Serialize};

use crate::assign::SequenceAssignment;
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{Action, ActionSequence, Dataset, SkillLevel};

/// Ebbinghaus-style decay parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForgettingConfig {
    /// Time (in the dataset's own units) at which half the maximum decay
    /// probability is reached.
    pub halflife: f64,
    /// Decay probability ceiling for very long gaps, in `[0, 1)`.
    pub max_decay: f64,
    /// Base probability of advancing (vs. staying) given no decay.
    pub advance_prob: f64,
}

impl ForgettingConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !self.halflife.is_finite() || self.halflife <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "forgetting halflife",
                value: self.halflife,
            });
        }
        if !(0.0..1.0).contains(&self.max_decay) {
            return Err(CoreError::InvalidProbability {
                context: "max decay probability",
                value: self.max_decay,
            });
        }
        if !(0.0..1.0).contains(&self.advance_prob) {
            return Err(CoreError::InvalidProbability {
                context: "advance probability",
                value: self.advance_prob,
            });
        }
        Ok(())
    }

    /// Decay probability for a gap of `delta` time units.
    pub fn decay_prob(&self, delta: i64) -> f64 {
        if delta <= 0 {
            return 0.0;
        }
        self.max_decay * (1.0 - (-(delta as f64) / self.halflife * std::f64::consts::LN_2).exp())
    }

    /// `(log stay, log advance, log decay)` for a gap of `delta`.
    fn log_transitions(&self, delta: i64, at_top: bool, at_bottom: bool) -> (f64, f64, f64) {
        let decay = if at_bottom {
            0.0
        } else {
            self.decay_prob(delta)
        };
        let rest = 1.0 - decay;
        let advance = if at_top {
            0.0
        } else {
            rest * self.advance_prob
        };
        let stay = rest - advance;
        let ln = |p: f64| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };
        (ln(stay), ln(advance), ln(decay))
    }
}

/// DP assignment allowing gap-dependent skill decay.
///
/// Note: transition semantics are attached to the *destination* action's
/// level: the tuple at step `t` uses the gap `t_n − t_{n−1}`.
///
/// Evaluates emissions directly; use
/// [`assign_sequence_with_forgetting_table`] to share a precomputed
/// [`EmissionTable`] across many sequences.
pub fn assign_sequence_with_forgetting(
    model: &SkillModel,
    config: &ForgettingConfig,
    dataset: &Dataset,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    config.validate()?;
    let s_max = model.n_levels();
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let actions = sequence.actions();
    let emit: Vec<Vec<f64>> = actions
        .iter()
        .map(|a| model.item_log_likelihoods(dataset.item_features(a.item)))
        .collect();
    forgetting_dp(s_max, config, actions, |t| emit[t].as_slice())
}

/// Forgetting DP reading emissions from a precomputed [`EmissionTable`].
///
/// Identical result to [`assign_sequence_with_forgetting`] with the model
/// the table was built from; no per-action emission allocation.
pub fn assign_sequence_with_forgetting_table(
    table: &EmissionTable,
    config: &ForgettingConfig,
    sequence: &ActionSequence,
) -> Result<SequenceAssignment> {
    config.validate()?;
    let n = sequence.len();
    if n == 0 {
        return Ok(SequenceAssignment {
            levels: Vec::new(),
            log_likelihood: 0.0,
        });
    }
    let actions = sequence.actions();
    for action in actions {
        if action.item as usize >= table.n_items() {
            return Err(CoreError::FeatureIndexOutOfBounds {
                index: action.item as usize,
                len: table.n_items(),
            });
        }
    }
    forgetting_dp(table.n_levels(), config, actions, |t| {
        table.row(actions[t].item)
    })
}

/// The three-predecessor (stay / advance / decay) DP over abstract emission
/// rows; both forgetting entry points funnel through this implementation.
fn forgetting_dp<'a, F>(
    s_max: usize,
    config: &ForgettingConfig,
    actions: &[Action],
    row_of: F,
) -> Result<SequenceAssignment>
where
    F: Fn(usize) -> &'a [f64],
{
    let n = actions.len();
    let emit: Vec<&[f64]> = (0..n).map(&row_of).collect();

    // prev[s] = best prefix score ending at level s+1.
    let mut prev: Vec<f64> = (0..s_max)
        .map(|s| emit[0][s] - (s_max as f64).ln())
        .collect();
    let mut curr = vec![f64::NEG_INFINITY; s_max];
    /// Backpointer: where the path came from, relative to the current level.
    #[derive(Clone, Copy, PartialEq)]
    enum From {
        Below,
        Same,
        Above,
    }
    let mut back = vec![From::Same; n * s_max];

    for t in 1..n {
        let delta = actions[t].time - actions[t - 1].time;
        for s in 0..s_max {
            // Transitions are parameterized at the *source* level.
            let mut best = f64::NEG_INFINITY;
            let mut from = From::Same;
            // Stay: source s.
            {
                let (stay, _, _) = config.log_transitions(delta, s + 1 == s_max, s == 0);
                let cand = prev[s] + stay;
                if cand > best {
                    best = cand;
                    from = From::Same;
                }
            }
            // Advance: source s−1.
            if s > 0 {
                let (_, advance, _) = config.log_transitions(delta, s == s_max, s - 1 == 0);
                let cand = prev[s - 1] + advance;
                if cand > best {
                    best = cand;
                    from = From::Below;
                }
            }
            // Decay: source s+1.
            if s + 1 < s_max {
                let (_, _, decay) = config.log_transitions(delta, s + 2 == s_max + 1, s + 1 == 0);
                let cand = prev[s + 1] + decay;
                if cand > best {
                    best = cand;
                    from = From::Above;
                }
            }
            curr[s] = best + emit[t][s];
            back[t * s_max + s] = from;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    let (mut s, mut best_ll) = (0usize, f64::NEG_INFINITY);
    for (idx, &ll) in prev.iter().enumerate() {
        if ll > best_ll {
            best_ll = ll;
            s = idx;
        }
    }
    if crate::float_cmp::is_neg_infinity(best_ll) {
        return Err(CoreError::DegenerateFit {
            distribution: "forgetting DP",
            reason: "all paths impossible",
        });
    }
    let mut levels = vec![0 as SkillLevel; n];
    for t in (0..n).rev() {
        levels[t] = (s + 1) as SkillLevel;
        if t > 0 {
            match back[t * s_max + s] {
                From::Below => s -= 1,
                From::Above => s += 1,
                From::Same => {}
            }
        }
    }
    Ok(SequenceAssignment {
        levels,
        log_likelihood: best_ll,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::Action;

    fn diagonal_setup(s_max: usize, cats_and_times: &[(u32, i64)]) -> (SkillModel, Dataset) {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: s_max as u32,
        }])
        .unwrap();
        let cells = (0..s_max)
            .map(|s| {
                let mut probs = vec![0.04; s_max];
                probs[s] = 1.0 - 0.04 * (s_max as f64 - 1.0);
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        let model = SkillModel::new(schema.clone(), s_max, cells).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..s_max as u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let actions: Vec<Action> = cats_and_times
            .iter()
            .map(|&(c, t)| Action::new(t, 0, c))
            .collect();
        let seq = ActionSequence::new(0, actions).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        (model, ds)
    }

    #[test]
    fn config_validation() {
        let ok = ForgettingConfig {
            halflife: 10.0,
            max_decay: 0.3,
            advance_prob: 0.2,
        };
        assert!(ok.validate().is_ok());
        assert!(ForgettingConfig {
            halflife: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ForgettingConfig {
            max_decay: 1.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ForgettingConfig {
            advance_prob: -0.1,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn decay_prob_follows_retention_curve() {
        let cfg = ForgettingConfig {
            halflife: 10.0,
            max_decay: 0.4,
            advance_prob: 0.2,
        };
        assert_eq!(cfg.decay_prob(0), 0.0);
        // At one halflife, half the ceiling.
        assert!((cfg.decay_prob(10) - 0.2).abs() < 1e-9);
        // Saturates at the ceiling.
        assert!((cfg.decay_prob(10_000) - 0.4).abs() < 1e-9);
        // Monotone in the gap.
        assert!(cfg.decay_prob(5) < cfg.decay_prob(20));
    }

    #[test]
    fn no_gaps_reduces_to_monotone_paths() {
        // Consecutive timestamps → decay probability ~0 → monotone result.
        let seq: Vec<(u32, i64)> = [0u32, 0, 1, 1, 2, 2]
            .iter()
            .enumerate()
            .map(|(t, &c)| (c, t as i64))
            .collect();
        let (model, ds) = diagonal_setup(3, &seq);
        let cfg = ForgettingConfig {
            halflife: 1e9,
            max_decay: 0.3,
            advance_prob: 0.3,
        };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &ds.sequences()[0]).unwrap();
        assert!(a.levels.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.levels, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn long_break_allows_level_drop() {
        // Climb to level 3, take a very long break, then act like level 1.
        let seq: &[(u32, i64)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (2, 3),
            // 10,000-unit break:
            (0, 10_003),
            (0, 10_004),
            (0, 10_005),
        ];
        let (model, ds) = diagonal_setup(3, seq);
        let cfg = ForgettingConfig {
            halflife: 100.0,
            max_decay: 0.45,
            advance_prob: 0.3,
        };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &ds.sequences()[0]).unwrap();
        // The path should climb then descend after the break.
        // Only one decay step is possible per gap, so the DP may prefer a
        // lower peak over multiple post-break drops; what must hold is that
        // the level *decreases* across the long break.
        let peak = *a.levels.iter().max().unwrap();
        let last = *a.levels.last().unwrap();
        assert!(peak >= 2, "levels {:?}", a.levels);
        assert!(last < peak, "no decay happened: {:?}", a.levels);
        // The drop coincides with the long gap (action index 4).
        assert!(a.levels[4] < a.levels[3], "levels {:?}", a.levels);
    }

    #[test]
    fn short_break_does_not_drop() {
        let seq: &[(u32, i64)] = &[(0, 0), (1, 1), (2, 2), (2, 3), (0, 5), (0, 6), (0, 7)];
        let (model, ds) = diagonal_setup(3, seq);
        // Same config; gaps of 1–2 units make decay essentially free-…
        // impossible: p_decay(2) ≈ 0.006 ⇒ ln ≈ −5; the emission gain of
        // dropping two levels (≈ +3 per action × 3 actions) can still win,
        // so use a tiny max_decay to pin the behaviour.
        let cfg = ForgettingConfig {
            halflife: 1e6,
            max_decay: 0.01,
            advance_prob: 0.3,
        };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &ds.sequences()[0]).unwrap();
        assert!(a.levels.windows(2).all(|w| w[0] <= w[1]), "{:?}", a.levels);
    }

    #[test]
    fn forgetting_matches_base_dp_when_decay_disabled() {
        let seq: Vec<(u32, i64)> = [2u32, 1, 0, 1, 2, 2]
            .iter()
            .enumerate()
            .map(|(t, &c)| (c, (t * 50) as i64))
            .collect();
        let (model, ds) = diagonal_setup(3, &seq);
        let cfg = ForgettingConfig {
            halflife: 1.0,
            max_decay: 0.0,
            advance_prob: 0.5,
        };
        let forgetting =
            assign_sequence_with_forgetting(&model, &cfg, &ds, &ds.sequences()[0]).unwrap();
        let base = crate::assign::assign_sequence(&model, &ds, &ds.sequences()[0]).unwrap();
        // With max_decay = 0 and advance = stay = 0.5, the path preferences
        // match the base DP (constant per-step transition cost).
        assert_eq!(forgetting.levels, base.levels);
    }

    #[test]
    fn table_backed_forgetting_matches_direct() {
        let seq: &[(u32, i64)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (2, 3),
            (0, 10_003),
            (0, 10_004),
            (1, 10_200),
        ];
        let (model, ds) = diagonal_setup(3, seq);
        let cfg = ForgettingConfig {
            halflife: 100.0,
            max_decay: 0.45,
            advance_prob: 0.3,
        };
        let table = EmissionTable::build(&model, &ds);
        let direct =
            assign_sequence_with_forgetting(&model, &cfg, &ds, &ds.sequences()[0]).unwrap();
        let tabled =
            assign_sequence_with_forgetting_table(&table, &cfg, &ds.sequences()[0]).unwrap();
        assert_eq!(direct.levels, tabled.levels);
        assert_eq!(direct.log_likelihood, tabled.log_likelihood);
        // Out-of-table items are rejected.
        let rogue = ActionSequence::new(9, vec![Action::new(0, 9, 50)]).unwrap();
        assert!(assign_sequence_with_forgetting_table(&table, &cfg, &rogue).is_err());
    }

    #[test]
    fn empty_sequence_handled() {
        let (model, ds) = diagonal_setup(3, &[(0, 0)]);
        let empty = ActionSequence::new(1, vec![]).unwrap();
        let cfg = ForgettingConfig {
            halflife: 10.0,
            max_decay: 0.2,
            advance_prob: 0.3,
        };
        let a = assign_sequence_with_forgetting(&model, &cfg, &ds, &empty).unwrap();
        assert!(a.levels.is_empty());
    }
}
