//! Qualitative model analysis (paper §VI-C, Tables II–V, Figs. 4–6).
//!
//! - [`dominance_scores`] — for a categorical feature, the difference in
//!   generation probability between the highest and lowest skill level,
//!   `P_f(x | θ_f(S)) − P_f(x | θ_f(1))`: positive values are dominated by
//!   skilled users, negative by novices (the McAuley–Leskovec measure the
//!   paper adopts).
//! - [`level_means`] — per-level mean of a count/positive feature, the
//!   summary the paper plots in Figs. 4–6.

use crate::dist::FeatureDistribution;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;

/// A categorical value with its skill-dominance score.
#[derive(Debug, Clone, PartialEq)]
pub struct DominanceEntry {
    /// The categorical value (index into the feature's categories).
    pub value: u32,
    /// `P(value | S) − P(value | 1)`.
    pub score: f64,
}

/// Dominance scores for every value of a categorical feature.
pub fn dominance_scores(model: &SkillModel, feature: usize) -> Result<Vec<DominanceEntry>> {
    let lowest = model.cell(1, feature)?;
    let highest = model.cell(model.n_levels() as u8, feature)?;
    let (FeatureDistribution::Categorical(lo), FeatureDistribution::Categorical(hi)) =
        (lowest, highest)
    else {
        return Err(CoreError::FeatureKindMismatch {
            feature,
            expected: "categorical",
            got: "non-categorical",
        });
    };
    if lo.cardinality() != hi.cardinality() {
        return Err(CoreError::LengthMismatch {
            context: "dominance cardinalities",
            left: lo.cardinality() as usize,
            right: hi.cardinality() as usize,
        });
    }
    Ok((0..lo.cardinality())
        .map(|c| DominanceEntry {
            value: c,
            score: hi.prob(c) - lo.prob(c),
        })
        .collect())
}

/// Top-`k` values dominated by *skilled* users (most positive scores).
pub fn top_skilled(model: &SkillModel, feature: usize, k: usize) -> Result<Vec<DominanceEntry>> {
    let mut scores = dominance_scores(model, feature)?;
    scores.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    scores.truncate(k);
    Ok(scores)
}

/// Top-`k` values dominated by *unskilled* users (most negative scores).
pub fn top_unskilled(model: &SkillModel, feature: usize, k: usize) -> Result<Vec<DominanceEntry>> {
    let mut scores = dominance_scores(model, feature)?;
    scores.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    scores.truncate(k);
    Ok(scores)
}

/// Mean of a count or positive feature at each skill level
/// (`result[s-1]`). Errors for categorical features (use
/// [`dominance_scores`] there instead).
pub fn level_means(model: &SkillModel, feature: usize) -> Result<Vec<f64>> {
    model
        .levels()
        .map(|s| {
            let cell = model.cell(s, feature)?;
            match cell {
                FeatureDistribution::Poisson(d) => Ok(d.mean()),
                FeatureDistribution::Gamma(d) => Ok(d.mean()),
                FeatureDistribution::LogNormal(d) => Ok(d.mean()),
                FeatureDistribution::Categorical(_) => Err(CoreError::FeatureKindMismatch {
                    feature,
                    expected: "count or positive",
                    got: "categorical",
                }),
            }
        })
        .collect()
}

/// Densities/masses of a non-categorical feature evaluated on a grid, one
/// series per skill level — the raw material for Figs. 4–6 style plots.
pub fn level_densities(model: &SkillModel, feature: usize, grid: &[f64]) -> Result<Vec<Vec<f64>>> {
    model
        .levels()
        .map(|s| {
            let cell = model.cell(s, feature)?;
            grid.iter()
                .map(|&x| match cell {
                    FeatureDistribution::Poisson(d) => {
                        if x < 0.0 || !crate::float_cmp::is_integral(x) {
                            Ok(0.0)
                        } else {
                            Ok(d.pmf(x as u64))
                        }
                    }
                    FeatureDistribution::Gamma(d) => Ok(d.pdf(x)),
                    FeatureDistribution::LogNormal(d) => Ok(d.pdf(x)),
                    FeatureDistribution::Categorical(_) => Err(CoreError::FeatureKindMismatch {
                        feature,
                        expected: "count or positive",
                        got: "categorical",
                    }),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, Gamma, Poisson};
    use crate::feature::{FeatureKind, FeatureSchema, PositiveModel};

    fn mixed_model() -> SkillModel {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 3 },
            FeatureKind::Count,
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
        ])
        .unwrap();
        let cells = vec![
            vec![
                FeatureDistribution::Categorical(
                    Categorical::from_probs(vec![0.7, 0.2, 0.1]).unwrap(),
                ),
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
                FeatureDistribution::Gamma(Gamma::new(2.0, 1.0).unwrap()),
            ],
            vec![
                FeatureDistribution::Categorical(
                    Categorical::from_probs(vec![0.1, 0.3, 0.6]).unwrap(),
                ),
                FeatureDistribution::Poisson(Poisson::new(5.0).unwrap()),
                FeatureDistribution::Gamma(Gamma::new(4.0, 1.5).unwrap()),
            ],
        ];
        SkillModel::new(schema, 2, cells).unwrap()
    }

    #[test]
    fn dominance_scores_are_probability_differences() {
        let m = mixed_model();
        let scores = dominance_scores(&m, 0).unwrap();
        assert_eq!(scores.len(), 3);
        assert!((scores[0].score - (0.1 - 0.7)).abs() < 1e-12);
        assert!((scores[2].score - (0.6 - 0.1)).abs() < 1e-12);
        // Scores over all values sum to zero (both rows are distributions).
        let total: f64 = scores.iter().map(|e| e.score).sum();
        assert!(total.abs() < 1e-12);
    }

    #[test]
    fn top_lists_are_ordered_correctly() {
        let m = mixed_model();
        let skilled = top_skilled(&m, 0, 2).unwrap();
        assert_eq!(skilled[0].value, 2);
        assert!(skilled[0].score > 0.0);
        let unskilled = top_unskilled(&m, 0, 2).unwrap();
        assert_eq!(unskilled[0].value, 0);
        assert!(unskilled[0].score < 0.0);
    }

    #[test]
    fn dominance_rejects_noncategorical_feature() {
        let m = mixed_model();
        assert!(dominance_scores(&m, 1).is_err());
    }

    #[test]
    fn level_means_for_count_and_gamma() {
        let m = mixed_model();
        let poisson_means = level_means(&m, 1).unwrap();
        assert_eq!(poisson_means, vec![2.0, 5.0]);
        let gamma_means = level_means(&m, 2).unwrap();
        assert_eq!(gamma_means, vec![2.0, 6.0]);
        assert!(level_means(&m, 0).is_err());
    }

    #[test]
    fn level_densities_shapes_and_values() {
        let m = mixed_model();
        let grid = [0.0, 1.0, 2.0, 2.5];
        let densities = level_densities(&m, 1, &grid).unwrap();
        assert_eq!(densities.len(), 2);
        assert_eq!(densities[0].len(), 4);
        // Non-integer grid points have zero Poisson mass.
        assert_eq!(densities[0][3], 0.0);
        assert!(densities[0][2] > 0.0);
        let gamma_densities = level_densities(&m, 2, &grid).unwrap();
        assert_eq!(gamma_densities[0][0], 0.0); // pdf(0) = 0 boundary
        assert!(level_densities(&m, 0, &grid).is_err());
    }
}

/// Per-user progression statistics derived from hard assignments —
/// the raw material for Q1-style interpretive analyses ("how fast do users
/// level up?", "how many ever reach the top?").
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressionStats {
    /// Number of users with at least one action.
    pub n_users: usize,
    /// Distribution of starting levels (`counts[s-1]`).
    pub start_levels: Vec<usize>,
    /// Distribution of final levels (`counts[s-1]`).
    pub final_levels: Vec<usize>,
    /// Users whose level increased at least once.
    pub n_progressed: usize,
    /// Users who reached the top level at any point.
    pub n_reached_top: usize,
    /// Mean number of actions taken before the first level-up, over users
    /// who progressed at all.
    pub mean_actions_to_first_advance: f64,
}

/// Computes [`ProgressionStats`] from assignments.
pub fn progression_stats(
    assignments: &crate::types::SkillAssignments,
    n_levels: usize,
) -> ProgressionStats {
    let mut start_levels = vec![0usize; n_levels];
    let mut final_levels = vec![0usize; n_levels];
    let mut n_users = 0usize;
    let mut n_progressed = 0usize;
    let mut n_reached_top = 0usize;
    let mut first_advance_sum = 0usize;
    for seq in &assignments.per_user {
        let (Some(&first), Some(&last)) = (seq.first(), seq.last()) else {
            continue;
        };
        n_users += 1;
        if let Some(slot) = start_levels.get_mut(first as usize - 1) {
            *slot += 1;
        }
        if let Some(slot) = final_levels.get_mut(last as usize - 1) {
            *slot += 1;
        }
        if seq.iter().any(|&s| s as usize == n_levels) {
            n_reached_top += 1;
        }
        if let Some(pos) = seq.windows(2).position(|w| w[1] > w[0]) {
            n_progressed += 1;
            first_advance_sum += pos + 1;
        }
    }
    ProgressionStats {
        n_users,
        start_levels,
        final_levels,
        n_progressed,
        n_reached_top,
        mean_actions_to_first_advance: if n_progressed > 0 {
            first_advance_sum as f64 / n_progressed as f64
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod progression_tests {
    use super::*;
    use crate::types::SkillAssignments;

    #[test]
    fn stats_capture_paper_requirements() {
        // Paper §III-A: users may start above level 1, may never reach the
        // top, and progress at user-dependent speeds.
        let a = SkillAssignments {
            per_user: vec![
                vec![1, 1, 2, 3],    // climber: 2 actions before first advance
                vec![3, 3, 3],       // starts high, never moves
                vec![1, 1, 1, 1, 1], // never progresses
                vec![2, 3],          // quick: 1 action before first advance
                vec![],              // empty (ignored)
            ],
        };
        let s = progression_stats(&a, 3);
        assert_eq!(s.n_users, 4);
        assert_eq!(s.start_levels, vec![2, 1, 1]);
        assert_eq!(s.final_levels, vec![1, 0, 3]);
        assert_eq!(s.n_progressed, 2);
        assert_eq!(s.n_reached_top, 3);
        // First advances after 2 and 1 actions → mean 1.5.
        assert!((s.mean_actions_to_first_advance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_progression_yields_nan_mean() {
        let a = SkillAssignments {
            per_user: vec![vec![2, 2, 2]],
        };
        let s = progression_stats(&a, 3);
        assert_eq!(s.n_progressed, 0);
        assert!(s.mean_actions_to_first_advance.is_nan());
    }
}
