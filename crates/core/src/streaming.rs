//! Streaming ingestion: fold live actions into a trained model without a
//! full retrain.
//!
//! The paper's motivating deployment (§IV, §VI) is a live service where
//! users keep acting after the model has been trained. Retraining from
//! scratch on every appended action costs a whole alternating-optimization
//! run; a [`StreamingSession`] instead *continues* a trained state:
//!
//! 1. **Assignment extension** — each ingested action extends its user's
//!    committed monotone level path. Because the prefix is committed, the
//!    monotone-DP recurrence collapses to a two-way choice (`stay` at the
//!    last level or `advance` by one), decided by the cached emission
//!    scores — exactly the constrained forward-DP step, in `O(1)` per
//!    action.
//! 2. **Exact statistics deltas** — every appended action is a single `+1`
//!    on the persistent [`StatsGrid`] cell `(level, item)`
//!    ([`StatsGrid::add_action`]), so the sufficient statistics stay
//!    bit-exact with a from-scratch accumulation at all times.
//! 3. **Dirty-level refits** — a refit ([`StreamingSession::refit`], run
//!    per the session's [`RefitPolicy`]) refits only the levels whose
//!    histogram changed, reuses the previous model rows elsewhere
//!    ([`StatsGrid::fit_model_incremental`]), and refreshes only those
//!    levels' [`EmissionTable`] columns.
//!
//! ## Filtering, not smoothing
//!
//! Like [`crate::online::OnlineTracker`], ingestion is *filtering*: each
//! level commitment uses only the actions seen so far and is never
//! revisited when later evidence arrives. Batch training is *smoothing* —
//! its DP re-segments whole sequences with hindsight — so a session's
//! assignments on the streamed suffix can differ from what a full retrain
//! on the concatenated dataset would produce. What *is* exact: given the
//! session's assignments, the refit model equals a from-scratch parameter
//! fit of the concatenated dataset bit for bit (see
//! `tests/properties_streaming.rs`). Periodically retraining from scratch
//! and resuming a fresh session recovers the smoothing view.
//!
//! ## Soft (EM) continuation
//!
//! An EM-trained model ([`Trainer::em`](crate::train::Trainer::em)) used
//! to have no incremental continuation: resuming through the hard
//! constructor refit the model from hard-assignment counts, silently
//! discarding the soft fit. [`StreamingSession::resume_em`] keeps the
//! EM-fitted model **bit for bit** and carries a
//! [`SoftStatsGrid`] of responsibility mass alongside the hard histogram:
//! construction seeds the grid with one forward–backward smoothing pass
//! under the converged model, each ingested action contributes its
//! *filtering posterior* over the admissible stay/advance extension
//! (weighted by the session's [`TransitionModel`]), and refits replay only
//! dirty levels through the weighted M-step
//! ([`SoftStatsGrid::fit_model_incremental`]) before refreshing exactly
//! those emission-table columns. The committed hard path and its exact
//! [`StatsGrid`] are still maintained — they back the invariant checks and
//! keep every accessor meaningful in both modes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::em::forward_backward_with_table;
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::incremental::{SoftStatsGrid, StatsGrid};
use crate::invariants::InvariantCtx;
use crate::model::SkillModel;
use crate::online::OnlineTracker;
use crate::parallel::ParallelConfig;
use crate::train::{TrainConfig, TrainResult};
use crate::transition::TransitionModel;
use crate::types::{
    skill_level_from_index, Action, ActionSequence, Dataset, SkillAssignments, SkillLevel, UserId,
};

/// When a [`StreamingSession`] refits model parameters from its
/// accumulated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefitPolicy {
    /// Refit at the end of every [`StreamingSession::ingest_batch`] call
    /// (a single [`StreamingSession::ingest`] counts as a batch of one).
    EveryBatch,
    /// Refit once at least this many actions have been ingested since the
    /// last refit, checked at the end of each ingest call.
    EveryNActions(usize),
    /// Never refit automatically; the caller drives
    /// [`StreamingSession::refit`] explicitly.
    Manual,
}

/// Deterministic auto-tuner for [`RefitPolicy::EveryNActions`], driven by
/// the observed dirty-level rate.
///
/// The cost of an incremental refit scales with how many levels the
/// pending actions touched ([`StatsGrid::dirty_levels`]); the *value* of
/// deferring scales with how many actions share one refit. A fixed `N`
/// gets one of the two wrong as traffic shifts. The tuner steers `N`
/// toward a target dirty-level count per refit: when a refit touches
/// more levels than the target, the interval halves (refit sooner,
/// smaller deltas); when it touches fewer, the interval doubles
/// (amortize more); always clamped to `[min_actions, max_actions]`.
///
/// The adjustment is a pure function of the observed dirty count, so two
/// systems replaying identical traffic through identical policies evolve
/// their intervals identically — the property the serving layer's
/// bitwise replay tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefitTuner {
    /// Desired number of dirty levels per refit.
    target_dirty_levels: usize,
    /// Lower clamp on the refit interval.
    min_actions: usize,
    /// Upper clamp on the refit interval.
    max_actions: usize,
}

impl RefitTuner {
    /// Builds a tuner steering toward `target_dirty_levels` dirty levels
    /// per refit, with the interval clamped to
    /// `[min_actions, max_actions]`.
    pub fn new(target_dirty_levels: usize, min_actions: usize, max_actions: usize) -> Result<Self> {
        if target_dirty_levels == 0 || min_actions == 0 || max_actions < min_actions {
            return Err(CoreError::DegenerateFit {
                distribution: "refit tuner",
                reason: "need target >= 1 and 1 <= min_actions <= max_actions",
            });
        }
        Ok(Self {
            target_dirty_levels,
            min_actions,
            max_actions,
        })
    }

    /// The next refit interval given the interval that just elapsed and
    /// the number of dirty levels its refit touched. Deterministic:
    /// halve above target, double below, clamp to the configured range.
    pub fn next_interval(&self, current: usize, dirty_levels: usize) -> usize {
        let current = current.clamp(self.min_actions, self.max_actions);
        if dirty_levels > self.target_dirty_levels {
            (current / 2).max(self.min_actions)
        } else if dirty_levels < self.target_dirty_levels {
            current.saturating_mul(2).min(self.max_actions)
        } else {
            current
        }
    }
}

/// A live continuation of a trained model: owns the dataset, the model,
/// the committed assignments, the persistent [`StatsGrid`] and
/// [`EmissionTable`], and one filtering [`OnlineTracker`] per user.
///
/// Construct with [`StreamingSession::resume`] from a
/// [`TrainResult`] (or [`StreamingSession::new`] from raw parts), then
/// feed actions with [`StreamingSession::ingest`] /
/// [`StreamingSession::ingest_batch`]. Unknown users are admitted
/// automatically with a fresh sequence and tracker.
///
/// The session's model is always the parameter fit of its current
/// statistics (established by a fit at construction; for a converged,
/// grid-trained [`TrainResult`] this reproduces `result.model` bit for
/// bit). Between refits the model and emission table lag the statistics
/// by design — that lag is what the [`RefitPolicy`] trades against cost.
#[derive(Debug, Clone)]
pub struct StreamingSession {
    dataset: Dataset,
    model: SkillModel,
    assignments: SkillAssignments,
    config: TrainConfig,
    parallel: ParallelConfig,
    policy: RefitPolicy,
    grid: StatsGrid,
    table: EmissionTable,
    trackers: Vec<OnlineTracker>,
    user_index: HashMap<UserId, usize>,
    /// Actions ingested since the last refit.
    pending: usize,
    /// Actions ingested over the session's lifetime.
    total_ingested: usize,
    /// Auto-tuner adjusting an [`RefitPolicy::EveryNActions`] interval
    /// after each refit; `None` leaves the policy fixed.
    tuner: Option<RefitTuner>,
    /// Soft (EM) continuation state; `None` for hard-mode sessions.
    soft: Option<SoftState>,
}

/// Responsibility statistics of an EM-resumed session: the soft grid the
/// refits replay, and the transition model weighting each ingested
/// action's stay/advance posterior.
#[derive(Debug, Clone)]
struct SoftState {
    grid: SoftStatsGrid,
    transitions: TransitionModel,
}

impl StreamingSession {
    /// Builds a session from a dataset and its committed assignments.
    ///
    /// The model is fit from the assignments' statistics (the update step
    /// of the coordinate ascent), which establishes the exact
    /// grid-model invariant every later dirty-level refit relies on. The
    /// per-user trackers are warmed by replaying each sequence through the
    /// emission table.
    pub fn new(
        dataset: Dataset,
        assignments: SkillAssignments,
        config: TrainConfig,
        parallel: ParallelConfig,
        policy: RefitPolicy,
    ) -> Result<Self> {
        config.validate()?;
        parallel.validate()?;
        if !assignments.is_monotone() {
            return Err(CoreError::DegenerateFit {
                distribution: "streaming session",
                reason: "assignments violate the monotone level constraint",
            });
        }
        // Shape validation (user count, per-user lengths) happens inside
        // the grid build.
        let mut grid =
            StatsGrid::build_with_config(&dataset, &assignments, config.n_levels, &parallel)?;
        let model = grid.fit_model_incremental(&dataset, config.lambda, &parallel, None)?;
        let table = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(&model, &dataset, parallel.threads)?
        } else {
            EmissionTable::build(&model, &dataset)
        };
        InvariantCtx::new().check_emission_table(&table)?;
        let (trackers, user_index) = warm_trackers(&dataset, &table, config.n_levels)?;
        Ok(Self {
            dataset,
            model,
            assignments,
            config,
            parallel,
            policy,
            grid,
            table,
            trackers,
            user_index,
            pending: 0,
            total_ingested: 0,
            tuner: None,
            soft: None,
        })
    }

    /// Builds a **soft (EM) continuation** of a trained result: the
    /// result's model is kept bit for bit (no construction-time hard
    /// refit), and refits replay a persistent [`SoftStatsGrid`] of
    /// responsibility mass instead of the hard histogram.
    ///
    /// The soft grid is seeded with one forward–backward smoothing pass
    /// over the dataset under the converged model and `transitions`
    /// (the same transitions the EM trainer ran with). Because a
    /// converged EM model is — up to the trainer's tolerance — the fixed
    /// point of its own M-step, the seeded statistics start *clean*: the
    /// first refit touches only the levels streamed actions move.
    pub fn resume_em(
        dataset: Dataset,
        result: &TrainResult,
        transitions: TransitionModel,
        config: TrainConfig,
        parallel: ParallelConfig,
        policy: RefitPolicy,
    ) -> Result<Self> {
        config.validate()?;
        parallel.validate()?;
        if transitions.n_levels() != config.n_levels {
            return Err(CoreError::LengthMismatch {
                context: "transitions vs session levels",
                left: transitions.n_levels(),
                right: config.n_levels,
            });
        }
        let assignments = result.assignments.clone();
        if !assignments.is_monotone() {
            return Err(CoreError::DegenerateFit {
                distribution: "streaming session",
                reason: "assignments violate the monotone level constraint",
            });
        }
        // The hard histogram is still maintained — it backs the
        // `check_grid` invariant and the committed-path bookkeeping —
        // but the model is NOT refit from it: the EM fit survives.
        let grid =
            StatsGrid::build_with_config(&dataset, &assignments, config.n_levels, &parallel)?;
        let model = result.model.clone();
        let table = if parallel.users && parallel.threads > 1 {
            EmissionTable::build_parallel(&model, &dataset, parallel.threads)?
        } else {
            EmissionTable::build(&model, &dataset)
        };
        InvariantCtx::new().check_emission_table(&table)?;
        let (trackers, user_index) = warm_trackers(&dataset, &table, config.n_levels)?;
        let mut soft_grid = SoftStatsGrid::new(
            config.n_levels,
            dataset.n_items(),
            dataset.n_actions(),
            crate::em::DEFAULT_GAMMA_TOLERANCE,
        )?;
        let mut a_idx = 0usize;
        for seq in dataset.sequences() {
            let (gammas, _) = forward_backward_with_table(&table, &transitions, seq)?;
            for (action, gamma) in seq.actions().iter().zip(&gammas) {
                soft_grid.update_action(a_idx, action.item, gamma)?;
                a_idx += 1;
            }
        }
        // Seeding is not a model change: start clean so only levels the
        // streamed suffix touches ever get refit.
        soft_grid.clear_dirty();
        Ok(Self {
            dataset,
            model,
            assignments,
            config,
            parallel,
            policy,
            grid,
            table,
            trackers,
            user_index,
            pending: 0,
            total_ingested: 0,
            tuner: None,
            soft: Some(SoftState {
                grid: soft_grid,
                transitions,
            }),
        })
    }

    /// Resumes a session from a completed training run: the dataset it was
    /// trained on plus the [`TrainResult`]'s final assignments.
    pub fn resume(
        dataset: Dataset,
        result: &TrainResult,
        config: TrainConfig,
        parallel: ParallelConfig,
        policy: RefitPolicy,
    ) -> Result<Self> {
        Self::new(
            dataset,
            result.assignments.clone(),
            config,
            parallel,
            policy,
        )
    }

    /// Resumes a session from a chunked training run
    /// ([`crate::chunked::train_chunked`] /
    /// [`Trainer::fit_chunked`](crate::train::Trainer::fit_chunked)).
    ///
    /// A live session needs per-user committed paths, so this is the
    /// point where the corpus is materialized: the chunk stream is folded
    /// back into an in-memory [`Dataset`] and the (deterministic) DP
    /// re-derives the final assignments under the trained model. Only
    /// call this at scales where an in-memory corpus is acceptable — the
    /// flat-memory contract necessarily ends where live ingestion begins.
    pub fn resume_chunked<S: crate::chunked::ChunkSource + ?Sized>(
        source: &S,
        result: &crate::chunked::ChunkedTrainResult,
        config: TrainConfig,
        parallel: ParallelConfig,
        policy: RefitPolicy,
    ) -> Result<Self> {
        let dataset = crate::chunked::materialize(source)?;
        let (assignments, _) = crate::chunked::assign_chunked(source, &result.model, &parallel)?;
        Self::new(dataset, assignments, config, parallel, policy)
    }

    /// Ingests one action: extends the user's committed level path, applies
    /// the `+1` statistics delta, advances the user's filtering tracker,
    /// and refits per the session's [`RefitPolicy`]. Returns the level
    /// committed for this action.
    ///
    /// Unknown users get a fresh sequence; known users' actions must not
    /// move time backwards. On error the session state is unchanged.
    pub fn ingest(&mut self, action: Action) -> Result<SkillLevel> {
        let level = self.ingest_inner(action)?;
        self.refit_per_policy()?;
        Ok(level)
    }

    /// Ingests a batch of actions (each as [`StreamingSession::ingest`]),
    /// deferring any policy-driven refit to the end of the batch. Returns
    /// the committed level of every action, in input order.
    ///
    /// Fails fast on the first invalid action: earlier actions of the
    /// batch stay ingested, the offending and later ones do not.
    pub fn ingest_batch(&mut self, actions: &[Action]) -> Result<Vec<SkillLevel>> {
        let mut levels = Vec::with_capacity(actions.len());
        for &action in actions {
            levels.push(self.ingest_inner(action)?);
        }
        self.refit_per_policy()?;
        Ok(levels)
    }

    /// The committed-prefix forward-DP step plus bookkeeping; no refit.
    fn ingest_inner(&mut self, action: Action) -> Result<SkillLevel> {
        let row =
            self.table
                .checked_row(action.item)
                .ok_or(CoreError::FeatureIndexOutOfBounds {
                    index: action.item as usize,
                    len: self.table.n_items(),
                })?;
        let (u, is_new_user) = match self.user_index.get(&action.user) {
            Some(&u) => (u, false),
            None => (self.dataset.n_users(), true),
        };
        // Constrained extension of the committed monotone path: the prefix
        // pins the path at the user's last level, so the DP choice is
        // between staying and advancing one level, by emission score
        // (ties stay). A first action takes the best level outright
        // (ties low), matching the DP's first column.
        let last = if is_new_user {
            None
        } else {
            self.assignments.per_user[u].last().copied()
        };
        let level = match last {
            None => skill_level_from_index(argmax_low(row)),
            Some(last) => {
                let li = last as usize - 1;
                if li + 1 < row.len() && row[li + 1] > row[li] {
                    last + 1
                } else {
                    last
                }
            }
        };
        // O(1) extension check: the committed path must stay monotone.
        InvariantCtx::new().check_extension("streaming ingest", last, level)?;
        // Soft mode: the action's filtering posterior over its admissible
        // extension, computed while the emission row is at hand.
        let soft_gamma = self
            .soft
            .as_ref()
            .map(|soft| extension_posterior(&soft.transitions, row, last, level));

        // Mutations, fallible first so errors leave the session unchanged.
        if is_new_user {
            let seq = ActionSequence::new(action.user, vec![action])?;
            self.dataset.push_sequence(seq)?;
            self.assignments.per_user.push(Vec::new());
            self.trackers
                .push(OnlineTracker::new(self.config.n_levels)?);
            self.user_index.insert(action.user, u);
        } else {
            self.dataset.append_action(u, action)?;
        }
        self.grid.add_action(action.item, level)?;
        if let (Some(gamma), Some(soft)) = (soft_gamma, self.soft.as_mut()) {
            soft.grid.push_action(action.item, &gamma)?;
        }
        self.assignments.per_user[u].push(level);
        self.trackers[u].observe_item(&self.table, action.item)?;
        self.pending += 1;
        self.total_ingested += 1;
        Ok(level)
    }

    /// Refits the dirty levels now if the policy says so.
    fn refit_per_policy(&mut self) -> Result<usize> {
        let due = match self.policy {
            RefitPolicy::EveryBatch => true,
            RefitPolicy::EveryNActions(n) => self.pending >= n,
            RefitPolicy::Manual => false,
        };
        if due {
            self.refit()
        } else {
            Ok(0)
        }
    }

    /// Refits model parameters from the accumulated statistics, touching
    /// only dirty levels, and refreshes exactly those emission-table
    /// columns. Returns the number of levels refit (0 when nothing was
    /// pending). Callable at any time, whatever the policy.
    ///
    /// Hard-mode sessions refit from the exact [`StatsGrid`] histogram;
    /// EM-resumed sessions ([`StreamingSession::resume_em`]) replay the
    /// [`SoftStatsGrid`]'s responsibility mass through the weighted
    /// M-step instead.
    pub fn refit(&mut self) -> Result<usize> {
        let n_dirty = if self.soft.is_some() {
            self.refit_soft()?
        } else {
            self.refit_hard()?
        };
        // Auto-tune: each refit's dirty count steers the next interval.
        // A pure function of the observed count, so replayed traffic
        // evolves the policy identically (see [`RefitTuner`]).
        if let (RefitPolicy::EveryNActions(n), Some(tuner)) = (self.policy, self.tuner) {
            self.policy = RefitPolicy::EveryNActions(tuner.next_interval(n, n_dirty));
        }
        Ok(n_dirty)
    }

    /// Hard-mode refit: dirty levels from the exact integer histogram.
    fn refit_hard(&mut self) -> Result<usize> {
        // `fit_model_incremental` clears the dirty flags; capture them
        // first — they are exactly the emission columns to refresh.
        let dirty = self.grid.dirty_levels().to_vec();
        let n_dirty = dirty.iter().filter(|&&d| d).count();
        if n_dirty == 0 {
            self.pending = 0;
            return Ok(0);
        }
        self.model = self.grid.fit_model_incremental(
            &self.dataset,
            self.config.lambda,
            &self.parallel,
            Some(&self.model),
        )?;
        self.table
            .refresh_levels(&self.model, &self.dataset, &dirty)?;
        // A refit commits new model state; verify everything it depends
        // on: finite emission scores, a monotone committed path, and a
        // grid that matches a from-scratch accumulation.
        let ctx = InvariantCtx::new();
        ctx.check_emission_table(&self.table)?;
        ctx.check_monotone("streaming refit", &self.assignments)?;
        ctx.check_grid(&self.grid, &self.dataset, &self.assignments)?;
        self.pending = 0;
        Ok(n_dirty)
    }

    /// Soft-mode refit: dirty levels from the responsibility grid,
    /// refit through the weighted M-step. The hard histogram stays the
    /// exact count accumulation it always is, so its invariant check
    /// still applies.
    fn refit_soft(&mut self) -> Result<usize> {
        let soft = match self.soft.as_mut() {
            Some(soft) => soft,
            None => return Ok(0),
        };
        // `fit_model_incremental` clears the dirty flags; capture them
        // first — they are exactly the emission columns to refresh.
        let dirty = soft.grid.dirty_levels().to_vec();
        let n_dirty = dirty.iter().filter(|&&d| d).count();
        if n_dirty == 0 {
            self.pending = 0;
            return Ok(0);
        }
        self.model = soft.grid.fit_model_incremental(
            &self.dataset,
            self.config.lambda,
            Some(&self.model),
        )?;
        self.table
            .refresh_levels(&self.model, &self.dataset, &dirty)?;
        let ctx = InvariantCtx::new();
        ctx.check_emission_table(&self.table)?;
        ctx.check_monotone("streaming refit", &self.assignments)?;
        ctx.check_grid(&self.grid, &self.dataset, &self.assignments)?;
        self.pending = 0;
        Ok(n_dirty)
    }

    /// Snapshots the session into a serializable
    /// [`SessionBundle`](crate::bundle::SessionBundle).
    ///
    /// Derived state (grid, emission table, trackers) is not stored;
    /// [`SessionBundle::resume`](crate::bundle::SessionBundle::resume)
    /// rebuilds it, so a snapshot taken with pending actions resumes
    /// freshly refit. The soft (EM) continuation state is derived too and
    /// is likewise not stored: a bundle always resumes in hard mode, with
    /// the snapshot's model refit from the hard histogram.
    pub fn snapshot(&self, note: &str) -> crate::bundle::SessionBundle {
        crate::bundle::SessionBundle {
            version: crate::bundle::SESSION_BUNDLE_VERSION,
            dataset: self.dataset.clone(),
            model: self.model.clone(),
            assignments: self.assignments.clone(),
            config: self.config,
            parallel: self.parallel,
            policy: self.policy,
            note: note.to_string(),
        }
    }

    /// The dataset including every ingested action.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The current model (last refit; lags the statistics between refits).
    pub fn model(&self) -> &SkillModel {
        &self.model
    }

    /// The committed per-action level assignments, including the streamed
    /// suffix.
    pub fn assignments(&self) -> &SkillAssignments {
        &self.assignments
    }

    /// Training hyperparameters the session refits with.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Parallelism configuration used for refits.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The current refit policy.
    pub fn policy(&self) -> RefitPolicy {
        self.policy
    }

    /// Whether this is a soft (EM) continuation
    /// ([`StreamingSession::resume_em`]) rather than a hard-mode session.
    pub fn is_em(&self) -> bool {
        self.soft.is_some()
    }

    /// Replaces the refit policy (takes effect from the next ingest).
    pub fn set_policy(&mut self, policy: RefitPolicy) {
        self.policy = policy;
    }

    /// The auto-tuner adjusting an [`RefitPolicy::EveryNActions`]
    /// interval, if one is installed.
    pub fn tuner(&self) -> Option<RefitTuner> {
        self.tuner
    }

    /// Installs (or removes) the refit-interval auto-tuner. Only
    /// meaningful under [`RefitPolicy::EveryNActions`]; inert otherwise.
    pub fn set_tuner(&mut self, tuner: Option<RefitTuner>) {
        self.tuner = tuner;
    }

    /// Number of actions ingested since the last refit.
    pub fn pending_actions(&self) -> usize {
        self.pending
    }

    /// Number of actions ingested over the session's lifetime.
    pub fn total_ingested(&self) -> usize {
        self.total_ingested
    }

    /// Number of users the session tracks (including streamed-in users).
    pub fn n_users(&self) -> usize {
        self.dataset.n_users()
    }

    /// The user's last committed level, if they have any actions.
    pub fn committed_level(&self, user: UserId) -> Option<SkillLevel> {
        let &u = self.user_index.get(&user)?;
        self.assignments.per_user[u].last().copied()
    }

    /// The user's filtering (tracker) level estimate — may disagree with
    /// the committed path; see the module docs on filtering vs smoothing.
    pub fn filtered_level(&self, user: UserId) -> Option<SkillLevel> {
        let &u = self.user_index.get(&user)?;
        self.trackers[u].current_level().ok()
    }
}

/// Warms one filtering [`OnlineTracker`] per dataset user by replaying its
/// sequence through the emission table, and indexes users by id.
fn warm_trackers(
    dataset: &Dataset,
    table: &EmissionTable,
    n_levels: usize,
) -> Result<(Vec<OnlineTracker>, HashMap<UserId, usize>)> {
    let mut trackers = Vec::with_capacity(dataset.n_users());
    let mut user_index = HashMap::with_capacity(dataset.n_users());
    for (u, seq) in dataset.sequences().iter().enumerate() {
        if user_index.insert(seq.user, u).is_some() {
            return Err(CoreError::DegenerateFit {
                distribution: "streaming session",
                reason: "dataset contains two sequences for one user id",
            });
        }
        let mut tracker = OnlineTracker::new(n_levels)?;
        for action in seq.actions() {
            tracker.observe_item(table, action.item)?;
        }
        trackers.push(tracker);
    }
    Ok((trackers, user_index))
}

/// Filtering posterior of one ingested action over its admissible levels:
/// a softmax of `transition log-probability + emission score`, restricted
/// to all levels for a user's first action (weighted by the initial
/// distribution) or to the two-way stay/advance extension of the
/// committed path otherwise. Degenerate rows (every admissible level
/// scoring `-inf`) collapse to the committed level, mirroring what the
/// hard path records.
fn extension_posterior(
    transitions: &TransitionModel,
    row: &[f64],
    last: Option<SkillLevel>,
    committed: SkillLevel,
) -> Vec<f64> {
    let s_max = row.len();
    let mut post = vec![f64::NEG_INFINITY; s_max];
    match last {
        None => {
            for (s, (p, &e)) in post.iter_mut().zip(row).enumerate() {
                *p = transitions.log_init(crate::types::skill_level_from_index(s)) + e;
            }
        }
        Some(last) => {
            let li = last as usize - 1;
            if let (Some(p), Some(&e)) = (post.get_mut(li), row.get(li)) {
                *p = transitions.log_stay(last) + e;
            }
            if let (Some(p), Some(&e)) = (post.get_mut(li + 1), row.get(li + 1)) {
                *p = transitions.log_advance(last) + e;
            }
        }
    }
    let max = post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        post.fill(0.0);
        if let Some(p) = post.get_mut(committed as usize - 1) {
            *p = 1.0;
        }
        return post;
    }
    let mut sum = 0.0;
    for p in post.iter_mut() {
        *p = (*p - max).exp();
        sum += *p;
    }
    for p in post.iter_mut() {
        *p /= sum;
    }
    post
}

/// Index of the maximum value, lowest index on ties.
fn argmax_low(row: &[f64]) -> usize {
    let (mut best, mut best_v) = match row.first() {
        Some(&v) => (0, v),
        None => return 0,
    };
    for (i, &v) in row.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::train::train;

    /// Progression dataset: users move through item categories over time.
    fn progression_dataset(n_users: usize, len: usize, n_cats: u32) -> Dataset {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical {
                cardinality: n_cats,
            },
            FeatureKind::Count,
        ])
        .unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..n_cats)
            .map(|c| {
                vec![
                    FeatureValue::Categorical(c),
                    FeatureValue::Count(1 + 4 * c as u64),
                ]
            })
            .collect();
        let sequences: Vec<ActionSequence> = (0..n_users as u32)
            .map(|u| {
                let actions: Vec<Action> = (0..len)
                    .map(|t| {
                        let cat = (t * n_cats as usize / len) as u32;
                        Action::new(t as i64, u, cat)
                    })
                    .collect();
                ActionSequence::new(u, actions).unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    fn trained_session(policy: RefitPolicy) -> StreamingSession {
        let ds = progression_dataset(8, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        StreamingSession::resume(ds, &result, cfg, ParallelConfig::sequential(), policy).unwrap()
    }

    /// Bitwise model equality over the full item × level likelihood grid.
    fn models_identical(a: &SkillModel, b: &SkillModel, ds: &Dataset) -> bool {
        (0..ds.n_items()).all(|item| {
            (1..=a.n_levels() as SkillLevel).all(|s| {
                let x = a.item_log_likelihood(ds.item_features(item as u32), s);
                let y = b.item_log_likelihood(ds.item_features(item as u32), s);
                x.to_bits() == y.to_bits()
            })
        })
    }

    #[test]
    fn resume_reproduces_converged_model_bitwise() {
        let ds = progression_dataset(8, 12, 3);
        let cfg = TrainConfig::new(3).with_min_init_actions(4);
        let result = train(&ds, &cfg).unwrap();
        assert!(result.converged);
        let session = StreamingSession::resume(
            ds.clone(),
            &result,
            cfg,
            ParallelConfig::sequential(),
            RefitPolicy::EveryBatch,
        )
        .unwrap();
        assert!(models_identical(session.model(), &result.model, &ds));
    }

    #[test]
    fn ingest_extends_monotone_assignments_and_exact_statistics() {
        let mut session = trained_session(RefitPolicy::EveryBatch);
        let t0 = 100; // past every training timestamp
        for (k, user) in [0u32, 0, 3, 3, 3].iter().enumerate() {
            let level = session
                .ingest(Action::new(t0 + k as i64, *user, 2))
                .unwrap();
            assert!((1..=3).contains(&level));
        }
        assert!(session.assignments().is_monotone());
        assert_eq!(session.total_ingested(), 5);
        assert_eq!(session.pending_actions(), 0); // EveryBatch refits per ingest
        assert_eq!(session.dataset().n_actions(), 8 * 12 + 5);

        // The refit model must equal a from-scratch parameter fit of the
        // grown dataset under the session's assignments, bit for bit.
        let fresh = StatsGrid::build(session.dataset(), session.assignments(), 3)
            .unwrap()
            .fit_model(session.dataset(), session.config().lambda)
            .unwrap();
        assert!(models_identical(session.model(), &fresh, session.dataset()));

        // And the emission table must match a fresh build of that model.
        let fresh_table = EmissionTable::build(session.model(), session.dataset());
        for item in 0..session.dataset().n_items() as u32 {
            for s in 1..=3u8 {
                assert_eq!(
                    session.table.log_likelihood(item, s).to_bits(),
                    fresh_table.log_likelihood(item, s).to_bits()
                );
            }
        }
    }

    #[test]
    fn unknown_user_is_admitted_with_fresh_sequence() {
        let mut session = trained_session(RefitPolicy::EveryBatch);
        assert_eq!(session.committed_level(42), None);
        let level = session.ingest(Action::new(0, 42, 0)).unwrap();
        assert_eq!(session.n_users(), 9);
        assert_eq!(session.committed_level(42), Some(level));
        assert!(session.filtered_level(42).is_some());
        // The new user's next action continues their own sequence.
        session.ingest(Action::new(1, 42, 1)).unwrap();
        assert_eq!(session.dataset().sequences()[8].len(), 2);
    }

    #[test]
    fn every_n_actions_policy_defers_refit() {
        let mut session = trained_session(RefitPolicy::EveryNActions(3));
        let before = session.model().clone();
        session.ingest(Action::new(100, 0, 2)).unwrap();
        session.ingest(Action::new(101, 0, 2)).unwrap();
        // Not due yet: model untouched, statistics pending.
        assert_eq!(session.pending_actions(), 2);
        assert!(models_identical(
            session.model(),
            &before,
            session.dataset()
        ));
        session.ingest(Action::new(102, 0, 2)).unwrap();
        assert_eq!(session.pending_actions(), 0);
    }

    #[test]
    fn manual_policy_refits_only_on_demand() {
        let mut session = trained_session(RefitPolicy::Manual);
        let before = session.model().clone();
        for k in 0..5 {
            session.ingest(Action::new(100 + k, 1, 2)).unwrap();
        }
        assert_eq!(session.pending_actions(), 5);
        assert!(models_identical(
            session.model(),
            &before,
            session.dataset()
        ));
        let refit_levels = session.refit().unwrap();
        assert!(refit_levels >= 1);
        assert_eq!(session.pending_actions(), 0);
        // Refitting again with nothing pending is a no-op.
        assert_eq!(session.refit().unwrap(), 0);
    }

    #[test]
    fn batch_equals_singles_under_manual_policy() {
        let actions: Vec<Action> = (0..6).map(|k| Action::new(100 + k, 2, 2)).collect();
        let mut batched = trained_session(RefitPolicy::Manual);
        let mut single = trained_session(RefitPolicy::Manual);
        let batch_levels = batched.ingest_batch(&actions).unwrap();
        let single_levels: Vec<SkillLevel> =
            actions.iter().map(|&a| single.ingest(a).unwrap()).collect();
        assert_eq!(batch_levels, single_levels);
        batched.refit().unwrap();
        single.refit().unwrap();
        assert_eq!(batched.assignments(), single.assignments());
        assert!(models_identical(
            batched.model(),
            single.model(),
            batched.dataset()
        ));
    }

    #[test]
    fn invalid_actions_leave_session_unchanged() {
        let mut session = trained_session(RefitPolicy::EveryBatch);
        let n_actions = session.dataset().n_actions();
        // Unknown item.
        assert!(session.ingest(Action::new(100, 0, 99)).is_err());
        // Time regression for a known user (training data ends at t=11).
        assert!(session.ingest(Action::new(-5, 0, 0)).is_err());
        assert_eq!(session.dataset().n_actions(), n_actions);
        assert_eq!(session.total_ingested(), 0);
        assert_eq!(session.pending_actions(), 0);
    }

    #[test]
    fn em_resume_preserves_em_model_bitwise() {
        let ds = progression_dataset(8, 12, 3);
        let trainer = crate::train::Trainer::new(3)
            .with_min_init_actions(4)
            .with_max_iterations(20)
            .em();
        let fitted = trainer.fit(&ds).unwrap();
        let session = trainer
            .fit_session(ds.clone(), RefitPolicy::Manual)
            .unwrap();
        assert!(session.is_em());
        // The old behavior hard-refit the model at construction,
        // discarding the soft fit; the soft continuation keeps it.
        assert!(models_identical(session.model(), &fitted.model, &ds));
        assert_eq!(session.assignments(), &fitted.assignments);
        assert_eq!(session.pending_actions(), 0);
    }

    #[test]
    fn em_session_ingests_and_soft_refits_dirty_levels() {
        let ds = progression_dataset(8, 12, 3);
        let trainer = crate::train::Trainer::new(3)
            .with_min_init_actions(4)
            .with_max_iterations(20)
            .em();
        let mut session = trainer.fit_session(ds, RefitPolicy::Manual).unwrap();
        let before = session.model().clone();
        for k in 0..6 {
            let level = session.ingest(Action::new(100 + k, 1, 2)).unwrap();
            assert!((1..=3).contains(&level));
        }
        assert!(session.assignments().is_monotone());
        assert_eq!(session.pending_actions(), 6);
        // Model untouched until the refit; the refit touches at least one
        // but not necessarily all levels.
        assert!(models_identical(
            session.model(),
            &before,
            session.dataset()
        ));
        let n_refit = session.refit().unwrap();
        assert!((1..=3).contains(&n_refit));
        assert_eq!(session.pending_actions(), 0);
        assert!(!models_identical(
            session.model(),
            &before,
            session.dataset()
        ));
        // The emission table tracks the refit model exactly.
        let fresh_table = EmissionTable::build(session.model(), session.dataset());
        for item in 0..session.dataset().n_items() as u32 {
            for s in 1..=3u8 {
                assert_eq!(
                    session.table.log_likelihood(item, s).to_bits(),
                    fresh_table.log_likelihood(item, s).to_bits()
                );
            }
        }
        // Refitting again with nothing pending is a no-op.
        assert_eq!(session.refit().unwrap(), 0);
    }

    #[test]
    fn em_session_admits_unknown_users() {
        let ds = progression_dataset(8, 12, 3);
        let trainer = crate::train::Trainer::new(3)
            .with_min_init_actions(4)
            .with_max_iterations(20)
            .em();
        let mut session = trainer.fit_session(ds, RefitPolicy::EveryBatch).unwrap();
        let level = session.ingest(Action::new(0, 42, 0)).unwrap();
        assert_eq!(session.n_users(), 9);
        assert_eq!(session.committed_level(42), Some(level));
        // Invalid actions still leave the session unchanged in EM mode.
        let n_actions = session.dataset().n_actions();
        assert!(session.ingest(Action::new(100, 0, 99)).is_err());
        assert_eq!(session.dataset().n_actions(), n_actions);
    }

    #[test]
    fn extension_posterior_is_normalized_and_admissible() {
        let trans = TransitionModel::uninformative(3).unwrap();
        let row = [-1.0, -2.0, -0.5];
        // First action: all levels admissible.
        let first = extension_posterior(&trans, &row, None, 3);
        assert!((first.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(first.iter().all(|&p| p > 0.0));
        // Mid-path: only stay/advance carry mass.
        let mid = extension_posterior(&trans, &row, Some(1), 1);
        assert!((mid.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(mid[2], 0.0);
        assert!(mid[0] > 0.0 && mid[1] > 0.0);
        // Top level: all mass stays.
        let top = extension_posterior(&trans, &row, Some(3), 3);
        assert_eq!(top, vec![0.0, 0.0, 1.0]);
        // Degenerate emissions collapse to the committed level.
        let dead = [f64::NEG_INFINITY; 3];
        let fallback = extension_posterior(&trans, &dead, Some(2), 2);
        assert_eq!(fallback, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn refit_tuner_is_deterministic_and_clamped() {
        let tuner = RefitTuner::new(2, 4, 64).unwrap();
        // Above target: halve, clamped below.
        assert_eq!(tuner.next_interval(16, 3), 8);
        assert_eq!(tuner.next_interval(4, 5), 4);
        // Below target: double, clamped above.
        assert_eq!(tuner.next_interval(16, 1), 32);
        assert_eq!(tuner.next_interval(64, 0), 64);
        // On target: unchanged.
        assert_eq!(tuner.next_interval(16, 2), 16);
        // Out-of-range current intervals are pulled into range first.
        assert_eq!(tuner.next_interval(1_000, 2), 64);
        assert!(RefitTuner::new(0, 1, 8).is_err());
        assert!(RefitTuner::new(2, 8, 4).is_err());
    }

    #[test]
    fn tuner_widens_interval_when_refits_run_clean() {
        let mut session = trained_session(RefitPolicy::EveryNActions(2));
        session.set_tuner(Some(RefitTuner::new(3, 1, 16).unwrap()));
        // Two same-item ingests trigger a refit touching at most a
        // couple of levels — below the target of 3 — so the interval
        // doubles afterwards.
        session.ingest(Action::new(100, 0, 2)).unwrap();
        session.ingest(Action::new(101, 0, 2)).unwrap();
        assert_eq!(session.pending_actions(), 0);
        match session.policy() {
            RefitPolicy::EveryNActions(n) => assert_eq!(n, 4),
            other => panic!("policy changed kind: {other:?}"),
        }
        assert!(session.tuner().is_some());
    }

    #[test]
    fn non_monotone_assignments_rejected_at_construction() {
        let ds = progression_dataset(2, 3, 2);
        let bad = SkillAssignments {
            per_user: vec![vec![2, 1, 1], vec![1, 1, 1]],
        };
        let err = StreamingSession::new(
            ds,
            bad,
            TrainConfig::new(2),
            ParallelConfig::sequential(),
            RefitPolicy::Manual,
        );
        assert!(err.is_err());
    }
}
