//! Item prediction (paper §VI-E, Tables X–XI).
//!
//! Protocol: hold out one action per user (at a random or the last
//! position), train on the rest, infer the held-out action's skill level
//! from the user's chronologically nearest training action, rank all items
//! by the inferred level's item-ID distribution, and score the rank of the
//! true item (Acc@10 and reciprocal rank).

use crate::dist::FeatureDistribution;
use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::model_selection::nearest_skill;
use crate::rng::SplitMix64;
use crate::types::{
    Action, ActionSequence, Dataset, ItemId, SkillAssignments, SkillLevel, Timestamp,
};

/// Which position to hold out from each sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldoutPosition {
    /// A uniformly random position (missing-data recovery setting).
    Random {
        /// Seed for the position choice.
        seed: u64,
    },
    /// The final action (future-forecasting setting).
    Last,
}

/// A per-user holdout: the training dataset plus one test action per user
/// (users with fewer than 2 actions contribute no test action).
#[derive(Debug, Clone)]
pub struct PredictionSplit {
    /// Training dataset with held-out actions removed.
    pub train: Dataset,
    /// `(training-sequence index, held-out action)` pairs.
    pub test: Vec<(usize, Action)>,
}

/// Builds the one-action-per-user holdout split.
pub fn holdout_split(dataset: &Dataset, position: HoldoutPosition) -> Result<PredictionSplit> {
    let mut rng = match position {
        HoldoutPosition::Random { seed } => Some(SplitMix64::new(seed)),
        HoldoutPosition::Last => None,
    };
    let mut train_seqs = Vec::with_capacity(dataset.n_users());
    let mut test = Vec::new();
    for (u, seq) in dataset.sequences().iter().enumerate() {
        if seq.len() < 2 {
            train_seqs.push(seq.clone());
            continue;
        }
        let idx = match &mut rng {
            Some(rng) => rng.next_below(seq.len()),
            None => seq.len() - 1,
        };
        let mut actions = seq.actions().to_vec();
        let held = actions.remove(idx);
        train_seqs.push(ActionSequence::new(seq.user, actions)?);
        test.push((u, held));
    }
    let train = Dataset::new(
        dataset.schema().clone(),
        dataset.items().to_vec(),
        train_seqs,
    )?;
    Ok(PredictionSplit { train, test })
}

/// The 1-based rank of `target` among all items under the skill level's
/// item-ID distribution.
///
/// `id_feature` is the index of the categorical item-ID feature in the
/// model's schema. Ties are broken by item ID (deterministic, matching a
/// stable descending sort).
pub fn rank_of_item(
    model: &SkillModel,
    id_feature: usize,
    level: SkillLevel,
    target: ItemId,
    n_items: usize,
) -> Result<usize> {
    let cell = model.cell(level, id_feature)?;
    let FeatureDistribution::Categorical(dist) = cell else {
        return Err(CoreError::FeatureKindMismatch {
            feature: id_feature,
            expected: "categorical",
            got: "non-categorical",
        });
    };
    let p_target = dist.prob(target);
    let mut rank = 1usize;
    for i in 0..n_items as u32 {
        if i == target {
            continue;
        }
        let p = dist.prob(i);
        if p > p_target || (p == p_target && i < target) {
            rank += 1;
        }
    }
    Ok(rank)
}

/// The 1-based rank of `target` among all table items by the *full*
/// emission log-likelihood `log P(i | level)` — the multi-faceted
/// generalization of [`rank_of_item`], read from a precomputed
/// [`EmissionTable`].
///
/// For a model whose only feature is the item-ID categorical this coincides
/// with the paper's §VI-E protocol (log is monotone, so the ordering is the
/// same); with richer schemas it ranks by the whole generative likelihood.
/// Ties break by item ID, matching [`rank_of_item`].
pub fn rank_of_item_by_emission(
    table: &EmissionTable,
    level: SkillLevel,
    target: ItemId,
) -> Result<usize> {
    if target as usize >= table.n_items() {
        return Err(CoreError::FeatureIndexOutOfBounds {
            index: target as usize,
            len: table.n_items(),
        });
    }
    let ll_target = table.log_likelihood(target, level);
    let mut rank = 1usize;
    for i in 0..table.n_items() as u32 {
        if i == target {
            continue;
        }
        let ll = table.log_likelihood(i, level);
        if ll > ll_target || (ll == ll_target && i < target) {
            rank += 1;
        }
    }
    Ok(rank)
}

/// Top-`k` items for a skill level by item-ID probability (descending,
/// ties by ID). Useful for qualitative tables (Tables IV–V).
pub fn top_items_for_level(
    model: &SkillModel,
    id_feature: usize,
    level: SkillLevel,
    k: usize,
) -> Result<Vec<(ItemId, f64)>> {
    let cell = model.cell(level, id_feature)?;
    let FeatureDistribution::Categorical(dist) = cell else {
        return Err(CoreError::FeatureKindMismatch {
            feature: id_feature,
            expected: "categorical",
            got: "non-categorical",
        });
    };
    let mut scored: Vec<(ItemId, f64)> = dist
        .probs()
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u32, p))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    Ok(scored)
}

/// One prediction outcome: the rank of the true item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionOutcome {
    /// The held-out action's user (training-sequence index).
    pub sequence_index: usize,
    /// The true item.
    pub item: ItemId,
    /// Inferred skill level at the held-out time.
    pub level: SkillLevel,
    /// 1-based rank of the true item in the model's ranking.
    pub rank: usize,
}

/// Scores every held-out action: infers the skill level from the nearest
/// training action and ranks the true item.
///
/// `assignments` must correspond to `split.train` (same model training run).
pub fn evaluate_item_prediction(
    model: &SkillModel,
    split: &PredictionSplit,
    assignments: &SkillAssignments,
    id_feature: usize,
) -> Result<Vec<PredictionOutcome>> {
    if assignments.per_user.len() != split.train.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs training sequences",
            left: assignments.per_user.len(),
            right: split.train.n_users(),
        });
    }
    let n_items = split.train.n_items();
    let mut out = Vec::with_capacity(split.test.len());
    for &(u, action) in &split.test {
        let seq = &split.train.sequences()[u];
        let levels = &assignments.per_user[u];
        let times: Vec<Timestamp> = seq.actions().iter().map(|a| a.time).collect();
        let Some(level) = nearest_skill(&times, levels, action.time) else {
            continue;
        };
        let rank = rank_of_item(model, id_feature, level, action.item, n_items)?;
        out.push(PredictionOutcome {
            sequence_index: u,
            item: action.item,
            level,
            rank,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Categorical;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};

    fn id_model(probs_per_level: Vec<Vec<f64>>) -> SkillModel {
        let n_items = probs_per_level[0].len() as u32;
        let schema = FeatureSchema::id_only(n_items).unwrap();
        let cells = probs_per_level
            .into_iter()
            .map(|p| {
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(p).unwrap(),
                )]
            })
            .collect();
        SkillModel::new(schema, 2, cells).unwrap()
    }

    fn id_dataset(seq_items: &[&[u32]]) -> Dataset {
        let n_items = seq_items.iter().flat_map(|s| s.iter()).max().unwrap() + 1;
        let schema = FeatureSchema::id_only(n_items).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..n_items)
            .map(|i| vec![FeatureValue::Categorical(i)])
            .collect();
        let sequences: Vec<ActionSequence> = seq_items
            .iter()
            .enumerate()
            .map(|(u, items)| {
                ActionSequence::new(
                    u as u32,
                    items
                        .iter()
                        .enumerate()
                        .map(|(t, &i)| Action::new(t as i64, u as u32, i))
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        Dataset::new(schema, items, sequences).unwrap()
    }

    #[test]
    fn rank_respects_probabilities_and_ties() {
        let m = id_model(vec![vec![0.5, 0.2, 0.2, 0.1], vec![0.1, 0.2, 0.2, 0.5]]);
        assert_eq!(rank_of_item(&m, 0, 1, 0, 4).unwrap(), 1);
        // Items 1 and 2 tie at 0.2; tie broken by ID: item1 rank 2, item2 rank 3.
        assert_eq!(rank_of_item(&m, 0, 1, 1, 4).unwrap(), 2);
        assert_eq!(rank_of_item(&m, 0, 1, 2, 4).unwrap(), 3);
        assert_eq!(rank_of_item(&m, 0, 1, 3, 4).unwrap(), 4);
        // Level 2 reverses the ordering.
        assert_eq!(rank_of_item(&m, 0, 2, 3, 4).unwrap(), 1);
    }

    #[test]
    fn emission_rank_matches_id_rank_for_id_only_models() {
        let m = id_model(vec![vec![0.5, 0.2, 0.2, 0.1], vec![0.1, 0.2, 0.2, 0.5]]);
        let ds = id_dataset(&[&[0, 1, 2, 3]]);
        let table = EmissionTable::build(&m, &ds);
        for level in 1..=2u8 {
            for target in 0..4u32 {
                assert_eq!(
                    rank_of_item_by_emission(&table, level, target).unwrap(),
                    rank_of_item(&m, 0, level, target, 4).unwrap(),
                    "level {level} target {target}"
                );
            }
        }
        assert!(rank_of_item_by_emission(&table, 1, 99).is_err());
    }

    #[test]
    fn top_items_sorted_descending() {
        let m = id_model(vec![vec![0.1, 0.6, 0.3], vec![0.4, 0.3, 0.3]]);
        let top = top_items_for_level(&m, 0, 1, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn holdout_last_removes_final_action() {
        let ds = id_dataset(&[&[0, 1, 2], &[2, 0]]);
        let split = holdout_split(&ds, HoldoutPosition::Last).unwrap();
        assert_eq!(split.test.len(), 2);
        assert_eq!(split.test[0].1.item, 2);
        assert_eq!(split.test[1].1.item, 0);
        assert_eq!(split.train.n_actions(), 3);
    }

    #[test]
    fn holdout_random_is_deterministic_per_seed() {
        let ds = id_dataset(&[&[0, 1, 2, 0, 1], &[2, 0, 1]]);
        let a = holdout_split(&ds, HoldoutPosition::Random { seed: 4 }).unwrap();
        let b = holdout_split(&ds, HoldoutPosition::Random { seed: 4 }).unwrap();
        assert_eq!(
            a.test.iter().map(|t| t.1).collect::<Vec<_>>(),
            b.test.iter().map(|t| t.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn singleton_sequences_contribute_no_test_action() {
        let ds = id_dataset(&[&[0], &[1, 2]]);
        let split = holdout_split(&ds, HoldoutPosition::Last).unwrap();
        assert_eq!(split.test.len(), 1);
        assert_eq!(split.train.sequences()[0].len(), 1);
    }

    #[test]
    fn evaluate_produces_one_outcome_per_test_action() {
        let ds = id_dataset(&[&[0, 0, 1, 1], &[1, 1, 0]]);
        let split = holdout_split(&ds, HoldoutPosition::Last).unwrap();
        let (assignments, model) =
            crate::baselines::uniform_baseline(&split.train, 2, 0.01).unwrap();
        let outcomes = evaluate_item_prediction(&model, &split, &assignments, 0).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.rank >= 1 && o.rank <= ds.n_items());
        }
    }

    #[test]
    fn rank_errors_on_noncategorical_feature() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let cells = vec![
            vec![FeatureDistribution::Poisson(
                crate::dist::Poisson::new(1.0).unwrap(),
            )],
            vec![FeatureDistribution::Poisson(
                crate::dist::Poisson::new(2.0).unwrap(),
            )],
        ];
        let m = SkillModel::new(schema, 2, cells).unwrap();
        assert!(rank_of_item(&m, 0, 1, 0, 3).is_err());
    }
}
