//! One-stop import for the common surface of `upskill-core`.
//!
//! Pulls in the types needed for the standard workflow — describe items
//! ([`FeatureSchema`]), assemble a [`Dataset`], train with [`Trainer`] (or
//! the [`train`] free functions, or [`train_chunked`] when the corpus does
//! not fit in memory), then estimate difficulty ([`SkillPrior`]), track
//! users online ([`OnlineTracker`]), keep folding in fresh actions with a
//! [`StreamingSession`], snapshot it as a [`SessionBundle`], and serve it
//! concurrently (epoch-swapped tables via [`EpochCell`], pooled request
//! workspaces via [`WorkspacePool`], auto-tuned refits via
//! [`RefitTuner`]).
//!
//! ```
//! use upskill_core::prelude::*;
//! ```

pub use crate::assign::AssignWorkspace;
pub use crate::bundle::SessionBundle;
pub use crate::chunked::{
    train_chunked, train_em_chunked, AssignmentStorage, ChunkSource, ChunkedDataset,
    ChunkedTrainResult, DatasetChunk, DatasetChunks,
};
pub use crate::difficulty::SkillPrior;
pub use crate::em::{train_em_with_parallelism, EmConfig, FbWorkspace};
pub use crate::emission::EmissionTable;
pub use crate::epoch::EpochCell;
pub use crate::error::{CoreError, Result};
pub use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
pub use crate::incremental::StatsGrid;
pub use crate::model::SkillModel;
pub use crate::online::OnlineTracker;
pub use crate::parallel::ParallelConfig;
pub use crate::policy::{MixQuota, PolicyConfig, PolicyMode, PolicyRecommendation, PolicyState};
pub use crate::pool::{PoolGuard, WorkspacePool};
pub use crate::recommend::{LevelBand, RecommendConfig, Recommendation};
pub use crate::streaming::{RefitPolicy, RefitTuner, StreamingSession};
pub use crate::train::{train, train_with_parallelism, TrainConfig, TrainResult, Trainer};
pub use crate::types::{Action, ActionSequence, Dataset, SkillAssignments};
