//! One-stop import for the common surface of `upskill-core`.
//!
//! Pulls in the types needed for the standard workflow — describe items
//! ([`FeatureSchema`]), assemble a [`Dataset`], train with [`Trainer`] (or
//! the [`train`] free functions), then estimate difficulty
//! ([`SkillPrior`]), track users online ([`OnlineTracker`]), or keep
//! folding in fresh actions with a [`StreamingSession`].
//!
//! ```
//! use upskill_core::prelude::*;
//! ```

pub use crate::difficulty::SkillPrior;
pub use crate::emission::EmissionTable;
pub use crate::error::{CoreError, Result};
pub use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
pub use crate::incremental::StatsGrid;
pub use crate::model::SkillModel;
pub use crate::online::OnlineTracker;
pub use crate::parallel::ParallelConfig;
pub use crate::streaming::{RefitPolicy, StreamingSession};
pub use crate::train::{train, train_with_parallelism, TrainConfig, TrainResult, Trainer};
pub use crate::types::{Action, ActionSequence, Dataset, SkillAssignments};
