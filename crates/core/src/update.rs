//! The parameter-update step (Eq. 5–7 of the paper).
//!
//! Given fixed skill assignments, the model parameters decompose by
//! (feature, skill) cell: each cell's MLE depends only on the feature values
//! of actions assigned to that skill level. This module accumulates the
//! per-cell sufficient statistics in one pass over the data
//! (`O(|A| · F)`), then fits each cell (`O(F·S)` fits).

use crate::dist::{FeatureAccumulator, FeatureDistribution};
use crate::error::{CoreError, Result};
use crate::model::SkillModel;
use crate::types::{Dataset, SkillAssignments};

/// Accumulates per-(skill, feature) sufficient statistics over the dataset.
///
/// Returns a grid `acc[s-1][f]`.
pub fn accumulate(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    n_levels: usize,
) -> Result<Vec<Vec<FeatureAccumulator>>> {
    if assignments.per_user.len() != dataset.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs sequences",
            left: assignments.per_user.len(),
            right: dataset.n_users(),
        });
    }
    let schema = dataset.schema();
    let mut grid: Vec<Vec<FeatureAccumulator>> = (0..n_levels)
        .map(|_| {
            schema
                .kinds()
                .iter()
                .map(|&k| FeatureAccumulator::new(k))
                .collect()
        })
        .collect();

    for (seq, levels) in dataset.sequences().iter().zip(&assignments.per_user) {
        if seq.len() != levels.len() {
            return Err(CoreError::LengthMismatch {
                context: "assignment vs sequence length",
                left: levels.len(),
                right: seq.len(),
            });
        }
        for (action, &s) in seq.actions().iter().zip(levels) {
            let row = grid
                .get_mut(s as usize - 1)
                .ok_or(CoreError::InvalidSkillCount {
                    requested: s as usize,
                })?;
            let features = dataset.item_features(action.item);
            for (acc, value) in row.iter_mut().zip(features) {
                acc.push(value)?;
            }
        }
    }
    Ok(grid)
}

/// Fits a full [`SkillModel`] from skill assignments (the M-like step).
///
/// `lambda` is the categorical smoothing pseudo-count (paper default 0.01).
/// Cells with no observations fall back to weakly-informative defaults.
pub fn fit_model(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    n_levels: usize,
    lambda: f64,
) -> Result<SkillModel> {
    let grid = accumulate(dataset, assignments, n_levels)?;
    let cells = fit_cells(&grid, lambda)?;
    SkillModel::new(dataset.schema().clone(), n_levels, cells)
}

/// Fits every cell of an accumulator grid.
pub fn fit_cells(
    grid: &[Vec<FeatureAccumulator>],
    lambda: f64,
) -> Result<Vec<Vec<FeatureDistribution>>> {
    grid.iter()
        .map(|row| row.iter().map(|acc| acc.fit(lambda)).collect())
        .collect()
}

/// Objective value (Eq. 3): total log-likelihood of the data under the
/// model at the given assignments.
pub fn log_likelihood(
    dataset: &Dataset,
    assignments: &SkillAssignments,
    model: &SkillModel,
) -> Result<f64> {
    if assignments.per_user.len() != dataset.n_users() {
        return Err(CoreError::LengthMismatch {
            context: "assignments vs sequences",
            left: assignments.per_user.len(),
            right: dataset.n_users(),
        });
    }
    let mut total = 0.0;
    for (seq, levels) in dataset.sequences().iter().zip(&assignments.per_user) {
        for (action, &s) in seq.actions().iter().zip(levels) {
            total += model.item_log_likelihood(dataset.item_features(action.item), s);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
    use crate::types::{Action, ActionSequence};

    fn toy_dataset() -> Dataset {
        // 2 items: item 0 = (cat 0, count 2), item 1 = (cat 1, count 6).
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 2 },
            FeatureKind::Count,
        ])
        .unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0), FeatureValue::Count(2)],
            vec![FeatureValue::Categorical(1), FeatureValue::Count(6)],
        ];
        let seq = ActionSequence::new(
            0,
            vec![
                Action::new(0, 0, 0),
                Action::new(1, 0, 0),
                Action::new(2, 0, 1),
                Action::new(3, 0, 1),
            ],
        )
        .unwrap();
        Dataset::new(schema, items, vec![seq]).unwrap()
    }

    #[test]
    fn accumulate_groups_by_level() {
        let ds = toy_dataset();
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 1, 2, 2]],
        };
        let grid = accumulate(&ds, &assignments, 2).unwrap();
        // Level 1 saw two category-0 items; level 2 two category-1 items.
        let FeatureAccumulator::Categorical { counts } = &grid[0][0] else {
            panic!()
        };
        assert_eq!(counts, &vec![2, 0]);
        let FeatureAccumulator::Categorical { counts } = &grid[1][0] else {
            panic!()
        };
        assert_eq!(counts, &vec![0, 2]);
        // Count feature means.
        let FeatureAccumulator::Count { sum, n } = &grid[0][1] else {
            panic!()
        };
        assert_eq!((*sum, *n), (4.0, 2.0));
    }

    #[test]
    fn fit_model_recovers_per_level_parameters() {
        let ds = toy_dataset();
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 1, 2, 2]],
        };
        let model = fit_model(&ds, &assignments, 2, 0.01).unwrap();
        // Level 1 should strongly prefer category 0 and rate 2.
        let ll_easy_1 = model.item_log_likelihood(ds.item_features(0), 1);
        let ll_easy_2 = model.item_log_likelihood(ds.item_features(0), 2);
        assert!(ll_easy_1 > ll_easy_2);
        let ll_hard_2 = model.item_log_likelihood(ds.item_features(1), 2);
        let ll_hard_1 = model.item_log_likelihood(ds.item_features(1), 1);
        assert!(ll_hard_2 > ll_hard_1);
    }

    #[test]
    fn unobserved_level_gets_fallback() {
        let ds = toy_dataset();
        // Everything assigned to level 1; level 2 cells unobserved.
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 1, 1, 1]],
        };
        let model = fit_model(&ds, &assignments, 2, 0.01).unwrap();
        assert!(model
            .item_log_likelihood(ds.item_features(0), 2)
            .is_finite());
    }

    #[test]
    fn mismatched_assignments_rejected() {
        let ds = toy_dataset();
        let too_few = SkillAssignments { per_user: vec![] };
        assert!(accumulate(&ds, &too_few, 2).is_err());
        let wrong_len = SkillAssignments {
            per_user: vec![vec![1, 1]],
        };
        assert!(accumulate(&ds, &wrong_len, 2).is_err());
        let bad_level = SkillAssignments {
            per_user: vec![vec![1, 1, 3, 3]],
        };
        assert!(accumulate(&ds, &bad_level, 2).is_err());
    }

    #[test]
    fn log_likelihood_matches_manual_sum() {
        let ds = toy_dataset();
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 1, 2, 2]],
        };
        let model = fit_model(&ds, &assignments, 2, 0.01).unwrap();
        let ll = log_likelihood(&ds, &assignments, &model).unwrap();
        let manual = 2.0 * model.item_log_likelihood(ds.item_features(0), 1)
            + 2.0 * model.item_log_likelihood(ds.item_features(1), 2);
        assert!((ll - manual).abs() < 1e-12);
    }

    #[test]
    fn update_step_does_not_decrease_objective() {
        // Refitting parameters at fixed assignments must not lower Eq. 3.
        let ds = toy_dataset();
        let assignments = SkillAssignments {
            per_user: vec![vec![1, 2, 2, 2]],
        };
        let rough = fit_model(&ds, &assignments, 2, 1.0).unwrap(); // heavy smoothing
        let refit = fit_model(&ds, &assignments, 2, 0.0).unwrap(); // exact MLE
        let ll_rough = log_likelihood(&ds, &assignments, &rough).unwrap();
        let ll_refit = log_likelihood(&ds, &assignments, &refit).unwrap();
        assert!(ll_refit >= ll_rough - 1e-9);
    }
}
