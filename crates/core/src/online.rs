//! Online skill tracking: the forward pass of the assignment DP maintained
//! incrementally, so a deployed system can update a user's estimated skill
//! level in O(F·S) per incoming action without re-running training.
//!
//! The tracker is *filtering* (best level given the prefix); it agrees
//! with the prefix-optimal DP score at every step, though the final
//! *smoothed* assignment of early actions can differ once later evidence
//! arrives — exactly the usual Viterbi filtering-vs-smoothing distinction.

use serde::{Deserialize, Serialize};

use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::feature::FeatureValue;
use crate::model::SkillModel;
use crate::types::{ItemId, SkillLevel};

/// Incremental skill estimator for a single user.
///
/// ```
/// use upskill_core::dist::{Categorical, FeatureDistribution};
/// use upskill_core::feature::{FeatureKind, FeatureSchema, FeatureValue};
/// use upskill_core::model::SkillModel;
/// use upskill_core::online::OnlineTracker;
///
/// // Two levels over one categorical feature: level 1 prefers category 0,
/// // level 2 prefers category 1.
/// let schema = FeatureSchema::new(vec![
///     FeatureKind::Categorical { cardinality: 2 },
/// ])?;
/// let cells = vec![
///     vec![FeatureDistribution::Categorical(
///         Categorical::from_probs(vec![0.9, 0.1])?,
///     )],
///     vec![FeatureDistribution::Categorical(
///         Categorical::from_probs(vec![0.1, 0.9])?,
///     )],
/// ];
/// let model = SkillModel::new(schema, 2, cells)?;
///
/// let mut tracker = OnlineTracker::new(2)?;
/// assert_eq!(tracker.observe(&model, &[FeatureValue::Categorical(0)])?, 1);
/// // A hard selection immediately moves the estimate up (the monotone
/// // path "start at 1, advance" explains both actions well).
/// assert_eq!(tracker.observe(&model, &[FeatureValue::Categorical(1)])?, 2);
/// assert_eq!(tracker.observe(&model, &[FeatureValue::Categorical(1)])?, 2);
/// # Ok::<(), upskill_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineTracker {
    /// `scores[s-1]` = best log-likelihood of any monotone path over the
    /// observed prefix ending at level `s`.
    scores: Vec<f64>,
    n_observed: usize,
}

impl OnlineTracker {
    /// Creates a tracker for a model with `n_levels` levels.
    pub fn new(n_levels: usize) -> Result<Self> {
        if n_levels == 0 {
            return Err(CoreError::InvalidSkillCount { requested: 0 });
        }
        Ok(Self {
            scores: vec![0.0; n_levels],
            n_observed: 0,
        })
    }

    /// Number of actions observed so far.
    pub fn n_observed(&self) -> usize {
        self.n_observed
    }

    /// Feeds one action's item features; returns the current MAP level.
    pub fn observe(&mut self, model: &SkillModel, features: &[FeatureValue]) -> Result<SkillLevel> {
        if model.n_levels() != self.scores.len() {
            return Err(CoreError::LengthMismatch {
                context: "tracker levels vs model levels",
                left: self.scores.len(),
                right: model.n_levels(),
            });
        }
        let emissions = model.item_log_likelihoods(features);
        self.advance(&emissions);
        self.current_level()
    }

    /// Feeds one action by item id, reading emissions from a precomputed
    /// [`EmissionTable`] — no per-action allocation or distribution
    /// evaluation, so a deployed tracker costs `O(S)` per action between
    /// table refreshes. Identical result to [`OnlineTracker::observe`] with
    /// the model the table was built from.
    pub fn observe_item(&mut self, table: &EmissionTable, item: ItemId) -> Result<SkillLevel> {
        if table.n_levels() != self.scores.len() {
            return Err(CoreError::LengthMismatch {
                context: "tracker levels vs table levels",
                left: self.scores.len(),
                right: table.n_levels(),
            });
        }
        let row = table
            .checked_row(item)
            .ok_or(CoreError::FeatureIndexOutOfBounds {
                index: item as usize,
                len: table.n_items(),
            })?;
        self.advance(row);
        self.current_level()
    }

    /// Folds one emission vector into the prefix scores.
    fn advance(&mut self, emissions: &[f64]) {
        let s_max = self.scores.len();
        if self.n_observed == 0 {
            self.scores.copy_from_slice(emissions);
        } else {
            // In-place right-to-left update: scores[s] = max(scores[s],
            // scores[s-1]) + emit[s]. Right-to-left keeps scores[s-1]
            // un-updated when read.
            for s in (0..s_max).rev() {
                let stay = self.scores[s];
                let up = if s > 0 {
                    self.scores[s - 1]
                } else {
                    f64::NEG_INFINITY
                };
                self.scores[s] = stay.max(up) + emissions[s];
            }
        }
        self.n_observed += 1;
    }

    /// The current maximum-likelihood level (ties break low).
    pub fn current_level(&self) -> Result<SkillLevel> {
        if self.n_observed == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
        for (s, &score) in self.scores.iter().enumerate() {
            if score > best_score {
                best_score = score;
                best = s;
            }
        }
        if crate::float_cmp::is_neg_infinity(best_score) {
            return Err(CoreError::DegenerateFit {
                distribution: "online tracker",
                reason: "all paths impossible; enable smoothing",
            });
        }
        Ok((best + 1) as SkillLevel)
    }

    /// Raw per-level prefix scores (log-likelihoods).
    pub fn level_scores(&self) -> &[f64] {
        &self.scores
    }

    /// Posterior-like normalized weights over levels (softmax of scores).
    pub fn level_weights(&self) -> Vec<f64> {
        let max = self
            .scores
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            return vec![1.0 / self.scores.len() as f64; self.scores.len()];
        }
        let exps: Vec<f64> = self.scores.iter().map(|&s| (s - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign_sequence;
    use crate::dist::{Categorical, FeatureDistribution};
    use crate::feature::{FeatureKind, FeatureSchema};
    use crate::types::{Action, ActionSequence, Dataset};

    fn diagonal_model(s_max: usize) -> SkillModel {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical {
            cardinality: s_max as u32,
        }])
        .unwrap();
        let cells = (0..s_max)
            .map(|s| {
                let mut probs = vec![0.05; s_max];
                probs[s] = 1.0 - 0.05 * (s_max as f64 - 1.0);
                vec![FeatureDistribution::Categorical(
                    Categorical::from_probs(probs).unwrap(),
                )]
            })
            .collect();
        SkillModel::new(schema, s_max, cells).unwrap()
    }

    #[test]
    fn empty_tracker_has_no_level() {
        let t = OnlineTracker::new(3).unwrap();
        assert!(t.current_level().is_err());
        assert!(OnlineTracker::new(0).is_err());
    }

    #[test]
    fn tracks_progression() {
        let model = diagonal_model(3);
        let mut t = OnlineTracker::new(3).unwrap();
        let mut levels = Vec::new();
        for cat in [0u32, 0, 1, 1, 2, 2] {
            levels.push(
                t.observe(&model, &[FeatureValue::Categorical(cat)])
                    .unwrap(),
            );
        }
        // Filtering levels are monotone here and end at the top.
        assert_eq!(*levels.last().unwrap(), 3);
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.n_observed(), 6);
    }

    #[test]
    fn final_score_matches_batch_dp() {
        let model = diagonal_model(4);
        let cats = [0u32, 1, 1, 2, 3, 3, 2, 1];
        // Batch DP.
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 4 }]).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..4u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let seq = ActionSequence::new(
            0,
            cats.iter()
                .enumerate()
                .map(|(t, &c)| Action::new(t as i64, 0, c))
                .collect(),
        )
        .unwrap();
        let ds = Dataset::new(schema, items, vec![seq.clone()]).unwrap();
        let batch = assign_sequence(&model, &ds, &seq).unwrap();
        // Online.
        let mut tracker = OnlineTracker::new(4).unwrap();
        let mut last = 1;
        for &c in &cats {
            last = tracker
                .observe(&model, &[FeatureValue::Categorical(c)])
                .unwrap();
        }
        let online_best = tracker
            .level_scores()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((online_best - batch.log_likelihood).abs() < 1e-9);
        assert_eq!(last, *batch.levels.last().unwrap());
    }

    #[test]
    fn level_weights_normalize_and_peak_correctly() {
        let model = diagonal_model(3);
        let mut t = OnlineTracker::new(3).unwrap();
        for _ in 0..5 {
            t.observe(&model, &[FeatureValue::Categorical(2)]).unwrap();
        }
        let w = t.level_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[2] > w[0] && w[2] > w[1]);
    }

    #[test]
    fn observe_item_matches_observe() {
        let model = diagonal_model(3);
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 3 }]).unwrap();
        let items: Vec<Vec<FeatureValue>> = (0..3u32)
            .map(|c| vec![FeatureValue::Categorical(c)])
            .collect();
        let seq = ActionSequence::new(0, vec![Action::new(0, 0, 0)]).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();
        let table = EmissionTable::build(&model, &ds);
        let mut by_features = OnlineTracker::new(3).unwrap();
        let mut by_item = OnlineTracker::new(3).unwrap();
        for item in [0u32, 0, 1, 2, 2, 1] {
            let a = by_features
                .observe(&model, &[FeatureValue::Categorical(item)])
                .unwrap();
            let b = by_item.observe_item(&table, item).unwrap();
            assert_eq!(a, b);
            assert_eq!(by_features.level_scores(), by_item.level_scores());
        }
        assert!(by_item.observe_item(&table, 42).is_err());
        let mut wrong_size = OnlineTracker::new(4).unwrap();
        assert!(wrong_size.observe_item(&table, 0).is_err());
    }

    #[test]
    fn model_mismatch_rejected() {
        let model = diagonal_model(3);
        let mut t = OnlineTracker::new(4).unwrap();
        assert!(t.observe(&model, &[FeatureValue::Categorical(0)]).is_err());
    }
}
