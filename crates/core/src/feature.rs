//! Multi-faceted item features (Section III of the paper).
//!
//! Each item is a tuple `i = (i_1, …, i_F)` of features. The model assigns a
//! per-skill generative distribution to every feature; which distribution is
//! appropriate depends on the feature's *kind*:
//!
//! - [`FeatureKind::Categorical`] — e.g. a recipe category, a beer style, or
//!   the item ID itself; modeled by a smoothed categorical distribution.
//! - [`FeatureKind::Count`] — e.g. number of recipe steps; modeled by a
//!   Poisson distribution.
//! - [`FeatureKind::Positive`] — e.g. alcohol-by-volume; modeled by a gamma
//!   or log-normal distribution, selectable via [`PositiveModel`].

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Which continuous family models a positive real feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PositiveModel {
    /// Gamma distribution (shape/rate), the paper's default for ABV etc.
    #[default]
    Gamma,
    /// Log-normal distribution, mentioned as an alternative in §IV-A.
    LogNormal,
}

/// The statistical type of one item feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Discrete feature with values in `0..cardinality`.
    Categorical {
        /// Number of distinct categories (`C_f` in the paper).
        cardinality: u32,
    },
    /// Natural-number feature (0, 1, 2, …), Poisson-modeled.
    Count,
    /// Positive real feature, gamma- or log-normal-modeled.
    Positive {
        /// Continuous family to fit for this feature.
        model: PositiveModel,
    },
}

impl FeatureKind {
    /// Short human-readable name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureKind::Categorical { .. } => "categorical",
            FeatureKind::Count => "count",
            FeatureKind::Positive { .. } => "positive real",
        }
    }
}

/// One observed feature value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeatureValue {
    /// A category index in `0..cardinality`.
    Categorical(u32),
    /// A non-negative count.
    Count(u64),
    /// A strictly positive real value.
    Real(f64),
}

impl FeatureValue {
    /// Short human-readable name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureValue::Categorical(_) => "categorical",
            FeatureValue::Count(_) => "count",
            FeatureValue::Real(_) => "positive real",
        }
    }
}

/// The ordered list of feature kinds shared by every item in a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSchema {
    kinds: Vec<FeatureKind>,
    /// Optional display names, parallel to `kinds` (empty if unnamed).
    names: Vec<String>,
}

impl FeatureSchema {
    /// Creates a schema from feature kinds. Fails if `kinds` is empty or a
    /// categorical feature declares zero categories.
    pub fn new(kinds: Vec<FeatureKind>) -> Result<Self> {
        if kinds.is_empty() {
            return Err(CoreError::FeatureIndexOutOfBounds { index: 0, len: 0 });
        }
        for (i, k) in kinds.iter().enumerate() {
            if let FeatureKind::Categorical { cardinality: 0 } = k {
                return Err(CoreError::CategoryOutOfBounds {
                    feature: i,
                    value: 0,
                    cardinality: 0,
                });
            }
        }
        Ok(Self {
            kinds,
            names: Vec::new(),
        })
    }

    /// Creates a schema with display names for reports and plots.
    pub fn with_names(kinds: Vec<FeatureKind>, names: Vec<String>) -> Result<Self> {
        if kinds.len() != names.len() {
            return Err(CoreError::LengthMismatch {
                context: "schema kinds vs names",
                left: kinds.len(),
                right: names.len(),
            });
        }
        let mut schema = Self::new(kinds)?;
        schema.names = names;
        Ok(schema)
    }

    /// Number of features `F`.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the schema declares no features (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of the `f`-th feature.
    pub fn kind(&self, f: usize) -> Result<FeatureKind> {
        self.kinds
            .get(f)
            .copied()
            .ok_or(CoreError::FeatureIndexOutOfBounds {
                index: f,
                len: self.kinds.len(),
            })
    }

    /// All feature kinds in order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Display name of the `f`-th feature, or `"feature <f>"` if unnamed.
    pub fn name(&self, f: usize) -> String {
        self.names
            .get(f)
            .cloned()
            .unwrap_or_else(|| format!("feature {f}"))
    }

    /// Validates that an item's feature tuple conforms to this schema.
    pub fn validate_item(&self, features: &[FeatureValue]) -> Result<()> {
        if features.len() != self.kinds.len() {
            return Err(CoreError::LengthMismatch {
                context: "item features vs schema",
                left: features.len(),
                right: self.kinds.len(),
            });
        }
        for (f, (value, kind)) in features.iter().zip(&self.kinds).enumerate() {
            match (value, kind) {
                (FeatureValue::Categorical(v), FeatureKind::Categorical { cardinality }) => {
                    if v >= cardinality {
                        return Err(CoreError::CategoryOutOfBounds {
                            feature: f,
                            value: *v,
                            cardinality: *cardinality,
                        });
                    }
                }
                (FeatureValue::Count(_), FeatureKind::Count) => {}
                (FeatureValue::Real(x), FeatureKind::Positive { .. }) => {
                    if !x.is_finite() || *x <= 0.0 {
                        return Err(CoreError::InvalidFeatureValue {
                            feature: f,
                            value: *x,
                            reason: "positive real features must be finite and > 0",
                        });
                    }
                }
                (value, kind) => {
                    return Err(CoreError::FeatureKindMismatch {
                        feature: f,
                        expected: kind.name(),
                        got: value.name(),
                    });
                }
            }
        }
        Ok(())
    }

    /// A schema consisting of a single categorical feature over item IDs —
    /// the representation used by the ID baseline (Yang et al. 2014).
    pub fn id_only(n_items: u32) -> Result<Self> {
        Self::with_names(
            vec![FeatureKind::Categorical {
                cardinality: n_items,
            }],
            vec!["item id".to_string()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schema_rejected() {
        assert!(FeatureSchema::new(vec![]).is_err());
    }

    #[test]
    fn zero_cardinality_rejected() {
        let err =
            FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 0 }]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::CategoryOutOfBounds { cardinality: 0, .. }
        ));
    }

    #[test]
    fn names_must_match_kinds() {
        let err = FeatureSchema::with_names(vec![FeatureKind::Count], vec!["a".into(), "b".into()])
            .unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    #[test]
    fn validate_accepts_conforming_item() {
        let schema = FeatureSchema::new(vec![
            FeatureKind::Categorical { cardinality: 4 },
            FeatureKind::Count,
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
        ])
        .unwrap();
        let item = vec![
            FeatureValue::Categorical(3),
            FeatureValue::Count(12),
            FeatureValue::Real(5.5),
        ];
        schema.validate_item(&item).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let err = schema.validate_item(&[]).unwrap_err();
        assert!(matches!(err, CoreError::LengthMismatch { .. }));
    }

    #[test]
    fn validate_rejects_out_of_range_category() {
        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let err = schema
            .validate_item(&[FeatureValue::Categorical(2)])
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::CategoryOutOfBounds { value: 2, .. }
        ));
    }

    #[test]
    fn validate_rejects_kind_mismatch() {
        let schema = FeatureSchema::new(vec![FeatureKind::Count]).unwrap();
        let err = schema
            .validate_item(&[FeatureValue::Real(1.0)])
            .unwrap_err();
        assert!(matches!(err, CoreError::FeatureKindMismatch { .. }));
    }

    #[test]
    fn validate_rejects_nonpositive_real() {
        let schema = FeatureSchema::new(vec![FeatureKind::Positive {
            model: PositiveModel::Gamma,
        }])
        .unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(schema.validate_item(&[FeatureValue::Real(bad)]).is_err());
        }
    }

    #[test]
    fn id_only_schema_shape() {
        let schema = FeatureSchema::id_only(100).unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.name(0), "item id");
        assert!(matches!(
            schema.kind(0).unwrap(),
            FeatureKind::Categorical { cardinality: 100 }
        ));
    }
}
