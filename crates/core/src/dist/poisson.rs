//! Poisson distribution for count features (Eq. 7 of the paper).
//!
//! The per-skill Poisson rate is the sample mean of the counts observed at
//! that skill level — the closed-form MLE.

use serde::{Deserialize, Serialize};

use crate::dist::special::ln_factorial;
use crate::error::{CoreError, Result};

/// Lower bound on the fitted rate so that `log_pmf` stays finite even when a
/// skill level only observed zeros. Plays the same smoothing role as the
/// categorical pseudo-count.
pub const MIN_RATE: f64 = 1e-9;

/// A Poisson distribution with rate `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    rate: f64,
    ln_rate: f64,
}

impl Poisson {
    /// Creates a Poisson with the given rate.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "poisson rate",
                value: rate,
            });
        }
        Ok(Self {
            rate,
            ln_rate: rate.ln(),
        })
    }

    /// Closed-form MLE (Eq. 7): the sample mean, floored at [`MIN_RATE`].
    pub fn fit(samples: &[u64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::DegenerateFit {
                distribution: "poisson",
                reason: "no samples",
            });
        }
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        Self::new(mean.max(MIN_RATE))
    }

    /// Weighted MLE from a sum and a count (used by the trainer, which
    /// accumulates sufficient statistics instead of materializing samples).
    pub fn fit_from_moments(sum: f64, count: f64) -> Result<Self> {
        if count <= 0.0 {
            return Err(CoreError::DegenerateFit {
                distribution: "poisson",
                reason: "zero observation weight",
            });
        }
        Self::new((sum / count).max(MIN_RATE))
    }

    /// The rate parameter λ (also the mean and variance).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.rate
    }

    /// Log-probability mass at `k`.
    pub fn log_pmf(&self, k: u64) -> f64 {
        k as f64 * self.ln_rate - self.rate - ln_factorial(k)
    }

    /// Columnar variant of [`Poisson::log_pmf`]: adds the log-PMF of each
    /// count to the matching slot of `out`.
    ///
    /// Callers pass the counts pre-widened to `f64` together with their
    /// `ln k!` values so both are computed once per item across all skill
    /// levels instead of once per (item, level) cell; `λ` and `ln λ` are
    /// loop constants. Each contribution evaluates
    /// `k·ln λ − λ − ln k!` in exactly the scalar operation order, so the
    /// result is bitwise identical to [`Poisson::log_pmf`].
    pub fn log_pmf_batch(&self, ks: &[f64], ln_facts: &[f64], out: &mut [f64]) {
        let rate = self.rate;
        let ln_rate = self.ln_rate;
        for ((acc, &kf), &lf) in out.iter_mut().zip(ks).zip(ln_facts) {
            *acc += kf * ln_rate - rate - lf;
        }
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.log_pmf(k).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(Poisson::new(bad).is_err());
        }
    }

    #[test]
    fn fit_is_sample_mean() {
        let p = Poisson::fit(&[1, 2, 3, 4]).unwrap();
        assert!((p.rate() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn fit_empty_rejected() {
        assert!(Poisson::fit(&[]).is_err());
    }

    #[test]
    fn all_zero_samples_floored() {
        let p = Poisson::fit(&[0, 0, 0]).unwrap();
        assert_eq!(p.rate(), MIN_RATE);
        assert!(p.log_pmf(0).is_finite());
    }

    #[test]
    fn log_pmf_matches_known_values() {
        // Poisson(2): P(0)=e^-2, P(1)=2e^-2, P(3)=8/6·e^-2
        let p = Poisson::new(2.0).unwrap();
        assert!((p.pmf(0) - (-2.0f64).exp()).abs() < 1e-12);
        assert!((p.pmf(1) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
        assert!((p.pmf(3) - 8.0 / 6.0 * (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(3.7).unwrap();
        let total: f64 = (0..200).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mle_is_likelihood_optimum() {
        let samples = [3u64, 5, 2, 8, 4];
        let fitted = Poisson::fit(&samples).unwrap();
        let ll = |rate: f64| -> f64 {
            let p = Poisson::new(rate).unwrap();
            samples.iter().map(|&k| p.log_pmf(k)).sum()
        };
        let best = ll(fitted.rate());
        assert!(best > ll(fitted.rate() * 1.05));
        assert!(best > ll(fitted.rate() * 0.95));
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        // Counts straddle the `ln_factorial` table boundary so both the
        // table and the loop path are exercised.
        let p = Poisson::new(3.7).unwrap();
        let counts = [0u64, 1, 5, 31, 32, 200];
        let ks: Vec<f64> = counts.iter().map(|&k| k as f64).collect();
        let lfs: Vec<f64> = counts.iter().map(|&k| ln_factorial(k)).collect();
        let mut out = vec![0.5f64; counts.len()];
        p.log_pmf_batch(&ks, &lfs, &mut out);
        for (&k, &got) in counts.iter().zip(&out) {
            assert_eq!(got.to_bits(), (0.5 + p.log_pmf(k)).to_bits());
        }
    }

    #[test]
    fn fit_from_moments_matches_fit() {
        let samples = [1u64, 4, 7];
        let a = Poisson::fit(&samples).unwrap();
        let b = Poisson::fit_from_moments(12.0, 3.0).unwrap();
        assert!((a.rate() - b.rate()).abs() < 1e-15);
    }
}
