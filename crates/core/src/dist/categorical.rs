//! Smoothed categorical distribution (Eq. 6 of the paper).
//!
//! The per-skill categorical parameter `θ_f(s) = (θ_f1(s), …, θ_fC(s))` is
//! fit in closed form with additive (Laplace) smoothing using a pseudo-count
//! `λ` to avoid the zero-frequency problem:
//!
//! ```text
//! θ_fc(s) = (λ + count(c)) / (λ·C + total)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Default pseudo-count, following Shin et al. (paper §IV-B).
pub const DEFAULT_SMOOTHING: f64 = 0.01;

/// A categorical distribution over `0..cardinality` with log-probabilities
/// cached for fast scoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    /// Probability of each category (sums to 1).
    probs: Vec<f64>,
    /// Cached natural logs of `probs`.
    log_probs: Vec<f64>,
}

impl Categorical {
    /// Builds a distribution from explicit probabilities.
    ///
    /// Probabilities must be non-negative, finite, and sum to 1 within
    /// `1e-9` tolerance (they are renormalized exactly afterwards).
    pub fn from_probs(probs: Vec<f64>) -> Result<Self> {
        if probs.is_empty() {
            return Err(CoreError::DegenerateFit {
                distribution: "categorical",
                reason: "zero categories",
            });
        }
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: "categorical probability",
                    value: p,
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::InvalidProbability {
                context: "categorical probabilities sum",
                value: sum,
            });
        }
        let probs: Vec<f64> = probs.into_iter().map(|p| p / sum).collect();
        let log_probs = probs.iter().map(|&p| p.ln()).collect();
        Ok(Self { probs, log_probs })
    }

    /// Fits the smoothed MLE (Eq. 6) from per-category counts.
    ///
    /// `lambda` is the additive pseudo-count; `lambda = 0` yields the raw
    /// MLE (and `-inf` log-probabilities for unseen categories).
    pub fn fit_from_counts(counts: &[u64], lambda: f64) -> Result<Self> {
        if counts.is_empty() {
            return Err(CoreError::DegenerateFit {
                distribution: "categorical",
                reason: "zero categories",
            });
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "categorical smoothing lambda",
                value: lambda,
            });
        }
        let total: u64 = counts.iter().sum();
        let denom = lambda * counts.len() as f64 + total as f64;
        if denom <= 0.0 {
            return Err(CoreError::DegenerateFit {
                distribution: "categorical",
                reason: "no observations and no smoothing",
            });
        }
        let probs: Vec<f64> = counts
            .iter()
            .map(|&c| (lambda + c as f64) / denom)
            .collect();
        let log_probs = probs.iter().map(|&p| p.ln()).collect();
        Ok(Self { probs, log_probs })
    }

    /// Uniform distribution over `cardinality` categories.
    pub fn uniform(cardinality: u32) -> Result<Self> {
        Self::fit_from_counts(&vec![0u64; cardinality as usize], 1.0)
    }

    /// Number of categories.
    pub fn cardinality(&self) -> u32 {
        self.probs.len() as u32
    }

    /// Probability of category `c` (0 if out of range).
    pub fn prob(&self, c: u32) -> f64 {
        self.probs.get(c as usize).copied().unwrap_or(0.0)
    }

    /// Log-probability of category `c` (`-inf` if out of range).
    pub fn log_prob(&self, c: u32) -> f64 {
        self.log_probs
            .get(c as usize)
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Columnar variant of [`Categorical::log_prob`]: adds the
    /// log-probability of each category in `cats` to the matching slot of
    /// `out`, in index order.
    ///
    /// The cached log-prob table is read through the same
    /// `get(..).unwrap_or(-inf)` lookup as the scalar path, so every
    /// contribution is bitwise identical to [`Categorical::log_prob`];
    /// hoisting the table borrow out of the loop keeps the lookup base in
    /// a register and lets the compiler vectorize the gather.
    pub fn log_prob_batch(&self, cats: &[u32], out: &mut [f64]) {
        let table = &self.log_probs;
        for (acc, &c) in out.iter_mut().zip(cats) {
            *acc += table.get(c as usize).copied().unwrap_or(f64::NEG_INFINITY);
        }
    }

    /// Full probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mean of the category index (used by reports, not by the model).
    pub fn mean_index(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(c, &p)| c as f64 * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_matches_closed_form() {
        // counts = [3, 1, 0], λ = 0.01, C = 3, total = 4
        let d = Categorical::fit_from_counts(&[3, 1, 0], 0.01).unwrap();
        let denom = 0.01 * 3.0 + 4.0;
        assert!((d.prob(0) - 3.01 / denom).abs() < 1e-15);
        assert!((d.prob(1) - 1.01 / denom).abs() < 1e-15);
        assert!((d.prob(2) - 0.01 / denom).abs() < 1e-15);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = Categorical::fit_from_counts(&[5, 0, 2, 7, 0, 1], 0.01).unwrap();
        let sum: f64 = d.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_avoids_zero_frequency() {
        let d = Categorical::fit_from_counts(&[10, 0], 0.01).unwrap();
        assert!(d.prob(1) > 0.0);
        assert!(d.log_prob(1).is_finite());
    }

    #[test]
    fn unsmoothed_unseen_category_is_neg_inf() {
        let d = Categorical::fit_from_counts(&[10, 0], 0.0).unwrap();
        assert_eq!(d.prob(1), 0.0);
        assert_eq!(d.log_prob(1), f64::NEG_INFINITY);
    }

    #[test]
    fn out_of_range_category() {
        let d = Categorical::uniform(3).unwrap();
        assert_eq!(d.prob(3), 0.0);
        assert_eq!(d.log_prob(99), f64::NEG_INFINITY);
    }

    #[test]
    fn uniform_is_flat() {
        let d = Categorical::uniform(4).unwrap();
        for c in 0..4 {
            assert!((d.prob(c) - 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn from_probs_validates() {
        assert!(Categorical::from_probs(vec![]).is_err());
        assert!(Categorical::from_probs(vec![0.5, 0.6]).is_err());
        assert!(Categorical::from_probs(vec![-0.1, 1.1]).is_err());
        assert!(Categorical::from_probs(vec![0.25; 4]).is_ok());
    }

    #[test]
    fn fit_rejects_bad_lambda() {
        assert!(Categorical::fit_from_counts(&[1, 2], -0.5).is_err());
        assert!(Categorical::fit_from_counts(&[1, 2], f64::NAN).is_err());
    }

    #[test]
    fn empty_counts_without_smoothing_rejected() {
        assert!(Categorical::fit_from_counts(&[0, 0, 0], 0.0).is_err());
    }

    #[test]
    fn mle_maximizes_likelihood_among_neighbors() {
        // The unsmoothed MLE should beat small perturbations of itself.
        let counts = [7u64, 2, 1];
        let d = Categorical::fit_from_counts(&counts, 0.0).unwrap();
        let ll =
            |p: &[f64]| -> f64 { counts.iter().zip(p).map(|(&c, &p)| c as f64 * p.ln()).sum() };
        let best = ll(d.probs());
        let mut perturbed = d.probs().to_vec();
        perturbed[0] -= 0.05;
        perturbed[1] += 0.05;
        assert!(best > ll(&perturbed));
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let d = Categorical::fit_from_counts(&[5, 0, 2, 7], 0.01).unwrap();
        // Includes an out-of-range category: the batch lookup must share
        // the scalar `-inf` fallback.
        let cats = [0u32, 3, 2, 99, 1, 0];
        let mut out = vec![0.25f64; cats.len()];
        d.log_prob_batch(&cats, &mut out);
        for (&c, &got) in cats.iter().zip(&out) {
            assert_eq!(got.to_bits(), (0.25 + d.log_prob(c)).to_bits());
        }
    }

    #[test]
    fn mean_index_weighted() {
        let d = Categorical::from_probs(vec![0.0, 0.0, 1.0]).unwrap();
        assert!((d.mean_index() - 2.0).abs() < 1e-15);
    }
}
