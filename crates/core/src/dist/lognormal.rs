//! Log-normal distribution — the paper's alternative family for positive
//! real features (§IV-A). Closed-form MLE: fit a normal to `ln x`.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// Floor on the fitted log-space standard deviation so constant samples
/// produce a sharp but finite density.
const MIN_SIGMA: f64 = 1e-6;

/// A log-normal distribution: `ln X ~ Normal(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-std `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(CoreError::InvalidProbability {
                context: "lognormal mu",
                value: mu,
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "lognormal sigma",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Closed-form MLE: sample mean/std of `ln x`.
    pub fn fit(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::DegenerateFit {
                distribution: "lognormal",
                reason: "no samples",
            });
        }
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for &x in samples {
            if !x.is_finite() || x <= 0.0 {
                return Err(CoreError::InvalidProbability {
                    context: "lognormal sample",
                    value: x,
                });
            }
            let lx = x.ln();
            sum += lx;
            sum_sq += lx * lx;
        }
        let n = samples.len() as f64;
        let mu = sum / n;
        let var = (sum_sq / n - mu * mu).max(0.0);
        Self::new(mu, var.sqrt().max(MIN_SIGMA))
    }

    /// Closed-form MLE from pre-accumulated sufficient statistics — the
    /// same `mean`/`variance of ln x` estimator as [`LogNormal::fit`], so
    /// streaming accumulation and slice fitting agree.
    pub fn fit_from_stats(stats: &crate::dist::SufficientStats) -> Result<Self> {
        if stats.count() < 1.0 {
            return Err(CoreError::DegenerateFit {
                distribution: "lognormal",
                reason: "no samples",
            });
        }
        Self::new(stats.mean_ln(), stats.variance_ln().sqrt().max(MIN_SIGMA))
    }

    /// Log-mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-standard-deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Log-density at `x > 0` (`-inf` for `x ≤ 0`).
    pub fn log_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || !x.is_finite() {
            return f64::NEG_INFINITY;
        }
        let lx = x.ln();
        let z = (lx - self.mu) / self.sigma;
        -lx - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln() - 0.5 * z * z
    }

    /// Columnar variant of [`LogNormal::log_pdf`]: adds the log-density of
    /// each sample — given as `ln x`, precomputed once per item across all
    /// skill levels — to the matching slot of `out`.
    ///
    /// Callers must already have screened out non-positive or non-finite
    /// samples (the scalar guard); `μ`, `σ`, `ln σ` and the `½·ln 2π`
    /// constant are hoisted out of the loop. Each contribution keeps the
    /// scalar operation order, so the result is bitwise identical to
    /// [`LogNormal::log_pdf`] on valid samples.
    pub fn log_pdf_batch(&self, ln_xs: &[f64], out: &mut [f64]) {
        let mu = self.mu;
        let sigma = self.sigma;
        let ln_sigma = self.sigma.ln();
        let half_ln_two_pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
        for (acc, &lx) in out.iter_mut().zip(ln_xs) {
            let z = (lx - mu) / sigma;
            *acc += -lx - ln_sigma - half_ln_two_pi - 0.5 * z * z;
        }
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.log_pdf(x).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn fit_recovers_parameters_of_logspace_normal() {
        // Deterministic samples whose logs have known mean/std.
        let logs: Vec<f64> = (0..1000)
            .map(|i| 1.0 + ((i as f64) / 999.0 - 0.5) * 2.0)
            .collect();
        let samples: Vec<f64> = logs.iter().map(|&l| l.exp()).collect();
        let d = LogNormal::fit(&samples).unwrap();
        let mean: f64 = logs.iter().sum::<f64>() / logs.len() as f64;
        let var: f64 = logs.iter().map(|&l| (l - mean).powi(2)).sum::<f64>() / logs.len() as f64;
        assert!((d.mu() - mean).abs() < 1e-10);
        assert!((d.sigma() - var.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn fit_rejects_empty_and_nonpositive() {
        assert!(LogNormal::fit(&[]).is_err());
        assert!(LogNormal::fit(&[1.0, 0.0]).is_err());
        assert!(LogNormal::fit(&[-1.0]).is_err());
    }

    #[test]
    fn constant_samples_yield_sharp_fit() {
        let d = LogNormal::fit(&[3.0, 3.0, 3.0]).unwrap();
        assert!((d.median() - 3.0).abs() < 1e-9);
        assert!(d.log_pdf(3.0).is_finite());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = LogNormal::new(0.5, 0.8).unwrap();
        let (lo, hi, n) = (1e-6, 80.0, 800_000);
        let h = (hi - lo) / n as f64;
        let mut total = 0.0;
        for i in 0..=n {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            total += w * d.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-3, "integral was {total}");
    }

    #[test]
    fn log_pdf_nonpositive_is_neg_inf() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.log_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(d.log_pdf(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let d = LogNormal::new(0.4, 0.9).unwrap();
        let xs = [0.1f64, 1.0, 2.5, 17.0, 0.003];
        let ln_xs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
        let mut out = vec![2.0f64; xs.len()];
        d.log_pdf_batch(&ln_xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert_eq!(got.to_bits(), (2.0 + d.log_pdf(x)).to_bits());
        }
    }

    #[test]
    fn mean_and_median_formulas() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        assert!((d.median() - 1.0f64.exp()).abs() < 1e-12);
        assert!((d.mean() - (1.0f64 + 0.125).exp()).abs() < 1e-12);
    }

    #[test]
    fn mle_is_likelihood_optimum() {
        let samples = [0.5, 1.2, 2.0, 3.3, 0.9];
        let fitted = LogNormal::fit(&samples).unwrap();
        let ll = |d: &LogNormal| samples.iter().map(|&x| d.log_pdf(x)).sum::<f64>();
        let best = ll(&fitted);
        let worse1 = LogNormal::new(fitted.mu() + 0.1, fitted.sigma()).unwrap();
        let worse2 = LogNormal::new(fitted.mu(), fitted.sigma() * 1.2).unwrap();
        assert!(best > ll(&worse1));
        assert!(best > ll(&worse2));
    }
}
