//! Gamma distribution for positive real features (ABV, correction counts…).
//!
//! The paper notes (§IV-B) that the gamma MLE has no closed form; we use
//! the standard *generalized Newton* iteration of Minka (2002) on the shape
//! parameter, which converges in a handful of iterations:
//!
//! ```text
//! 1/k_new = 1/k + (ln m − mean(ln x) + ln k − ψ(k)) / (k² (1/k − ψ′(k)))
//! ```
//!
//! with the scale then given by `θ = m / k` (`m` = sample mean).

use serde::{Deserialize, Serialize};

use crate::dist::special::{digamma, ln_gamma, trigamma};
use crate::error::{CoreError, Result};

/// Maximum Newton iterations before declaring non-convergence.
const MAX_ITER: usize = 200;
/// Convergence tolerance on the shape parameter (relative).
const TOL: f64 = 1e-10;

/// A gamma distribution parameterized by shape `k > 0` and scale `θ > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
    /// Cached `−ln Γ(k) − k ln θ` so `log_pdf` is two flops + a log.
    log_norm: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "gamma shape",
                value: shape,
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "gamma scale",
                value: scale,
            });
        }
        let log_norm = -ln_gamma(shape) - shape * scale.ln();
        Ok(Self {
            shape,
            scale,
            log_norm,
        })
    }

    /// Maximum-likelihood fit via generalized Newton on the shape.
    ///
    /// Requires at least one strictly positive sample; a single sample or
    /// zero-variance samples degenerate (the MLE shape diverges), in which
    /// case the fit is clamped to a large-but-finite shape so the model
    /// stays usable, mirroring the smoothing used for discrete features.
    pub fn fit(samples: &[f64]) -> Result<Self> {
        let stats = SufficientStats::from_samples(samples)?;
        Self::fit_from_stats(&stats)
    }

    /// Fit from pre-accumulated sufficient statistics.
    pub fn fit_from_stats(stats: &SufficientStats) -> Result<Self> {
        let m = stats.mean();
        let mean_ln = stats.mean_ln();
        // s = ln m − mean(ln x) ≥ 0 by Jensen; 0 only for constant samples.
        let s = (m.ln() - mean_ln).max(0.0);
        if s < 1e-12 {
            // Degenerate: essentially constant data. Clamp to a sharp but
            // finite distribution centred on the mean.
            let shape = 1e6;
            return Gamma::new(shape, m / shape);
        }
        // Minka's initializer.
        let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
        if !k.is_finite() || k <= 0.0 {
            k = 0.5 / s;
        }
        for _ in 0..MAX_ITER {
            let num = m.ln() - mean_ln + k.ln() - digamma(k);
            let den = k * k * (1.0 / k - trigamma(k));
            let inv_new = 1.0 / k + num / den;
            if !inv_new.is_finite() || inv_new <= 0.0 {
                break; // fall back to the current iterate
            }
            let k_new = 1.0 / inv_new;
            let delta = (k_new - k).abs() / k.max(1.0);
            k = k_new;
            if delta < TOL {
                return Gamma::new(k, m / k);
            }
        }
        // Newton stalled — the iterate is still a good approximation for
        // well-posed inputs; reject only if it is unusable.
        if k.is_finite() && k > 0.0 {
            Gamma::new(k, m / k)
        } else {
            Err(CoreError::NoConvergence {
                routine: "gamma shape MLE",
                iterations: MAX_ITER,
            })
        }
    }

    /// Method-of-moments fit (`k = m²/v`, `θ = v/m`). Used as an ablation
    /// baseline against the Newton MLE in the benches.
    pub fn fit_moments(samples: &[f64]) -> Result<Self> {
        let stats = SufficientStats::from_samples(samples)?;
        let m = stats.mean();
        let v = stats.variance();
        if v < 1e-12 {
            let shape = 1e6;
            return Gamma::new(shape, m / shape);
        }
        Gamma::new(m * m / v, v / m)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Log-density at `x > 0` (`-inf` for `x ≤ 0`).
    pub fn log_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 || !x.is_finite() {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln() - x / self.scale + self.log_norm
    }

    /// Columnar variant of [`Gamma::log_pdf`]: adds the log-density of
    /// each sample to the matching slot of `out`.
    ///
    /// Callers pass `ln x` precomputed once per item across all skill
    /// levels and must already have screened out non-positive or
    /// non-finite samples (the scalar guard); `k − 1`, `θ` and the cached
    /// normalizer are loop constants. Each contribution evaluates
    /// `(k−1)·ln x − x/θ + log_norm` in exactly the scalar operation
    /// order, so the result is bitwise identical to [`Gamma::log_pdf`] on
    /// valid samples.
    pub fn log_pdf_batch(&self, xs: &[f64], ln_xs: &[f64], out: &mut [f64]) {
        let a = self.shape - 1.0;
        let scale = self.scale;
        let log_norm = self.log_norm;
        for ((acc, &x), &lx) in out.iter_mut().zip(xs).zip(ln_xs) {
            *acc += a * lx - x / scale + log_norm;
        }
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.log_pdf(x).exp()
    }
}

/// Sufficient statistics for gamma and log-normal fitting:
/// `Σx`, `Σ ln x`, `Σx²`, `Σ(ln x)²`, `n`.
///
/// The statistics are plain sums, so the accumulator supports exact
/// weighted insertion ([`SufficientStats::push_n`]) and removal
/// ([`SufficientStats::remove`]) in real arithmetic; in floating point a
/// remove-then-re-add round trip can differ from never having pushed by
/// summation-order ulps (the incremental trainer sidesteps this by keeping
/// integer item histograms and re-deriving these sums in a canonical
/// order — see `upskill_core::incremental`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SufficientStats {
    sum: f64,
    sum_ln: f64,
    sum_sq: f64,
    sum_ln_sq: f64,
    count: f64,
}

impl SufficientStats {
    /// Accumulates one positive observation with unit weight.
    pub fn push(&mut self, x: f64) -> Result<()> {
        self.push_n(x, 1)
    }

    /// Accumulates `n` copies of one positive observation in O(1).
    pub fn push_n(&mut self, x: f64, n: u64) -> Result<()> {
        if !x.is_finite() || x <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "gamma sample",
                value: x,
            });
        }
        if n == 0 {
            return Ok(());
        }
        let w = n as f64;
        let lx = x.ln();
        self.sum += w * x;
        self.sum_ln += w * lx;
        self.sum_sq += w * x * x;
        self.sum_ln_sq += w * lx * lx;
        self.count += w;
        Ok(())
    }

    /// Removes one previously pushed observation (the inverse of
    /// [`SufficientStats::push`]). Errors when the accumulator is empty or
    /// the value is invalid; it cannot detect a value that was never
    /// pushed — callers own that invariant.
    pub fn remove(&mut self, x: f64) -> Result<()> {
        if !x.is_finite() || x <= 0.0 {
            return Err(CoreError::InvalidProbability {
                context: "gamma sample",
                value: x,
            });
        }
        if self.count < 1.0 {
            return Err(CoreError::DegenerateFit {
                distribution: "gamma",
                reason: "remove from an empty accumulator",
            });
        }
        let lx = x.ln();
        self.sum -= x;
        self.sum_ln -= lx;
        self.sum_sq -= x * x;
        self.sum_ln_sq -= lx * lx;
        self.count -= 1.0;
        Ok(())
    }

    /// Builds statistics from a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(CoreError::DegenerateFit {
                distribution: "gamma",
                reason: "no samples",
            });
        }
        let mut stats = Self::default();
        for &x in samples {
            stats.push(x)?;
        }
        Ok(stats)
    }

    /// Number of accumulated observations.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sum / self.count
    }

    /// Mean of `ln x`.
    pub fn mean_ln(&self) -> f64 {
        self.sum_ln / self.count
    }

    /// Biased sample variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.sum_sq / self.count - m * m).max(0.0)
    }

    /// Biased sample variance of `ln x` (the log-normal `σ²` MLE).
    pub fn variance_ln(&self) -> f64 {
        let m = self.mean_ln();
        (self.sum_ln_sq / self.count - m * m).max(0.0)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &SufficientStats) {
        self.sum += other.sum;
        self.sum_ln += other.sum_ln;
        self.sum_sq += other.sum_sq;
        self.sum_ln_sq += other.sum_ln_sq;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn log_pdf_matches_exponential_special_case() {
        // Gamma(1, θ) is Exponential(1/θ): pdf(x) = e^{−x/θ}/θ
        let g = Gamma::new(1.0, 2.0).unwrap();
        for &x in &[0.1, 1.0, 5.0] {
            let want = (-x / 2.0f64).exp() / 2.0;
            assert!((g.pdf(x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn log_pdf_nonpositive_is_neg_inf() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        assert_eq!(g.log_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(g.log_pdf(-3.0), f64::NEG_INFINITY);
        assert_eq!(g.log_pdf(f64::NAN), f64::NEG_INFINITY);
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let g = Gamma::new(2.3, 0.8).unwrap();
        let xs = [0.1f64, 1.0, 2.5, 17.0, 0.003];
        let ln_xs: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
        let mut out = vec![-1.5f64; xs.len()];
        g.log_pdf_batch(&xs, &ln_xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            assert_eq!(got.to_bits(), (-1.5 + g.log_pdf(x)).to_bits());
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gamma::new(3.0, 1.5).unwrap();
        // Trapezoidal integration over a wide support.
        let (lo, hi, n) = (1e-6, 60.0, 600_000);
        let h = (hi - lo) / n as f64;
        let mut total = 0.0;
        for i in 0..=n {
            let x = lo + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            total += w * g.pdf(x);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-4, "integral was {total}");
    }

    #[test]
    fn fit_recovers_parameters() {
        // Deterministic pseudo-samples from inverse-CDF-ish spread around a
        // Gamma(4, 0.5): use a fixed LCG to generate gamma draws via
        // sum of exponentials (shape 4 is integer: Erlang).
        let mut state = 0x12345678u64;
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let samples: Vec<f64> = (0..20_000)
            .map(|_| {
                let mut acc = 0.0;
                for _ in 0..4 {
                    acc += -0.5 * (1.0 - unif()).ln(); // Exp(scale 0.5)
                }
                acc
            })
            .collect();
        let g = Gamma::fit(&samples).unwrap();
        assert!((g.shape() - 4.0).abs() < 0.15, "shape {}", g.shape());
        assert!((g.scale() - 0.5).abs() < 0.05, "scale {}", g.scale());
    }

    #[test]
    fn fit_beats_method_of_moments_in_likelihood() {
        let samples: Vec<f64> = (1..200)
            .map(|i| 0.2 + (i as f64 * 0.37).sin().abs() * 4.0 + i as f64 * 0.01)
            .collect();
        let mle = Gamma::fit(&samples).unwrap();
        let mom = Gamma::fit_moments(&samples).unwrap();
        let ll = |g: &Gamma| samples.iter().map(|&x| g.log_pdf(x)).sum::<f64>();
        assert!(ll(&mle) >= ll(&mom) - 1e-9);
    }

    #[test]
    fn constant_samples_yield_sharp_finite_fit() {
        let g = Gamma::fit(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        assert!((g.mean() - 2.0).abs() < 1e-9);
        assert!(g.log_pdf(2.0).is_finite());
        assert!(g.variance() < 1e-3);
    }

    #[test]
    fn single_sample_is_usable() {
        let g = Gamma::fit(&[3.5]).unwrap();
        assert!((g.mean() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_empty_and_nonpositive() {
        assert!(Gamma::fit(&[]).is_err());
        assert!(Gamma::fit(&[1.0, -2.0]).is_err());
        assert!(Gamma::fit(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn sufficient_stats_merge_equals_bulk() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.5];
        let mut left = SufficientStats::from_samples(&a).unwrap();
        let right = SufficientStats::from_samples(&b).unwrap();
        left.merge(&right);
        let all = SufficientStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 0.5]).unwrap();
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.mean_ln() - all.mean_ln()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_formulas() {
        let g = Gamma::new(2.5, 3.0).unwrap();
        assert!((g.mean() - 7.5).abs() < 1e-12);
        assert!((g.variance() - 22.5).abs() < 1e-12);
    }
}
