//! Generative distributions for item features (§IV-A of the paper).
//!
//! Each (feature, skill level) cell of the model holds one
//! [`FeatureDistribution`]; the [`FeatureAccumulator`] is its streaming
//! counterpart used by the parameter-update step (Eq. 5–7) to collect
//! sufficient statistics per skill level without materializing sample
//! vectors.

pub mod categorical;
pub mod gamma;
pub mod lognormal;
pub mod poisson;
pub mod special;

use serde::{Deserialize, Serialize};

pub use categorical::{Categorical, DEFAULT_SMOOTHING};
pub use gamma::{Gamma, SufficientStats};
pub use lognormal::LogNormal;
pub use poisson::Poisson;

use crate::error::{CoreError, Result};
use crate::feature::{FeatureKind, FeatureValue, PositiveModel};

/// One fitted per-feature, per-skill distribution `P_f(· | θ_f(s))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureDistribution {
    /// Smoothed categorical over `0..C_f`.
    Categorical(Categorical),
    /// Poisson over counts.
    Poisson(Poisson),
    /// Gamma over positive reals.
    Gamma(Gamma),
    /// Log-normal over positive reals.
    LogNormal(LogNormal),
}

/// Scores a distribution-kind / value-kind mismatch.
///
/// A mismatch always means the model schema and the item data went out of
/// sync upstream of scoring. The silent `-inf` keeps the release contract
/// (a zero-probability DP path, per Eq. 2), but under `debug_assertions`
/// or the `strict-invariants` feature the mismatch fails loudly at the
/// offending site instead of quietly poisoning every downstream DP and
/// posterior.
#[cold]
pub(crate) fn score_kind_mismatch(expected: &'static str, got: &'static str) -> f64 {
    if crate::invariants::ENABLED {
        // lint:allow(core-panic): strict-invariants escalates a silent
        // kind mismatch into a loud failure at the mismatch site.
        panic!("feature kind mismatch: {expected} distribution scored a {got} value");
    }
    f64::NEG_INFINITY
}

impl FeatureDistribution {
    /// Log-likelihood of one observed feature value.
    ///
    /// Returns `-inf` (not an error) for impossible *values* so the DP can
    /// treat them as zero-probability paths. A kind mismatch (e.g. a count
    /// scored by a gamma density) also scores `-inf` in release builds but
    /// raises a debug invariant under `debug_assertions` or the
    /// `strict-invariants` feature — see `score_kind_mismatch`.
    pub fn log_likelihood(&self, value: &FeatureValue) -> f64 {
        match (self, value) {
            (FeatureDistribution::Categorical(d), FeatureValue::Categorical(c)) => d.log_prob(*c),
            (FeatureDistribution::Poisson(d), FeatureValue::Count(k)) => d.log_pmf(*k),
            (FeatureDistribution::Gamma(d), FeatureValue::Real(x)) => d.log_pdf(*x),
            (FeatureDistribution::LogNormal(d), FeatureValue::Real(x)) => d.log_pdf(*x),
            (dist, value) => score_kind_mismatch(dist.kind_name(), value.name()),
        }
    }

    /// Short name of the distribution family, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FeatureDistribution::Categorical(_) => "categorical",
            FeatureDistribution::Poisson(_) => "poisson",
            FeatureDistribution::Gamma(_) => "gamma",
            FeatureDistribution::LogNormal(_) => "lognormal",
        }
    }

    /// A weakly-informative default distribution for a feature kind, used
    /// when a skill level received no observations in an update step.
    pub fn fallback(kind: FeatureKind) -> Result<Self> {
        match kind {
            FeatureKind::Categorical { cardinality } => Ok(FeatureDistribution::Categorical(
                Categorical::uniform(cardinality)?,
            )),
            FeatureKind::Count => Ok(FeatureDistribution::Poisson(Poisson::new(1.0)?)),
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            } => Ok(FeatureDistribution::Gamma(Gamma::new(1.0, 1.0)?)),
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            } => Ok(FeatureDistribution::LogNormal(LogNormal::new(0.0, 1.0)?)),
        }
    }
}

/// Streaming sufficient statistics for one (feature, skill) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureAccumulator {
    /// Per-category counts.
    Categorical {
        /// `counts[c]` = number of observations of category `c`.
        counts: Vec<u64>,
    },
    /// Sum and count for the Poisson mean.
    Count {
        /// Sum of observed counts.
        sum: f64,
        /// Number of observations.
        n: f64,
    },
    /// Gamma/log-normal sufficient statistics (`Σx`, `Σ ln x`, `Σx²`,
    /// `Σ(ln x)²`, `n`) — O(1) memory, no retained sample vectors.
    Positive {
        /// Which continuous family to fit at the end.
        model: PositiveModel,
        /// Accumulated sums.
        stats: SufficientStats,
    },
}

impl FeatureAccumulator {
    /// Creates an empty accumulator for the given feature kind.
    pub fn new(kind: FeatureKind) -> Self {
        match kind {
            FeatureKind::Categorical { cardinality } => FeatureAccumulator::Categorical {
                counts: vec![0; cardinality as usize],
            },
            FeatureKind::Count => FeatureAccumulator::Count { sum: 0.0, n: 0.0 },
            FeatureKind::Positive { model } => FeatureAccumulator::Positive {
                model,
                stats: SufficientStats::default(),
            },
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: &FeatureValue) -> Result<()> {
        self.push_n(value, 1)
    }

    /// Adds `weight` copies of one observation in O(1).
    ///
    /// `push_n(v, k)` leaves integer statistics (categorical counts, count
    /// sums and `n`) in exactly the state `k` repeated [`push`]es would;
    /// continuous sums use one fused `k·x` product per statistic. The
    /// incremental trainer's grid fit relies on this to replay an item
    /// histogram without walking every action.
    ///
    /// [`push`]: FeatureAccumulator::push
    pub fn push_n(&mut self, value: &FeatureValue, weight: u64) -> Result<()> {
        match (self, value) {
            (FeatureAccumulator::Categorical { counts }, FeatureValue::Categorical(c)) => {
                let idx = *c as usize;
                if idx >= counts.len() {
                    return Err(CoreError::CategoryOutOfBounds {
                        feature: usize::MAX,
                        value: *c,
                        cardinality: counts.len() as u32,
                    });
                }
                counts[idx] += weight;
                Ok(())
            }
            (FeatureAccumulator::Count { sum, n }, FeatureValue::Count(k)) => {
                *sum += weight as f64 * *k as f64;
                *n += weight as f64;
                Ok(())
            }
            (FeatureAccumulator::Positive { stats, .. }, FeatureValue::Real(x)) => {
                stats.push_n(*x, weight)
            }
            (acc, value) => Err(CoreError::FeatureKindMismatch {
                feature: usize::MAX,
                expected: acc.kind_name(),
                got: value.name(),
            }),
        }
    }

    /// Removes one previously pushed observation — the exact inverse of
    /// [`FeatureAccumulator::push`] for the integer-statistic families
    /// (categorical counts, Poisson sums over integers). For the
    /// continuous `Positive` family the subtraction is exact in real
    /// arithmetic but a remove/re-add round trip can drift by
    /// summation-order ulps; see `upskill_core::incremental` for the
    /// order-free alternative used in training.
    ///
    /// Errors on kind mismatches and on removing from an empty cell (the
    /// closest detectable proxy for "value was never pushed").
    pub fn remove(&mut self, value: &FeatureValue) -> Result<()> {
        match (self, value) {
            (FeatureAccumulator::Categorical { counts }, FeatureValue::Categorical(c)) => {
                let idx = *c as usize;
                if idx >= counts.len() {
                    return Err(CoreError::CategoryOutOfBounds {
                        feature: usize::MAX,
                        value: *c,
                        cardinality: counts.len() as u32,
                    });
                }
                if counts[idx] == 0 {
                    return Err(CoreError::DegenerateFit {
                        distribution: "categorical",
                        reason: "remove of a category with zero count",
                    });
                }
                counts[idx] -= 1;
                Ok(())
            }
            (FeatureAccumulator::Count { sum, n }, FeatureValue::Count(k)) => {
                if *n < 1.0 {
                    return Err(CoreError::DegenerateFit {
                        distribution: "poisson",
                        reason: "remove from an empty accumulator",
                    });
                }
                *sum -= *k as f64;
                *n -= 1.0;
                Ok(())
            }
            (FeatureAccumulator::Positive { stats, .. }, FeatureValue::Real(x)) => stats.remove(*x),
            (acc, value) => Err(CoreError::FeatureKindMismatch {
                feature: usize::MAX,
                expected: acc.kind_name(),
                got: value.name(),
            }),
        }
    }

    /// Merges another accumulator of the same variant into this one.
    pub fn merge(&mut self, other: &FeatureAccumulator) -> Result<()> {
        match (self, other) {
            (
                FeatureAccumulator::Categorical { counts },
                FeatureAccumulator::Categorical { counts: o },
            ) => {
                if counts.len() != o.len() {
                    return Err(CoreError::LengthMismatch {
                        context: "categorical accumulator merge",
                        left: counts.len(),
                        right: o.len(),
                    });
                }
                for (a, b) in counts.iter_mut().zip(o) {
                    *a += b;
                }
                Ok(())
            }
            (
                FeatureAccumulator::Count { sum, n },
                FeatureAccumulator::Count { sum: os, n: on },
            ) => {
                *sum += os;
                *n += on;
                Ok(())
            }
            (
                FeatureAccumulator::Positive { stats, .. },
                FeatureAccumulator::Positive { stats: ostats, .. },
            ) => {
                stats.merge(ostats);
                Ok(())
            }
            (a, b) => Err(CoreError::FeatureKindMismatch {
                feature: usize::MAX,
                expected: a.kind_name(),
                got: b.kind_name(),
            }),
        }
    }

    /// Number of accumulated observations.
    pub fn n_observations(&self) -> f64 {
        match self {
            FeatureAccumulator::Categorical { counts } => counts.iter().sum::<u64>() as f64,
            FeatureAccumulator::Count { n, .. } => *n,
            FeatureAccumulator::Positive { stats, .. } => stats.count(),
        }
    }

    /// Fits the final distribution (Eq. 6 for categorical with smoothing
    /// `lambda`, Eq. 7 for Poisson, Newton MLE for gamma, closed-form for
    /// log-normal). Falls back to [`FeatureDistribution::fallback`] when the
    /// cell received no observations.
    pub fn fit(&self, lambda: f64) -> Result<FeatureDistribution> {
        if crate::float_cmp::is_zero(self.n_observations()) {
            return FeatureDistribution::fallback(self.kind());
        }
        match self {
            FeatureAccumulator::Categorical { counts } => Ok(FeatureDistribution::Categorical(
                Categorical::fit_from_counts(counts, lambda)?,
            )),
            FeatureAccumulator::Count { sum, n } => Ok(FeatureDistribution::Poisson(
                Poisson::fit_from_moments(*sum, *n)?,
            )),
            FeatureAccumulator::Positive {
                model: PositiveModel::Gamma,
                stats,
            } => Ok(FeatureDistribution::Gamma(Gamma::fit_from_stats(stats)?)),
            FeatureAccumulator::Positive {
                model: PositiveModel::LogNormal,
                stats,
            } => Ok(FeatureDistribution::LogNormal(LogNormal::fit_from_stats(
                stats,
            )?)),
        }
    }

    fn kind(&self) -> FeatureKind {
        match self {
            FeatureAccumulator::Categorical { counts } => FeatureKind::Categorical {
                cardinality: counts.len() as u32,
            },
            FeatureAccumulator::Count { .. } => FeatureKind::Count,
            FeatureAccumulator::Positive { model, .. } => FeatureKind::Positive { model: *model },
        }
    }

    fn kind_name(&self) -> &'static str {
        self.kind().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_likelihood_dispatches_by_kind() {
        let cat =
            FeatureDistribution::Categorical(Categorical::from_probs(vec![0.25, 0.75]).unwrap());
        assert!((cat.log_likelihood(&FeatureValue::Categorical(1)) - 0.75f64.ln()).abs() < 1e-12);

        let poi = FeatureDistribution::Poisson(Poisson::new(2.0).unwrap());
        assert!(poi.log_likelihood(&FeatureValue::Count(3)).is_finite());

        let gam = FeatureDistribution::Gamma(Gamma::new(2.0, 1.0).unwrap());
        assert!(gam.log_likelihood(&FeatureValue::Real(1.5)).is_finite());
    }

    #[test]
    fn kind_mismatch_fails_loudly_under_debug_invariants() {
        // Release builds (invariants disabled) score a mismatch as `-inf`;
        // tests compile with `debug_assertions`, so the invariant layer is
        // active and the mismatch must fail at the scoring site instead of
        // silently poisoning the DP.
        let mismatches: Vec<(FeatureDistribution, FeatureValue)> = vec![
            (
                FeatureDistribution::Categorical(
                    Categorical::from_probs(vec![0.25, 0.75]).unwrap(),
                ),
                FeatureValue::Count(1),
            ),
            (
                FeatureDistribution::Poisson(Poisson::new(2.0).unwrap()),
                FeatureValue::Real(3.0),
            ),
            (
                FeatureDistribution::Gamma(Gamma::new(2.0, 1.0).unwrap()),
                FeatureValue::Categorical(0),
            ),
            (
                FeatureDistribution::LogNormal(LogNormal::new(0.0, 1.0).unwrap()),
                FeatureValue::Count(2),
            ),
        ];
        for (dist, value) in mismatches {
            if crate::invariants::ENABLED {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    dist.log_likelihood(&value)
                }));
                assert!(outcome.is_err(), "{} should panic", dist.kind_name());
            } else {
                assert_eq!(dist.log_likelihood(&value), f64::NEG_INFINITY);
            }
        }
    }

    #[test]
    fn accumulator_roundtrip_categorical() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Categorical { cardinality: 3 });
        for &c in &[0u32, 0, 1, 2, 2, 2] {
            acc.push(&FeatureValue::Categorical(c)).unwrap();
        }
        assert_eq!(acc.n_observations(), 6.0);
        let FeatureDistribution::Categorical(d) = acc.fit(0.0).unwrap() else {
            panic!("wrong variant")
        };
        assert!((d.prob(0) - 2.0 / 6.0).abs() < 1e-12);
        assert!((d.prob(2) - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_roundtrip_count() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Count);
        for &k in &[2u64, 4, 6] {
            acc.push(&FeatureValue::Count(k)).unwrap();
        }
        let FeatureDistribution::Poisson(d) = acc.fit(0.01).unwrap() else {
            panic!("wrong variant")
        };
        assert!((d.rate() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_roundtrip_gamma() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Positive {
            model: PositiveModel::Gamma,
        });
        for &x in &[1.0, 2.0, 3.0, 4.0, 2.5, 1.5] {
            acc.push(&FeatureValue::Real(x)).unwrap();
        }
        let FeatureDistribution::Gamma(d) = acc.fit(0.01).unwrap() else {
            panic!("wrong variant")
        };
        assert!((d.mean() - 14.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_roundtrip_lognormal() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Positive {
            model: PositiveModel::LogNormal,
        });
        for &x in &[1.0, std::f64::consts::E] {
            acc.push(&FeatureValue::Real(x)).unwrap();
        }
        let FeatureDistribution::LogNormal(d) = acc.fit(0.01).unwrap() else {
            panic!("wrong variant")
        };
        assert!((d.mu() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulator_falls_back() {
        for kind in [
            FeatureKind::Categorical { cardinality: 4 },
            FeatureKind::Count,
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            },
        ] {
            let acc = FeatureAccumulator::new(kind);
            let dist = acc.fit(0.01).unwrap();
            // A fallback must score *some* in-kind value finitely.
            let probe = match kind {
                FeatureKind::Categorical { .. } => FeatureValue::Categorical(0),
                FeatureKind::Count => FeatureValue::Count(1),
                FeatureKind::Positive { .. } => FeatureValue::Real(1.0),
            };
            assert!(dist.log_likelihood(&probe).is_finite());
        }
    }

    #[test]
    fn push_rejects_kind_mismatch() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Count);
        assert!(acc.push(&FeatureValue::Real(1.0)).is_err());
    }

    #[test]
    fn push_rejects_out_of_range_category() {
        let mut acc = FeatureAccumulator::new(FeatureKind::Categorical { cardinality: 2 });
        assert!(acc.push(&FeatureValue::Categorical(2)).is_err());
    }

    #[test]
    fn merge_equals_bulk_accumulation() {
        let kind = FeatureKind::Categorical { cardinality: 3 };
        let mut a = FeatureAccumulator::new(kind);
        let mut b = FeatureAccumulator::new(kind);
        a.push(&FeatureValue::Categorical(0)).unwrap();
        b.push(&FeatureValue::Categorical(2)).unwrap();
        b.push(&FeatureValue::Categorical(2)).unwrap();
        a.merge(&b).unwrap();
        let FeatureAccumulator::Categorical { counts } = &a else {
            panic!()
        };
        assert_eq!(counts, &vec![1, 0, 2]);
    }

    #[test]
    fn merge_rejects_mismatched_variants() {
        let mut a = FeatureAccumulator::new(FeatureKind::Count);
        let b = FeatureAccumulator::new(FeatureKind::Categorical { cardinality: 2 });
        assert!(a.merge(&b).is_err());
    }

    fn probe_values(kind: FeatureKind) -> Vec<FeatureValue> {
        match kind {
            FeatureKind::Categorical { .. } => vec![
                FeatureValue::Categorical(0),
                FeatureValue::Categorical(2),
                FeatureValue::Categorical(2),
            ],
            FeatureKind::Count => vec![
                FeatureValue::Count(1),
                FeatureValue::Count(5),
                FeatureValue::Count(9),
            ],
            FeatureKind::Positive { .. } => vec![
                FeatureValue::Real(0.5),
                FeatureValue::Real(2.0),
                FeatureValue::Real(3.5),
            ],
        }
    }

    fn all_kinds() -> [FeatureKind; 4] {
        [
            FeatureKind::Categorical { cardinality: 3 },
            FeatureKind::Count,
            FeatureKind::Positive {
                model: PositiveModel::Gamma,
            },
            FeatureKind::Positive {
                model: PositiveModel::LogNormal,
            },
        ]
    }

    #[test]
    fn push_n_equals_repeated_push_on_every_variant() {
        for kind in all_kinds() {
            let mut weighted = FeatureAccumulator::new(kind);
            let mut repeated = FeatureAccumulator::new(kind);
            for value in probe_values(kind) {
                weighted.push_n(&value, 3).unwrap();
                for _ in 0..3 {
                    repeated.push(&value).unwrap();
                }
            }
            assert_eq!(
                weighted.n_observations(),
                repeated.n_observations(),
                "{kind:?}"
            );
            // Identical statistics ⇒ identical fitted distributions: probe
            // the fit instead of the (partly f64) internal sums.
            let probe = &probe_values(kind)[1];
            let a = weighted.fit(0.01).unwrap().log_likelihood(probe);
            let b = repeated.fit(0.01).unwrap().log_likelihood(probe);
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{kind:?}");
        }
    }

    #[test]
    fn remove_exactly_inverts_push_on_every_variant() {
        for kind in all_kinds() {
            let values = probe_values(kind);
            let mut acc = FeatureAccumulator::new(kind);
            for value in &values {
                acc.push(value).unwrap();
            }
            let reference = acc.clone();
            // Push then remove an extra observation: statistics must come
            // back exactly (integer counters and compensated f64 sums).
            acc.push(&values[2]).unwrap();
            acc.remove(&values[2]).unwrap();
            assert_eq!(acc.n_observations(), reference.n_observations(), "{kind:?}");
            let probe = &values[1];
            let a = acc.fit(0.01).unwrap().log_likelihood(probe);
            let b = reference.fit(0.01).unwrap().log_likelihood(probe);
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{kind:?}");
        }
    }

    #[test]
    fn remove_from_empty_accumulator_is_an_error() {
        for kind in all_kinds() {
            let mut acc = FeatureAccumulator::new(kind);
            let value = probe_values(kind).remove(0);
            assert!(acc.remove(&value).is_err(), "{kind:?}");
        }
    }
}
