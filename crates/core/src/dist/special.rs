//! Special mathematical functions needed by the distribution MLEs.
//!
//! Self-contained implementations (no external math crates):
//! - [`ln_gamma`] — Lanczos approximation, ~15 significant digits;
//! - [`digamma`] — recurrence + asymptotic series;
//! - [`trigamma`] — recurrence + asymptotic series;
//! - [`ln_factorial`] — exact table for small `n`, `ln_gamma` beyond.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey).
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with the reflection formula for small
/// arguments handled implicitly by the shift (`x > 0` only; callers validate).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function ψ(x) = d/dx ln Γ(x), for `x > 0`.
///
/// Shifts the argument up with the recurrence ψ(x) = ψ(x+1) − 1/x until
/// `x ≥ 6`, then applies the asymptotic expansion.
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2k}/(2k x^{2k})
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Trigamma function ψ′(x), for `x > 0`.
pub fn trigamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut acc = 0.0;
    while x < 10.0 {
        acc += 1.0 / (x * x);
        x += 1.0;
    }
    // Asymptotic: ψ′(x) ≈ 1/x + 1/(2x²) + Σ B_{2k}/x^{2k+1}
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + inv
        * (1.0
            + inv
                * (0.5
                    + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Exact `ln(n!)` for small `n`; `ln_gamma(n + 1)` otherwise.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 32;
    // Thread-safe lazily computed table would need sync; a const-time loop
    // at first call per thread is cheap enough to recompute inline instead.
    if (n as usize) < TABLE_LEN {
        let mut acc = 0.0f64;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        acc
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "got {got}, want {want}"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        assert_close(ln_gamma(10.5), 1_133_278.388_948_904_7f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // ln Γ(x+1) = ln Γ(x) + ln x
        for &x in &[0.1, 0.7, 1.3, 2.9, 7.5, 42.0, 1234.5] {
            assert_close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11);
        }
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni)
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        assert_close(digamma(1.0), -EULER_GAMMA, 1e-10);
        // ψ(0.5) = −γ − 2 ln 2
        assert_close(digamma(0.5), -EULER_GAMMA - 2.0 * 2.0f64.ln(), 1e-10);
        // ψ(2) = 1 − γ
        assert_close(digamma(2.0), 1.0 - EULER_GAMMA, 1e-10);
    }

    #[test]
    fn digamma_recurrence_holds() {
        for &x in &[0.2, 0.9, 1.5, 3.3, 10.0, 250.0] {
            assert_close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn digamma_matches_ln_gamma_derivative() {
        // Central finite difference of ln_gamma should match digamma.
        for &x in &[0.8, 1.5, 4.0, 25.0] {
            let h = 1e-6 * x;
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert_close(digamma(x), numeric, 1e-6);
        }
    }

    #[test]
    fn trigamma_known_values() {
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert_close(trigamma(1.0), pi2_6, 1e-10);
        // ψ′(0.5) = π²/2
        assert_close(trigamma(0.5), std::f64::consts::PI.powi(2) / 2.0, 1e-10);
    }

    #[test]
    fn trigamma_recurrence_holds() {
        for &x in &[0.3, 1.1, 2.5, 8.0, 100.0] {
            assert_close(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
        }
    }

    #[test]
    fn trigamma_matches_digamma_derivative() {
        for &x in &[0.8, 2.0, 9.0] {
            let h = 1e-6 * x;
            let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            assert_close(trigamma(x), numeric, 1e-5);
        }
    }

    #[test]
    fn ln_factorial_small_and_large() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert_close(ln_factorial(5), 120.0f64.ln(), 1e-12);
        assert_close(ln_factorial(20), 2_432_902_008_176_640_000.0f64.ln(), 1e-12);
        // Cross-check the table/ln_gamma boundary.
        assert_close(ln_factorial(31), ln_gamma(32.0), 1e-12);
        assert_close(ln_factorial(32), ln_gamma(33.0), 1e-12);
        assert_close(ln_factorial(170), ln_gamma(171.0), 1e-12);
    }
}
