//! Runtime invariant layer: cheap, centrally gated correctness checks.
//!
//! The model's guarantees — monotone non-decreasing skill paths (Eq. 4),
//! finite emission scores, and the assignment step's DP optimality (the
//! new path never scores below the incumbent under the same emission
//! model) — are enforced here at the moments state is *committed*: after
//! an emission-table fill or refresh, after an assignment step, after a
//! streaming ingest, and after each training iteration's likelihood
//! evaluation.
//!
//! ## Gating and cost model
//!
//! Every check routes through [`InvariantCtx`], whose methods start with
//! `if !ENABLED { return Ok(()); }`. [`ENABLED`] is a `const`, true in
//! debug builds (`debug_assertions`) and whenever the `strict-invariants`
//! cargo feature is on. In a release build without the feature the
//! compiler sees a constant-false branch and removes the check bodies
//! entirely — callers pay nothing, not even a branch.
//!
//! With checks on, per-call costs are:
//!
//! | check | cost |
//! |---|---|
//! | [`InvariantCtx::check_emission_table`] | `O(n_items · S)` scan |
//! | [`InvariantCtx::check_monotone`] | `O(Σ_u · A_u )` scan |
//! | [`InvariantCtx::check_sequence_monotone`] | `O( A_u )` scan |
//! | [`InvariantCtx::check_extension`] | `O(1)` |
//! | [`InvariantCtx::check_ll_non_decreasing`] | `O(1)` |
//! | [`InvariantCtx::check_assign_step_optimal`] | `O(Σ_u A_u)` rescore (+ a table build on the rescan path) |
//! | [`InvariantCtx::check_grid`] | full grid rebuild + compare |
//!
//! [`StatsGrid`] refits carry no float
//! state of their own (the grid is an integer histogram), so NaN poison
//! introduced through a corrupted dataset surfaces at the *next* emission
//! fill or refresh — which is why every table build/refresh path calls
//! [`InvariantCtx::check_emission_table`] before the table is used.
//!
//! ## Failure mode
//!
//! A failed check returns [`CoreError::InvariantViolation`] naming the
//! check and the offending coordinates, rather than panicking: callers in
//! long-lived services can surface the corruption without dying, and the
//! proptest suite can assert rejection.

use crate::emission::EmissionTable;
use crate::error::{CoreError, Result};
use crate::incremental::StatsGrid;
use crate::types::{Dataset, SkillAssignments, SkillLevel};

/// Whether invariant checks are compiled in. True in debug builds and
/// under the `strict-invariants` feature; constant-false otherwise, so
/// release builds without the feature pay zero cost.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "strict-invariants"));

/// Relative slack for the likelihood-non-decrease check: closed-form
/// updates are exact in real arithmetic but accumulate rounding in
/// floating point, so a strict `curr >= prev` would flag healthy runs.
const LL_RELATIVE_SLACK: f64 = 1e-6;

/// Handle through which hot paths invoke invariant checks.
///
/// Zero-sized; thread it by value. Exists (rather than free functions)
/// so the gating policy lives in one place and future per-run
/// configuration (e.g. sampled checking) has a home that does not
/// require touching every call site again.
#[derive(Debug, Clone, Copy, Default)]
pub struct InvariantCtx;

impl InvariantCtx {
    /// Creates a check context.
    pub const fn new() -> Self {
        InvariantCtx
    }

    /// Whether checks are active in this build.
    pub const fn enabled(&self) -> bool {
        ENABLED
    }

    /// Rejects emission tables containing NaN or `+inf`.
    ///
    /// `-inf` is legal (a forbidden DP path); NaN and `+inf` can only
    /// arise from poisoned inputs or parameter corruption and would
    /// propagate through every DP that reads the row.
    pub fn check_emission_table(&self, table: &EmissionTable) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        table.verify_finite()
    }

    /// Rejects assignment matrices with a non-monotone committed path.
    pub fn check_monotone(
        &self,
        check: &'static str,
        assignments: &SkillAssignments,
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        for (u, seq) in assignments.per_user.iter().enumerate() {
            for (n, w) in seq.windows(2).enumerate() {
                if w[1] < w[0] {
                    return Err(CoreError::InvariantViolation {
                        check,
                        detail: format!(
                            "sequence {u} decreases from level {} to {} at action {}",
                            w[0],
                            w[1],
                            n + 1
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Rejects a single non-monotone per-action level path.
    pub fn check_sequence_monotone(
        &self,
        check: &'static str,
        levels: &[SkillLevel],
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        for (n, w) in levels.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(CoreError::InvariantViolation {
                    check,
                    detail: format!(
                        "level path decreases from {} to {} at action {}",
                        w[0],
                        w[1],
                        n + 1
                    ),
                });
            }
        }
        Ok(())
    }

    /// O(1) check that appending `new_level` after `prev_last` keeps a
    /// streaming path monotone. `prev_last = None` (empty path) always
    /// passes.
    pub fn check_extension(
        &self,
        check: &'static str,
        prev_last: Option<SkillLevel>,
        new_level: SkillLevel,
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        if let Some(prev) = prev_last {
            if new_level < prev {
                return Err(CoreError::InvariantViolation {
                    check,
                    detail: format!("appended level {new_level} is below previous level {prev}"),
                });
            }
        }
        Ok(())
    }

    /// Verifies an incrementally maintained [`StatsGrid`] against a
    /// from-scratch rebuild for `assignments`. This is the (previously
    /// `debug_assertions`-only) grid drift check, now gated with the rest
    /// of the invariant layer so `strict-invariants` release builds run
    /// it too.
    pub fn check_grid(
        &self,
        grid: &StatsGrid,
        dataset: &Dataset,
        assignments: &SkillAssignments,
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        grid.cross_check(dataset, assignments)
    }

    /// Rejects merging two item-range shards whose declared item ranges
    /// overlap.
    ///
    /// Item-range sharding (see [`StatsGrid::shard_for_items`]) promises
    /// each shard accumulated statistics for a disjoint slice of the
    /// item axis, which is what makes the additive merge exact. Two
    /// overlapping ranges mean some item was counted by both workers —
    /// the merge would silently double-count it. `None` marks a grid
    /// that covers the whole axis (e.g. a user-partition partial), for
    /// which overlap is legitimate; the check only fires when **both**
    /// operands declare a range.
    pub fn check_disjoint_shards(
        &self,
        check: &'static str,
        left: Option<(usize, usize)>,
        right: Option<(usize, usize)>,
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        if let (Some((ls, le)), Some((rs, re))) = (left, right) {
            if ls < re && rs < le {
                return Err(CoreError::InvariantViolation {
                    check,
                    detail: format!("item ranges {ls}..{le} and {rs}..{re} overlap"),
                });
            }
        }
        Ok(())
    }

    /// Rejects a log-likelihood that dropped below an incumbent value by
    /// more than a small relative slack.
    ///
    /// `prev` and `curr` must be scores of two candidates under the
    /// *same* model — e.g. the incumbent path and the DP's new path on
    /// one emission table, where the DP's optimality guarantees
    /// `curr >= prev` in exact arithmetic. (Scores from *different*
    /// iterations do not qualify: the refit between them uses smoothing
    /// and moment fits, neither of which maximizes the raw likelihood,
    /// so the objective can genuinely dip across iterations.) The slack
    /// (`1e-6 · max(1, |prev|)`) absorbs rounding. Non-finite `prev`
    /// (e.g. an incumbent stranded on a now-forbidden `-inf` cell) skips
    /// the comparison; NaN `curr` always fails.
    pub fn check_ll_non_decreasing(&self, check: &'static str, prev: f64, curr: f64) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        if curr.is_nan() {
            return Err(CoreError::InvariantViolation {
                check,
                detail: "log-likelihood is NaN".to_string(),
            });
        }
        if !prev.is_finite() {
            return Ok(());
        }
        let slack = LL_RELATIVE_SLACK * prev.abs().max(1.0);
        if curr < prev - slack {
            return Err(CoreError::InvariantViolation {
                check,
                detail: format!("log-likelihood decreased from {prev} to {curr} (slack {slack})"),
            });
        }
        Ok(())
    }

    /// Verifies the assignment step's optimality guarantee: the DP's new
    /// path must score at least as well as the incumbent assignments
    /// *under the same emission model*.
    ///
    /// This is the form of likelihood non-decrease that hard-assignment
    /// training actually guarantees. `table` is the table the DP just
    /// consumed when the incremental path maintained one; on the rescan
    /// path (`None`) an equivalent table is built from `model` — checks
    /// are compiled out in release builds, so the extra build is free
    /// there. `incumbent` is `None` on the first iteration.
    pub fn check_assign_step_optimal(
        &self,
        check: &'static str,
        model: &crate::model::SkillModel,
        table: Option<&EmissionTable>,
        dataset: &Dataset,
        incumbent: Option<&SkillAssignments>,
        new_ll: f64,
    ) -> Result<()> {
        if !ENABLED {
            return Ok(());
        }
        let Some(incumbent) = incumbent else {
            return self.check_ll_non_decreasing(check, f64::NEG_INFINITY, new_ll);
        };
        let owned;
        let table = match table {
            Some(t) => t,
            None => {
                owned = EmissionTable::build(model, dataset);
                &owned
            }
        };
        let mut incumbent_ll = 0.0;
        for (seq, levels) in dataset.sequences().iter().zip(&incumbent.per_user) {
            for (action, &level) in seq.actions().iter().zip(levels) {
                incumbent_ll += table.log_likelihood(action.item, level);
            }
        }
        self.check_ll_non_decreasing(check, incumbent_ll, new_ll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn enabled_in_test_builds() {
        // Tests compile with debug_assertions (or the feature), so the
        // gate must be open here — otherwise the rest of this module's
        // tests would be vacuous. Asserting the constant is the point.
        assert!(ENABLED);
        assert!(InvariantCtx::new().enabled());
    }

    #[test]
    fn monotone_checks_accept_and_reject() {
        let ctx = InvariantCtx::new();
        let ok = SkillAssignments {
            per_user: vec![vec![1, 1, 2], vec![3]],
        };
        assert!(ctx.check_monotone("test", &ok).is_ok());
        let bad = SkillAssignments {
            per_user: vec![vec![1, 3, 2]],
        };
        let err = ctx.check_monotone("test", &bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sequence 0"), "{msg}");
        assert!(msg.contains("3 to 2"), "{msg}");

        assert!(ctx.check_sequence_monotone("test", &[1, 2, 2]).is_ok());
        assert!(ctx.check_sequence_monotone("test", &[2, 1]).is_err());
        assert!(ctx.check_sequence_monotone("test", &[]).is_ok());
    }

    #[test]
    fn disjoint_shard_check_fires_only_on_double_ranges() {
        let ctx = InvariantCtx::new();
        // Whole-axis partials (user partition) merge freely.
        assert!(ctx.check_disjoint_shards("test", None, None).is_ok());
        assert!(ctx
            .check_disjoint_shards("test", Some((0, 10)), None)
            .is_ok());
        // Disjoint and touching ranges pass.
        assert!(ctx
            .check_disjoint_shards("test", Some((0, 10)), Some((10, 20)))
            .is_ok());
        assert!(ctx
            .check_disjoint_shards("test", Some((10, 20)), Some((0, 10)))
            .is_ok());
        // Overlap is rejected with the offending coordinates.
        let err = ctx
            .check_disjoint_shards("test", Some((0, 10)), Some((5, 20)))
            .unwrap_err();
        assert!(err.to_string().contains("0..10"), "{err}");
    }

    #[test]
    fn extension_check_is_order_sensitive() {
        let ctx = InvariantCtx::new();
        assert!(ctx.check_extension("test", None, 1).is_ok());
        assert!(ctx.check_extension("test", Some(2), 2).is_ok());
        assert!(ctx.check_extension("test", Some(2), 3).is_ok());
        assert!(ctx.check_extension("test", Some(3), 2).is_err());
    }

    #[test]
    fn ll_check_allows_slack_but_rejects_drops_and_nan() {
        let ctx = InvariantCtx::new();
        // First iteration: prev is -inf, anything finite passes.
        assert!(ctx
            .check_ll_non_decreasing("test", f64::NEG_INFINITY, -100.0)
            .is_ok());
        // Improvement and tiny rounding dips pass.
        assert!(ctx.check_ll_non_decreasing("test", -100.0, -90.0).is_ok());
        assert!(ctx
            .check_ll_non_decreasing("test", -100.0, -100.0 - 1e-8)
            .is_ok());
        // A real drop fails.
        assert!(ctx.check_ll_non_decreasing("test", -100.0, -101.0).is_err());
        // NaN always fails, even from -inf.
        assert!(ctx
            .check_ll_non_decreasing("test", f64::NEG_INFINITY, f64::NAN)
            .is_err());
    }

    #[test]
    fn assign_step_check_scores_incumbent_under_same_model() {
        use crate::dist::{Categorical, FeatureDistribution};
        use crate::feature::{FeatureKind, FeatureSchema, FeatureValue};
        use crate::model::SkillModel;
        use crate::types::{Action, ActionSequence};

        let schema = FeatureSchema::new(vec![FeatureKind::Categorical { cardinality: 2 }]).unwrap();
        let cells = vec![
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.9, 0.1]).unwrap(),
            )],
            vec![FeatureDistribution::Categorical(
                Categorical::from_probs(vec![0.1, 0.9]).unwrap(),
            )],
        ];
        let model = SkillModel::new(schema.clone(), 2, cells).unwrap();
        let items = vec![
            vec![FeatureValue::Categorical(0)],
            vec![FeatureValue::Categorical(1)],
        ];
        let seq = ActionSequence::new(0, vec![Action::new(0, 0, 0), Action::new(1, 0, 1)]).unwrap();
        let ds = Dataset::new(schema, items, vec![seq]).unwrap();

        let incumbent = SkillAssignments {
            per_user: vec![vec![1, 2]],
        };
        let table = EmissionTable::build(&model, &ds);
        let incumbent_ll = table.log_likelihood(0, 1) + table.log_likelihood(1, 2);

        let ctx = InvariantCtx::new();
        // No incumbent: only NaN is rejected.
        assert!(ctx
            .check_assign_step_optimal("test", &model, None, &ds, None, -5.0)
            .is_ok());
        assert!(ctx
            .check_assign_step_optimal("test", &model, None, &ds, None, f64::NAN)
            .is_err());
        // Matching or better than the incumbent passes, with or without a
        // caller-maintained table.
        for table_arg in [Some(&table), None] {
            assert!(ctx
                .check_assign_step_optimal(
                    "test",
                    &model,
                    table_arg,
                    &ds,
                    Some(&incumbent),
                    incumbent_ll,
                )
                .is_ok());
        }
        // A clear drop below the incumbent fails.
        let err = ctx
            .check_assign_step_optimal(
                "test",
                &model,
                Some(&table),
                &ds,
                Some(&incumbent),
                incumbent_ll - 1.0,
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolation { .. }));
    }
}
